//! Per-iteration timing, the data behind the paper's Figures 2 and 3.

use std::time::{Duration, Instant};

use devsim::PoolStats;

use crate::counters::{CounterSnapshot, SnapshotCounterSnapshot};
#[cfg(test)]
use crate::counters::{FaultSnapshot, ServeSnapshot};
use crate::scheduler::SchedulerSnapshot;
use crate::serve::ServeStepStats;

/// Timings for one simulation iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Simulation time step.
    pub step: u64,
    /// Time spent in the solver this iteration.
    pub solver: Duration,
    /// *Apparent* in situ cost this iteration: for lockstep execution the
    /// full analysis time, for asynchronous execution just the deep copy
    /// and thread hand-off (the analysis itself overlaps the solver).
    pub insitu: Duration,
}

/// Aggregate view of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSummary {
    /// Iterations recorded.
    pub iterations: usize,
    /// Mean solver time per iteration (Figure 3's cyan bars).
    pub mean_solver: Duration,
    /// Mean apparent in situ time per iteration (Figure 3's red/blue bars).
    pub mean_insitu: Duration,
    /// Total wall-clock from profiler start to finalize (Figure 2).
    pub total_runtime: Duration,
}

/// One back-end's apparent cost at one step (what the simulation waited
/// for: the full analysis under lockstep, the copy + hand-off under
/// asynchronous execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSample {
    /// Simulation time step.
    pub step: u64,
    /// Back-end instance name.
    pub backend: String,
    /// Apparent cost of dispatching this back-end.
    pub apparent: Duration,
    /// True when this step's dispatch retried or recovered from an
    /// injected fault: the retry backoff's wall clock (capped at 250 ms)
    /// is charged into `apparent`, so the sample measures the recovery
    /// machinery, not the configuration. Consumers comparing
    /// configurations (the adaptive controller's sliding window) must
    /// skip tainted samples.
    pub tainted: bool,
}

/// One adaptive-controller action: a probe, commit, or revert of a
/// back-end's controls (or of the bridge's snapshot mode), recorded so
/// a run's reconfiguration history is data alongside its timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveSample {
    /// Simulation time step the decision was applied at.
    pub step: u64,
    /// Back-end instance name, or `bridge` for snapshot-mode decisions.
    pub backend: String,
    /// What kind of decision (`probe`, `commit`, `revert`).
    pub action: String,
    /// Human-readable description of the configuration applied.
    pub detail: String,
}

/// One back-end's aggregate apparent cost over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendBreakdown {
    /// Back-end instance name.
    pub backend: String,
    /// Dispatches recorded.
    pub dispatches: usize,
    /// Total apparent time across dispatches.
    pub total_apparent: Duration,
    /// Mean apparent time per dispatch.
    pub mean_apparent: Duration,
}

/// One back-end's work-counter totals at the end of a run — the data
/// behind fused-vs-per-op comparisons (passes, launches, downloads, and
/// allreduce rounds actually performed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Back-end instance name.
    pub backend: String,
    /// The back-end's counter totals.
    pub counters: CounterSnapshot,
    /// Physical data layout the back-end ran with (a [`hamr::Layout`]
    /// name; "scalar" unless the run configured a layout group).
    pub layout: String,
}

/// The snapshot layer's totals at the end of a run: arrays shared vs
/// copied, bytes moved, CoW faults, and copy/solver overlap, labeled
/// with the capture mode so A/B harness runs identify their arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSample {
    /// Capture mode name (`deep`, `delta`, `cow`).
    pub mode: String,
    /// The snapshot-layer counter totals.
    pub counters: SnapshotCounterSnapshot,
}

/// One back-end's work-stealing scheduler totals at the end of a run
/// (dag execution only): tasks executed, cross-worker steals, worker idle
/// time, and the accumulated critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSample {
    /// Back-end instance name.
    pub backend: String,
    /// The scheduler counter totals.
    pub counters: SchedulerSnapshot,
}

/// One memory space's caching-pool counters at the end of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSample {
    /// Memory-space label (`host`, `device0`, ...).
    pub space: String,
    /// The pool counters for that space.
    pub stats: PoolStats,
}

/// Records per-iteration solver/in situ costs and the total run time.
#[derive(Debug)]
pub struct Profiler {
    records: Vec<IterationRecord>,
    backend_samples: Vec<BackendSample>,
    pool_samples: Vec<PoolSample>,
    counter_samples: Vec<CounterSample>,
    snapshot_samples: Vec<SnapshotSample>,
    scheduler_samples: Vec<SchedulerSample>,
    adaptive_samples: Vec<AdaptiveSample>,
    serve_samples: Vec<ServeStepStats>,
    started: Instant,
    total: Option<Duration>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Start the run clock.
    pub fn new() -> Self {
        Profiler {
            records: Vec::new(),
            backend_samples: Vec::new(),
            pool_samples: Vec::new(),
            counter_samples: Vec::new(),
            snapshot_samples: Vec::new(),
            scheduler_samples: Vec::new(),
            adaptive_samples: Vec::new(),
            serve_samples: Vec::new(),
            started: Instant::now(),
            total: None,
        }
    }

    /// Record one iteration.
    pub fn record(&mut self, step: u64, solver: Duration, insitu: Duration) {
        self.records.push(IterationRecord { step, solver, insitu });
    }

    /// Record one back-end's apparent cost at `step`.
    pub fn record_backend(&mut self, step: u64, backend: impl Into<String>, apparent: Duration) {
        self.record_backend_tainted(step, backend, apparent, false);
    }

    /// Like [`Profiler::record_backend`], marking the sample tainted when
    /// the step's dispatch retried or recovered from a fault (the retry
    /// backoff's wall clock is inside `apparent`).
    pub fn record_backend_tainted(
        &mut self,
        step: u64,
        backend: impl Into<String>,
        apparent: Duration,
        tainted: bool,
    ) {
        self.backend_samples.push(BackendSample {
            step,
            backend: backend.into(),
            apparent,
            tainted,
        });
    }

    /// Record one adaptive-controller decision.
    pub fn record_adaptive(
        &mut self,
        step: u64,
        backend: impl Into<String>,
        action: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.adaptive_samples.push(AdaptiveSample {
            step,
            backend: backend.into(),
            action: action.into(),
            detail: detail.into(),
        });
    }

    /// Every recorded adaptive decision, in application order.
    pub fn adaptive_samples(&self) -> &[AdaptiveSample] {
        &self.adaptive_samples
    }

    /// Dump the adaptive decision log as CSV.
    pub fn adaptive_csv(&self) -> String {
        let mut out = String::from("step,backend,action,detail\n");
        for s in &self.adaptive_samples {
            out.push_str(&format!("{},{},{},{}\n", s.step, s.backend, s.action, s.detail));
        }
        out
    }

    /// Every recorded per-backend sample, in dispatch order.
    pub fn backend_samples(&self) -> &[BackendSample] {
        &self.backend_samples
    }

    /// Per-backend aggregate apparent costs, in first-dispatch order.
    pub fn backend_breakdown(&self) -> Vec<BackendBreakdown> {
        let mut order: Vec<String> = Vec::new();
        for s in &self.backend_samples {
            if !order.contains(&s.backend) {
                order.push(s.backend.clone());
            }
        }
        order
            .into_iter()
            .map(|backend| {
                let samples = self.backend_samples.iter().filter(|s| s.backend == backend);
                let (mut n, mut total) = (0usize, Duration::ZERO);
                for s in samples {
                    n += 1;
                    total += s.apparent;
                }
                BackendBreakdown {
                    backend,
                    dispatches: n,
                    total_apparent: total,
                    mean_apparent: if n == 0 { Duration::ZERO } else { total / n as u32 },
                }
            })
            .collect()
    }

    /// Record one memory space's caching-pool counters (the bridge does
    /// this for the host and every device at finalize).
    pub fn record_pool_stats(&mut self, space: impl Into<String>, stats: PoolStats) {
        self.pool_samples.push(PoolSample { space: space.into(), stats });
    }

    /// Every recorded per-space pool sample.
    pub fn pool_samples(&self) -> &[PoolSample] {
        &self.pool_samples
    }

    /// Record one back-end's work-counter totals (the bridge does this at
    /// finalize for every back-end that keeps counters).
    pub fn record_counters(&mut self, backend: impl Into<String>, counters: CounterSnapshot) {
        self.record_counters_labeled(backend, "scalar", counters);
    }

    /// Like [`Profiler::record_counters`], labeling the sample with the
    /// data layout the back-end ran with (a [`hamr::Layout`] name).
    pub fn record_counters_labeled(
        &mut self,
        backend: impl Into<String>,
        layout: impl Into<String>,
        counters: CounterSnapshot,
    ) {
        self.counter_samples.push(CounterSample {
            backend: backend.into(),
            counters,
            layout: layout.into(),
        });
    }

    /// Every recorded per-backend counter sample.
    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counter_samples
    }

    /// Counter totals summed over every recorded back-end.
    pub fn counters_total(&self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for s in &self.counter_samples {
            total.accumulate(&s.counters);
        }
        total
    }

    /// Dump the per-backend counter samples as CSV: work counters, the
    /// failure/recovery outcome counters, then the per-tier communication
    /// traffic (intra- vs inter-node messages, bytes, and modeled time).
    ///
    /// The schema is fixed: every column is emitted for every row, with
    /// explicit zeros for features a run never exercised (no ragged or
    /// blank rows), so window-parsing consumers — the adaptive
    /// controller's offline analysis included — can rely on column
    /// positions. The full header is pinned by `csv_headers_are_pinned`.
    pub fn counters_csv(&self) -> String {
        let mut out = String::from(
            "backend,table_passes,kernel_launches,downloads,allreduces,fetches,\
             faults_injected,faults_retried,faults_recovered,faults_skipped,faults_aborted,\
             intra_messages,intra_bytes,intra_modeled_ns,\
             inter_messages,inter_bytes,inter_modeled_ns,relayout_bytes,\
             serve_delivered,serve_dropped,serve_bytes,layout\n",
        );
        for s in &self.counter_samples {
            let c = &s.counters;
            let f = &c.faults;
            let m = &c.comm;
            let v = &c.serve;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.backend,
                c.table_passes,
                c.kernel_launches,
                c.downloads,
                c.allreduces,
                c.fetches,
                f.injected,
                f.retried,
                f.recovered,
                f.skipped,
                f.aborted,
                m.intra_messages,
                m.intra_bytes,
                m.intra_modeled_ns,
                m.inter_messages,
                m.inter_bytes,
                m.inter_modeled_ns,
                c.relayout_bytes,
                v.delivered,
                v.dropped,
                v.payload_bytes,
                s.layout,
            ));
        }
        out
    }

    /// Record the snapshot layer's counter totals (the bridge does this
    /// at finalize, labeled with the active capture mode).
    pub fn record_snapshot_counters(
        &mut self,
        mode: impl Into<String>,
        counters: SnapshotCounterSnapshot,
    ) {
        self.snapshot_samples.push(SnapshotSample { mode: mode.into(), counters });
    }

    /// Every recorded snapshot-layer sample.
    pub fn snapshot_samples(&self) -> &[SnapshotSample] {
        &self.snapshot_samples
    }

    /// Dump the snapshot-layer samples as CSV.
    pub fn snapshot_csv(&self) -> String {
        let mut out = String::from(
            "mode,arrays_shared,arrays_copied,bytes_copied,cow_faults,copy_overlap_ns\n",
        );
        for s in &self.snapshot_samples {
            let c = &s.counters;
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                s.mode,
                c.arrays_shared,
                c.arrays_copied,
                c.bytes_copied,
                c.cow_faults,
                c.copy_overlap_ns,
            ));
        }
        out
    }

    /// Record one back-end's scheduler counter totals (the bridge does
    /// this at finalize for every engine that executes task graphs).
    pub fn record_scheduler_counters(
        &mut self,
        backend: impl Into<String>,
        counters: SchedulerSnapshot,
    ) {
        self.scheduler_samples.push(SchedulerSample { backend: backend.into(), counters });
    }

    /// Every recorded scheduler sample.
    pub fn scheduler_samples(&self) -> &[SchedulerSample] {
        &self.scheduler_samples
    }

    /// Scheduler counters summed over every recorded back-end.
    pub fn scheduler_total(&self) -> SchedulerSnapshot {
        let mut total = SchedulerSnapshot::default();
        for s in &self.scheduler_samples {
            total.accumulate(&s.counters);
        }
        total
    }

    /// Dump the per-backend scheduler samples as CSV.
    pub fn scheduler_csv(&self) -> String {
        let mut out = String::from("backend,tasks,steals,idle_ns,critical_path_ns\n");
        for s in &self.scheduler_samples {
            let c = &s.counters;
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                s.backend, c.tasks, c.steals, c.idle_ns, c.critical_path_ns,
            ));
        }
        out
    }

    /// Record one step's live-serving aggregates (the bridge drains the
    /// hub's per-step stats into these at finalize).
    pub fn record_serve(&mut self, stats: ServeStepStats) {
        self.serve_samples.push(stats);
    }

    /// Every recorded per-step serving sample, in step order.
    pub fn serve_samples(&self) -> &[ServeStepStats] {
        &self.serve_samples
    }

    /// Dump the per-step serving samples as CSV: sessions registered,
    /// frames delivered/dropped, client-observed delivery-latency
    /// percentiles, and the bytes publication serialized (once per step,
    /// independent of session count).
    pub fn serve_csv(&self) -> String {
        let mut out = String::from("step,sessions,delivered,dropped,p50_ns,p99_ns,bytes_copied\n");
        for s in &self.serve_samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                s.step, s.sessions, s.delivered, s.dropped, s.p50_ns, s.p99_ns, s.bytes_copied,
            ));
        }
        out
    }

    /// Pool counters summed over every recorded space.
    pub fn pool_total(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.pool_samples {
            total.accumulate(&s.stats);
        }
        total
    }

    /// Stop the run clock (idempotent; called by the bridge at finalize).
    pub fn stop(&mut self) {
        if self.total.is_none() {
            self.total = Some(self.started.elapsed());
        }
    }

    /// The recorded iterations.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Aggregate the run.
    pub fn summary(&self) -> ProfileSummary {
        let n = self.records.len();
        let sum =
            |f: fn(&IterationRecord) -> Duration| -> Duration { self.records.iter().map(f).sum() };
        ProfileSummary {
            iterations: n,
            mean_solver: if n == 0 { Duration::ZERO } else { sum(|r| r.solver) / n as u32 },
            mean_insitu: if n == 0 { Duration::ZERO } else { sum(|r| r.insitu) / n as u32 },
            total_runtime: self.total.unwrap_or_else(|| self.started.elapsed()),
        }
    }

    /// Dump the records as CSV (`step,solver_s,insitu_s`), the format the
    /// analysis scripts in the paper's reproducibility appendix consume.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,solver_s,insitu_s\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.9},{:.9}\n",
                r.step,
                r.solver.as_secs_f64(),
                r.insitu.as_secs_f64()
            ));
        }
        out
    }

    /// Dump the per-backend samples as CSV
    /// (`step,backend,apparent_s,tainted`).
    pub fn backend_csv(&self) -> String {
        let mut out = String::from("step,backend,apparent_s,tainted\n");
        for s in &self.backend_samples {
            out.push_str(&format!(
                "{},{},{:.9},{}\n",
                s.step,
                s.backend,
                s.apparent.as_secs_f64(),
                s.tainted as u8
            ));
        }
        out
    }

    /// Dump the per-space pool samples as CSV.
    pub fn pool_csv(&self) -> String {
        let mut out = String::from(
            "space,hits,misses,hit_rate,bytes_from_cache,raw_allocs,raw_alloc_bytes,\
             high_water_bytes,reclaims,trims\n",
        );
        for s in &self.pool_samples {
            let st = &s.stats;
            out.push_str(&format!(
                "{},{},{},{:.4},{},{},{},{},{},{}\n",
                s.space,
                st.hits,
                st.misses,
                st.hit_rate(),
                st.bytes_served_from_cache,
                st.raw_allocs,
                st.raw_alloc_bytes,
                st.high_water_bytes,
                st.reclaims,
                st.trims,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_profiler() {
        let p = Profiler::new();
        let s = p.summary();
        assert_eq!(s.iterations, 0);
        assert_eq!(s.mean_solver, Duration::ZERO);
        assert_eq!(s.mean_insitu, Duration::ZERO);
    }

    #[test]
    fn means_are_computed_per_iteration() {
        let mut p = Profiler::new();
        p.record(0, Duration::from_millis(10), Duration::from_millis(2));
        p.record(1, Duration::from_millis(30), Duration::from_millis(4));
        let s = p.summary();
        assert_eq!(s.iterations, 2);
        assert_eq!(s.mean_solver, Duration::from_millis(20));
        assert_eq!(s.mean_insitu, Duration::from_millis(3));
    }

    #[test]
    fn stop_freezes_total_runtime() {
        let mut p = Profiler::new();
        std::thread::sleep(Duration::from_millis(10));
        p.stop();
        let t1 = p.summary().total_runtime;
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.summary().total_runtime, t1, "stop() freezes the clock");
        assert!(t1 >= Duration::from_millis(9));
    }

    #[test]
    fn backend_breakdown_aggregates_per_backend() {
        let mut p = Profiler::new();
        p.record_backend(0, "binning", Duration::from_millis(4));
        p.record_backend(0, "histogram", Duration::from_millis(1));
        p.record_backend(1, "binning", Duration::from_millis(6));
        let bd = p.backend_breakdown();
        assert_eq!(bd.len(), 2);
        assert_eq!(bd[0].backend, "binning");
        assert_eq!(bd[0].dispatches, 2);
        assert_eq!(bd[0].total_apparent, Duration::from_millis(10));
        assert_eq!(bd[0].mean_apparent, Duration::from_millis(5));
        assert_eq!(bd[1].backend, "histogram");
        assert_eq!(bd[1].dispatches, 1);

        let csv = p.backend_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "step,backend,apparent_s,tainted");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,binning,0.004"));
        assert!(lines[1].ends_with(",0"), "untainted samples dump a 0 flag");
    }

    #[test]
    fn tainted_backend_samples_carry_the_flag_through_the_csv() {
        let mut p = Profiler::new();
        p.record_backend(0, "binning", Duration::from_millis(4));
        p.record_backend_tainted(1, "binning", Duration::from_millis(254), true);
        assert!(!p.backend_samples()[0].tainted);
        assert!(p.backend_samples()[1].tainted);
        let lines: Vec<_> = p.backend_csv().lines().map(String::from).collect();
        assert!(lines[1].ends_with(",0"));
        assert!(lines[2].ends_with(",1"));
        // Taint excludes a sample from comparisons, not from the
        // aggregate: the breakdown still counts every dispatch.
        assert_eq!(p.backend_breakdown()[0].dispatches, 2);
    }

    #[test]
    fn adaptive_samples_record_and_dump() {
        let mut p = Profiler::new();
        p.record_adaptive(4, "binning_suite", "probe", "device=0 layout=scalar");
        p.record_adaptive(8, "binning_suite", "commit", "device=-1 layout=aosoa8");
        p.record_adaptive(8, "bridge", "commit", "snapshot=delta");
        assert_eq!(p.adaptive_samples().len(), 3);
        let lines: Vec<_> = p.adaptive_csv().lines().map(String::from).collect();
        assert_eq!(lines[0], "step,backend,action,detail");
        assert_eq!(lines[1], "4,binning_suite,probe,device=0 layout=scalar");
        assert_eq!(lines[3], "8,bridge,commit,snapshot=delta");
    }

    /// Every CSV the profiler emits has a fixed schema: the full headers
    /// are pinned here so a column appended without updating every
    /// consumer (the adaptive controller's window parsing included) fails
    /// loudly instead of silently misaligning.
    #[test]
    fn csv_headers_are_pinned() {
        let p = Profiler::new();
        assert_eq!(p.to_csv(), "step,solver_s,insitu_s\n");
        assert_eq!(p.backend_csv(), "step,backend,apparent_s,tainted\n");
        assert_eq!(
            p.counters_csv(),
            "backend,table_passes,kernel_launches,downloads,allreduces,fetches,\
             faults_injected,faults_retried,faults_recovered,faults_skipped,faults_aborted,\
             intra_messages,intra_bytes,intra_modeled_ns,\
             inter_messages,inter_bytes,inter_modeled_ns,relayout_bytes,\
             serve_delivered,serve_dropped,serve_bytes,layout\n"
        );
        assert_eq!(
            p.snapshot_csv(),
            "mode,arrays_shared,arrays_copied,bytes_copied,cow_faults,copy_overlap_ns\n"
        );
        assert_eq!(p.scheduler_csv(), "backend,tasks,steals,idle_ns,critical_path_ns\n");
        assert_eq!(
            p.pool_csv(),
            "space,hits,misses,hit_rate,bytes_from_cache,raw_allocs,raw_alloc_bytes,\
             high_water_bytes,reclaims,trims\n"
        );
        assert_eq!(p.adaptive_csv(), "step,backend,action,detail\n");
        assert_eq!(p.serve_csv(), "step,sessions,delivered,dropped,p50_ns,p99_ns,bytes_copied\n");
    }

    #[test]
    fn pool_samples_aggregate_and_dump() {
        let mut p = Profiler::new();
        let host =
            PoolStats { hits: 3, misses: 1, bytes_served_from_cache: 1536, ..Default::default() };
        let dev = PoolStats { hits: 5, misses: 5, high_water_bytes: 4096, ..Default::default() };
        p.record_pool_stats("host", host);
        p.record_pool_stats("device0", dev);
        assert_eq!(p.pool_samples().len(), 2);
        let total = p.pool_total();
        assert_eq!(total.hits, 8);
        assert_eq!(total.misses, 6);
        assert_eq!(total.high_water_bytes, 4096);

        let csv = p.pool_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("space,hits,misses,hit_rate"));
        assert!(lines[1].starts_with("host,3,1,0.7500,1536"));
        assert!(lines[2].starts_with("device0,5,5,0.5000"));
    }

    #[test]
    fn counter_samples_aggregate_and_dump() {
        let mut p = Profiler::new();
        p.record_counters(
            "binning_suite",
            CounterSnapshot {
                table_passes: 9,
                kernel_launches: 9,
                downloads: 9,
                allreduces: 1,
                fetches: 12,
                relayout_bytes: 0,
                faults: FaultSnapshot::default(),
                comm: minimpi::TierSnapshot::default(),
                serve: ServeSnapshot::default(),
            },
        );
        p.record_counters_labeled(
            "data_binning",
            "aosoa8",
            CounterSnapshot {
                table_passes: 90,
                kernel_launches: 90,
                downloads: 90,
                allreduces: 10,
                fetches: 27,
                relayout_bytes: 4096,
                faults: FaultSnapshot {
                    injected: 2,
                    retried: 3,
                    recovered: 2,
                    skipped: 0,
                    aborted: 0,
                },
                comm: minimpi::TierSnapshot {
                    intra_messages: 18,
                    intra_bytes: 1440,
                    intra_modeled_ns: 90,
                    inter_messages: 6,
                    inter_bytes: 480,
                    inter_modeled_ns: 210,
                },
                serve: ServeSnapshot {
                    delivered: 7,
                    dropped: 1,
                    payload_bytes: 640,
                    ..Default::default()
                },
            },
        );
        let total = p.counters_total();
        assert_eq!(total.table_passes, 99);
        assert_eq!(total.allreduces, 11);
        assert_eq!(total.faults.injected, 2);
        assert_eq!(total.faults.recovered, 2);
        let csv = p.counters_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "backend,table_passes,kernel_launches,downloads,allreduces,fetches,\
             faults_injected,faults_retried,faults_recovered,faults_skipped,faults_aborted,\
             intra_messages,intra_bytes,intra_modeled_ns,\
             inter_messages,inter_bytes,inter_modeled_ns,relayout_bytes,\
             serve_delivered,serve_dropped,serve_bytes,layout"
        );
        // A run without faults, tiered communication, or serving dumps
        // explicit zeros in every column — never a ragged row.
        assert_eq!(lines[1], "binning_suite,9,9,9,1,12,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,scalar");
        assert_eq!(
            lines[2],
            "data_binning,90,90,90,10,27,2,3,2,0,0,18,1440,90,6,480,210,4096,7,1,640,aosoa8"
        );
        assert_eq!(p.counters_total().comm.inter_bytes, 480);
        assert_eq!(p.counters_total().relayout_bytes, 4096);
    }

    #[test]
    fn snapshot_samples_dump_with_mode_label() {
        let mut p = Profiler::new();
        p.record_snapshot_counters(
            "cow",
            SnapshotCounterSnapshot {
                arrays_shared: 1080,
                arrays_copied: 0,
                bytes_copied: 98304,
                cow_faults: 3,
                copy_overlap_ns: 12345,
            },
        );
        assert_eq!(p.snapshot_samples().len(), 1);
        let csv = p.snapshot_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "mode,arrays_shared,arrays_copied,bytes_copied,cow_faults,copy_overlap_ns"
        );
        assert_eq!(lines[1], "cow,1080,0,98304,3,12345");
    }

    #[test]
    fn scheduler_samples_aggregate_and_dump() {
        let mut p = Profiler::new();
        p.record_scheduler_counters(
            "binning_suite",
            SchedulerSnapshot { tasks: 40, steals: 7, idle_ns: 1200, critical_path_ns: 900 },
        );
        p.record_scheduler_counters(
            "histogram",
            SchedulerSnapshot { tasks: 10, steals: 0, idle_ns: 300, critical_path_ns: 100 },
        );
        let total = p.scheduler_total();
        assert_eq!((total.tasks, total.steals), (50, 7));
        assert_eq!((total.idle_ns, total.critical_path_ns), (1500, 1000));
        let csv = p.scheduler_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "backend,tasks,steals,idle_ns,critical_path_ns");
        assert_eq!(lines[1], "binning_suite,40,7,1200,900");
        assert_eq!(lines[2], "histogram,10,0,300,100");
    }

    #[test]
    fn serve_samples_record_and_dump() {
        let mut p = Profiler::new();
        p.record_serve(ServeStepStats {
            step: 2,
            sessions: 512,
            delivered: 1024,
            dropped: 3,
            p50_ns: 42_000,
            p99_ns: 910_000,
            bytes_copied: 8192,
        });
        assert_eq!(p.serve_samples().len(), 1);
        let lines: Vec<_> = p.serve_csv().lines().map(String::from).collect();
        assert_eq!(lines[0], "step,sessions,delivered,dropped,p50_ns,p99_ns,bytes_copied");
        assert_eq!(lines[1], "2,512,1024,3,42000,910000,8192");
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let mut p = Profiler::new();
        p.record(5, Duration::from_secs(1), Duration::from_millis(500));
        let csv = p.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "step,solver_s,insitu_s");
        assert!(lines[1].starts_with("5,1.0"));
    }
}
