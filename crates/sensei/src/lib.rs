//! # sensei — the generic *in situ* framework, extended for heterogeneous
//! architectures
//!
//! SENSEI couples simulation codes to back-end data-processing and
//! visualization libraries through a single instrumentation, with run-time
//! switching between back-ends. This crate reproduces the core mediation
//! layer together with the two extension sets the SC-W 2023 paper
//! contributes:
//!
//! **Data-model extensions (§2)** live in the [`svtk`]/[`hamr`] crates
//! (re-exported here): heterogeneous data arrays with PM interoperability
//! and zero-copy transfer.
//!
//! **Execution-model extensions (§3)** live here:
//!
//! * [`ExecutionMethod`] — *lockstep* (simulation and in situ take turns)
//!   or *asynchronous* (in situ deep-copies its inputs and runs in a
//!   separate thread, concurrently with the simulation);
//! * [`Placement`] — run-time control over whether in situ work runs on
//!   the host, on the data's device, or on dedicated device(s);
//! * [`DeviceSelector`] — automatic device selection, Eq. (1):
//!   `d = (r mod n_u * s + d_0) mod n_a`;
//! * [`BackendControls`] — the new control parameters, defined once and
//!   available to every analysis back-end (the paper puts them in the
//!   back-end base class);
//! * [`ExecutionEngine`] — the pluggable layer that decides *how* a mode
//!   executes: the built-in [`InlineEngine`] runs lockstep back-ends in
//!   the simulation's thread; [`ThreadedEngine`] gives each asynchronous
//!   back-end a persistent worker fed through a bounded snapshot queue
//!   with a configurable [`OverflowPolicy`] (block / drop-oldest / error).
//!   New modes register through an [`EngineRegistry`];
//! * [`DataRequirements`] — what each back-end declares it reads
//!   ([`AnalysisAdaptor::required_arrays`]); asynchronous snapshots deep
//!   copy only the union of the due back-ends' requirements;
//! * [`ConfigurableAnalysis`] — back-end instantiation from SENSEI's
//!   run-time XML configuration (including `queue_depth` / `overflow`);
//! * [`intransit`] — M-to-N in-transit processing on dedicated
//!   analysis ranks (the off-node counterpart of the placement study);
//! * [`Bridge`] — the simulation-facing instrumentation
//!   (initialize / execute-per-iteration / finalize) with a built-in
//!   [`Profiler`] recording per-iteration solver and in situ times plus a
//!   per-backend apparent-cost breakdown (the data behind the paper's
//!   Figures 2 and 3).

mod adaptive;
mod adaptor;
mod bridge;
mod configurable;
mod controls;
mod counters;
mod dag;
mod device_select;
mod engine;
mod error;
mod execution;
pub mod intransit;
mod payload;
mod placement;
mod profiler;
pub mod queue;
mod recovery;
mod registry;
mod requirements;
mod scheduler;
pub mod serve;
mod snapshot;

pub use payload::{collect_columns, StepPayload};
pub use serve::{
    Frame, PublishStats, ServeConfig, ServeHub, ServeKnobs, ServeStepStats, SessionConfig,
    SessionHandle, Steer, SteeringCommand, StepPin, Topic,
};

pub use adaptive::{
    AdaptiveAction, AdaptiveConfig, AdaptiveController, AdaptiveDecision, AdaptiveEnv,
    BackendObservation, StepObservation,
};
pub use adaptor::{AnalysisAdaptor, ArrayMetadata, DataAdaptor, ExecContext, MeshMetadata};
pub use bridge::{AdaptorFactory, Bridge};
pub use configurable::{BackendConfig, ConfigurableAnalysis, TopologyConfig};
pub use controls::{BackendControls, DeviceSpec};
pub use counters::{
    AnalysisCounters, CommCounters, CounterSnapshot, FaultCounters, FaultSnapshot, ServeCounters,
    ServeSnapshot, SnapshotCounterSnapshot, SnapshotCounters,
};
pub use dag::{DeviceStreams, TaskCtx, TaskGraph, TaskId, TaskKind, TaskSite};
pub use device_select::{select_device, DeviceSelector};
pub use engine::{
    DagEngine, EngineContext, EngineFactory, EngineRegistry, ExecutionEngine, InlineEngine,
    ThreadedEngine,
};
pub use error::{Error, Result};
pub use execution::ExecutionMethod;
pub use placement::Placement;
pub use profiler::{
    AdaptiveSample, BackendBreakdown, BackendSample, CounterSample, IterationRecord, PoolSample,
    ProfileSummary, Profiler, SchedulerSample, SnapshotSample,
};
pub use queue::OverflowPolicy;
pub use recovery::{run_with_recovery, RecoveryPolicy};
pub use registry::{AnalysisFactory, AnalysisRegistry, CreateContext};
pub use requirements::{ArraySelection, DataRequirements, MeshRequirements, ANY_MESH};
pub use scheduler::{DagOutcome, DagScheduler, SchedulerCounters, SchedulerSnapshot};
pub use snapshot::{SnapshotAdaptor, SnapshotMode, SnapshotPipeline};
