//! The pluggable execution-engine layer.
//!
//! An [`ExecutionEngine`] owns one analysis back-end and decides *how* it
//! runs relative to the simulation. The two engines the paper describes
//! (§3) ship here — [`InlineEngine`] for lockstep and [`ThreadedEngine`]
//! for asynchronous execution — and the bridge resolves a back-end's
//! [`crate::ExecutionMethod`] to an engine through an [`EngineRegistry`],
//! so alternative engines (a pool, an in-transit sender, a recording
//! harness) can be plugged in without touching the bridge.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use devsim::SimNode;
use minimpi::Comm;

use crate::adaptor::{AnalysisAdaptor, DataAdaptor, ExecContext};
use crate::controls::BackendControls;
use crate::counters::AnalysisCounters;
use crate::error::{Error, Result};
use crate::queue::{bounded, BoundedSender, SendError};
use crate::recovery::run_with_recovery;
use crate::requirements::DataRequirements;
use crate::scheduler::{DagScheduler, SchedulerCounters};
use crate::snapshot::SnapshotAdaptor;

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One guarded attempt at running `adaptor.execute`: fault injection is
/// armed for this rank for the duration of the call, and a panicking
/// back-end is caught and converted to [`Error::Analysis`] so the engine's
/// recovery policy gets to decide what happens, instead of the panic
/// unwinding into the solver loop (or killing a worker thread silently).
fn guarded_execute(
    adaptor: &mut Box<dyn AnalysisAdaptor>,
    name: &str,
    rank: usize,
    data: &dyn DataAdaptor,
    ctx: &ExecContext<'_>,
) -> Result<bool> {
    let _armed = devsim::fault::arm(rank);
    match std::panic::catch_unwind(AssertUnwindSafe(|| adaptor.execute(data, ctx))) {
        Ok(result) => result,
        Err(payload) => Err(Error::Analysis(format!(
            "analysis '{name}' panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

/// How a back-end's work is scheduled relative to the simulation.
///
/// The bridge calls [`dispatch`](Self::dispatch) for every iteration the
/// back-end is due and [`finalize`](Self::finalize) once at shutdown.
/// Engines that run the analysis on another thread report the *apparent*
/// cost (what the simulation waits for) through the bridge's timing of
/// `dispatch`; the analysis itself overlaps the solver.
pub trait ExecutionEngine: Send {
    /// The owned back-end's instance name (for profiling and errors).
    fn backend_name(&self) -> &str;

    /// The owned back-end's execution-model controls.
    fn controls(&self) -> &BackendControls;

    /// What the back-end needs deep-copied when it runs off a snapshot.
    fn requirements(&self) -> DataRequirements;

    /// True when `dispatch` consumes a deep-copied snapshot instead of
    /// accessing the simulation's live data.
    fn needs_snapshot(&self) -> bool;

    /// The owned back-end's work counters, if it keeps any. Engines that
    /// move the back-end onto a worker thread must capture the handle
    /// before the move so the bridge can still read the totals.
    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        None
    }

    /// Work-stealing scheduler counters, for engines that execute steps
    /// as task graphs ([`DagEngine`]); the bridge records them into the
    /// profiler at finalize.
    fn scheduler_counters(&self) -> Option<Arc<SchedulerCounters>> {
        None
    }

    /// Snapshots currently waiting in the engine's hand-off queue
    /// (`None` for engines without one). A persistently full queue is
    /// back-pressure: the adaptive controller reads it as a sign the
    /// back-end cannot keep up with its current configuration.
    fn queue_occupancy(&self) -> Option<usize> {
        None
    }

    /// Run (or hand off) one iteration. `snapshot` is `Some` iff
    /// [`needs_snapshot`](Self::needs_snapshot); it may contain the union
    /// of several back-ends' requirements. Returns `Ok(false)` when the
    /// back-end requests the simulation stop.
    fn dispatch(
        &mut self,
        data: &dyn DataAdaptor,
        snapshot: Option<&Arc<SnapshotAdaptor>>,
        comm: &Comm,
        node: &Arc<SimNode>,
    ) -> Result<bool>;

    /// Complete all outstanding work and finalize the back-end.
    fn finalize(&mut self, comm: &Comm, node: &Arc<SimNode>) -> Result<()>;
}

/// Lockstep execution: the back-end runs inline on the simulation's
/// thread, with zero-copy access to the live data (§3's lockstep method).
///
/// Each dispatch runs under the back-end's
/// [`RecoveryPolicy`](crate::RecoveryPolicy) with fault injection armed
/// for this rank, so injected device faults and analysis panics are
/// retried, skipped, or surfaced per policy — and counted in the
/// back-end's [`FaultCounters`](crate::FaultCounters).
pub struct InlineEngine {
    adaptor: Box<dyn AnalysisAdaptor>,
    /// The adaptor's counters, or engine-owned ones for back-ends without
    /// any — recovery outcomes need somewhere to be recorded either way.
    counters: Arc<AnalysisCounters>,
}

impl InlineEngine {
    /// Wrap `adaptor` for inline execution.
    pub fn new(adaptor: Box<dyn AnalysisAdaptor>) -> Self {
        let counters = adaptor.counters().unwrap_or_default();
        InlineEngine { adaptor, counters }
    }
}

impl ExecutionEngine for InlineEngine {
    fn backend_name(&self) -> &str {
        self.adaptor.name()
    }

    fn controls(&self) -> &BackendControls {
        self.adaptor.controls()
    }

    fn requirements(&self) -> DataRequirements {
        self.adaptor.required_arrays()
    }

    fn needs_snapshot(&self) -> bool {
        false
    }

    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }

    fn dispatch(
        &mut self,
        data: &dyn DataAdaptor,
        _snapshot: Option<&Arc<SnapshotAdaptor>>,
        comm: &Comm,
        node: &Arc<SimNode>,
    ) -> Result<bool> {
        let ctx = ExecContext::new(comm, node);
        let policy = self.adaptor.controls().recovery;
        let rank = comm.rank();
        let name = self.adaptor.name().to_string();
        let counters = self.counters.clone();
        let adaptor = &mut self.adaptor;
        run_with_recovery(policy, &counters, &name, || {
            guarded_execute(adaptor, &name, rank, data, &ctx)
        })
    }

    fn finalize(&mut self, comm: &Comm, node: &Arc<SimNode>) -> Result<()> {
        let ctx = ExecContext::new(comm, node);
        self.adaptor.finalize(&ctx)
    }
}

/// Asynchronous execution: a persistent worker thread owns the back-end
/// and a dedicated duplicate communicator; `dispatch` hands a deep-copied
/// snapshot through a bounded queue and returns immediately (§4.3).
///
/// The queue depth and overflow policy come from the back-end's
/// [`BackendControls`]; a worker that fails or panics surfaces as
/// [`Error::Analysis`] from the next `dispatch` or from `finalize`.
pub struct ThreadedEngine {
    name: String,
    controls: BackendControls,
    requirements: DataRequirements,
    counters: Arc<AnalysisCounters>,
    tx: Option<BoundedSender<Arc<SnapshotAdaptor>>>,
    handle: Option<std::thread::JoinHandle<Result<()>>>,
    /// A failure already observed (spawn failure, or a dead worker found
    /// by an earlier dispatch): every later dispatch returns it, and
    /// `finalize` surfaces it instead of silently reporting success.
    failed: Option<Error>,
}

impl ThreadedEngine {
    /// Move `adaptor` onto a new worker thread. `comm` must be a
    /// dedicated duplicate (the worker owns it; analysis traffic must not
    /// interfere with the simulation's communicator).
    ///
    /// A failure to spawn the OS thread does not panic: the engine comes
    /// back constructed-but-failed, the first `dispatch` and `finalize`
    /// return the spawn error as [`Error::Analysis`].
    pub fn spawn(mut adaptor: Box<dyn AnalysisAdaptor>, comm: Comm, node: Arc<SimNode>) -> Self {
        let name = adaptor.name().to_string();
        let controls = *adaptor.controls();
        let requirements = adaptor.required_arrays();
        // Captured before the adaptor moves to the worker: the counters
        // are shared atomics, so the bridge reads live totals. Back-ends
        // without counters get engine-owned ones so recovery outcomes are
        // still recorded.
        let counters = adaptor.counters().unwrap_or_default();
        let (tx, rx) = bounded::<Arc<SnapshotAdaptor>>(controls.queue_depth, controls.overflow);
        let thread_name = format!("sensei-insitu-{name}");
        let worker_name = name.clone();
        let worker_counters = counters.clone();
        let policy = controls.recovery;
        let spawned = std::thread::Builder::new().name(thread_name).spawn(move || -> Result<()> {
            let ctx = ExecContext::new(&comm, &node);
            let rank = comm.rank();
            while let Some(snapshot) = rx.recv() {
                // Delta snapshots arrive with copies possibly still in
                // flight on the dedicated copy stream; the *worker* pays
                // the wait (overlapped with the solver), not the solver.
                snapshot.wait_copies();
                // Per-snapshot recovery: a fault in one iteration is
                // retried or skipped per policy without killing the
                // worker; only an abort (or exhausted retries) ends it.
                let outcome = run_with_recovery(policy, &worker_counters, &worker_name, || {
                    guarded_execute(&mut adaptor, &worker_name, rank, snapshot.as_ref(), &ctx)
                });
                // This worker is done with the snapshot either way; the
                // last consumer's finish drops the CoW pins so later
                // producer writes skip the fault copy.
                snapshot.consumer_finished();
                outcome?;
            }
            adaptor.finalize(&ctx)
        });
        match spawned {
            Ok(handle) => ThreadedEngine {
                name,
                controls,
                requirements,
                counters,
                tx: Some(tx),
                handle: Some(handle),
                failed: None,
            },
            Err(io) => {
                let failed = Error::Analysis(format!(
                    "failed to spawn in situ worker thread for '{name}': {io}"
                ));
                ThreadedEngine {
                    name,
                    controls,
                    requirements,
                    counters,
                    tx: None,
                    handle: None,
                    failed: Some(failed),
                }
            }
        }
    }

    /// Join the worker and translate its exit into a `Result` (used both
    /// when a send finds the worker gone and at finalize).
    fn join_worker(&mut self) -> Result<()> {
        match self.handle.take() {
            Some(h) => match h.join() {
                Ok(result) => result,
                Err(_) => Err(Error::Analysis(format!("in situ worker '{}' panicked", self.name))),
            },
            None => Ok(()),
        }
    }
}

impl ExecutionEngine for ThreadedEngine {
    fn backend_name(&self) -> &str {
        &self.name
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn requirements(&self) -> DataRequirements {
        self.requirements.clone()
    }

    fn needs_snapshot(&self) -> bool {
        true
    }

    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }

    fn queue_occupancy(&self) -> Option<usize> {
        self.tx.as_ref().map(|tx| tx.len())
    }

    fn dispatch(
        &mut self,
        _data: &dyn DataAdaptor,
        snapshot: Option<&Arc<SnapshotAdaptor>>,
        _comm: &Comm,
        _node: &Arc<SimNode>,
    ) -> Result<bool> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        // A missing snapshot is a bridge-side contract violation; report
        // it as an analysis error instead of panicking the solver thread.
        let Some(snapshot) = snapshot else {
            return Err(Error::Analysis(format!(
                "in situ engine '{}' expected a snapshot but the bridge supplied none",
                self.name
            )));
        };
        let tx = self.tx.as_ref().ok_or(Error::Finalized)?;
        match tx.send(snapshot.clone()) {
            Ok(_) => Ok(true),
            Err(SendError::Full) => Err(Error::Analysis(format!(
                "in situ queue for '{}' is full ({} snapshots in flight, overflow policy \
                 'error')",
                self.name, self.controls.queue_depth
            ))),
            Err(SendError::Closed) => {
                // Stash the error like the disconnect arm below: a
                // dispatch into a closed queue drops the iteration, and
                // finalize must surface that instead of silently
                // reporting success when the caller swallows this error.
                let err = Error::Analysis(format!("in situ queue for '{}' is closed", self.name));
                self.failed = Some(err.clone());
                Err(err)
            }
            Err(SendError::Disconnected) => {
                // The worker exited early — an analysis error or a panic.
                // Joining it (non-blocking: the thread is gone) recovers
                // the reason; stash it so finalize reports the failure
                // even if the caller swallows this dispatch error.
                self.tx = None;
                let err = match self.join_worker() {
                    Ok(()) => {
                        Error::Analysis(format!("in situ worker '{}' terminated early", self.name))
                    }
                    Err(e) => e,
                };
                self.failed = Some(err.clone());
                Err(err)
            }
        }
    }

    fn finalize(&mut self, _comm: &Comm, _node: &Arc<SimNode>) -> Result<()> {
        if let Some(tx) = self.tx.take() {
            // Closing the queue ends the worker loop after it drains.
            tx.close();
        }
        let join_result = self.join_worker();
        // A stashed failure (spawn error, dead worker seen at dispatch)
        // takes precedence: it is the root cause.
        match self.failed.take() {
            Some(err) => Err(err),
            None => join_result,
        }
    }
}

/// Dataflow execution: like [`ThreadedEngine`], a persistent worker
/// thread owns the back-end and consumes deep-copied snapshots from a
/// bounded queue — but each step runs as a task graph under a
/// work-stealing [`DagScheduler`] spanning every device slot and stream
/// of the node (DESIGN.md §13).
///
/// Back-ends that plan task graphs
/// ([`AnalysisAdaptor::supports_dag`]) get per-task-node recovery inside
/// the scheduler; back-ends that do not are dispatched exactly like
/// [`ThreadedEngine`] does (per-snapshot recovery around a monolithic
/// `execute`), which is what lets this engine subsume the threaded path:
/// `asynchronous` remains selectable for one more release, after which it
/// becomes an alias for `dag`.
pub struct DagEngine {
    name: String,
    controls: BackendControls,
    requirements: DataRequirements,
    counters: Arc<AnalysisCounters>,
    scheduler_counters: Arc<SchedulerCounters>,
    tx: Option<BoundedSender<Arc<SnapshotAdaptor>>>,
    handle: Option<std::thread::JoinHandle<Result<()>>>,
    failed: Option<Error>,
}

impl DagEngine {
    /// Move `adaptor` onto a new worker thread owning a [`DagScheduler`].
    /// `comm` must be a dedicated duplicate, exactly as for
    /// [`ThreadedEngine::spawn`].
    pub fn spawn(mut adaptor: Box<dyn AnalysisAdaptor>, comm: Comm, node: Arc<SimNode>) -> Self {
        let name = adaptor.name().to_string();
        let controls = *adaptor.controls();
        let requirements = adaptor.required_arrays();
        let counters = adaptor.counters().unwrap_or_default();
        let scheduler_counters = SchedulerCounters::new();
        let (tx, rx) = bounded::<Arc<SnapshotAdaptor>>(controls.queue_depth, controls.overflow);
        let thread_name = format!("sensei-dag-{name}");
        let worker_name = name.clone();
        let worker_counters = counters.clone();
        let worker_sched_counters = scheduler_counters.clone();
        let policy = controls.recovery;
        let spawned = std::thread::Builder::new().name(thread_name).spawn(move || -> Result<()> {
            let rank = comm.rank();
            let mut sched = DagScheduler::new(node.clone(), rank, worker_sched_counters);
            let ctx = ExecContext::new(&comm, &node);
            let dataflow = adaptor.supports_dag();
            while let Some(snapshot) = rx.recv() {
                snapshot.wait_copies();
                let outcome = if dataflow {
                    // Recovery applies per task node inside the scheduler;
                    // wrapping the whole step again would double-count
                    // faults and re-run collectives. Panics (plan-time or
                    // escaping a scoped worker) are still contained here.
                    let _armed = devsim::fault::arm(rank);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        adaptor.execute_dag(snapshot.as_ref(), &ctx, &mut sched)
                    })) {
                        Ok(result) => result,
                        Err(payload) => Err(Error::Analysis(format!(
                            "analysis '{worker_name}' panicked: {}",
                            panic_message(payload.as_ref())
                        ))),
                    }
                } else {
                    run_with_recovery(policy, &worker_counters, &worker_name, || {
                        guarded_execute(&mut adaptor, &worker_name, rank, snapshot.as_ref(), &ctx)
                    })
                };
                snapshot.consumer_finished();
                outcome?;
            }
            adaptor.finalize(&ctx)
        });
        match spawned {
            Ok(handle) => DagEngine {
                name,
                controls,
                requirements,
                counters,
                scheduler_counters,
                tx: Some(tx),
                handle: Some(handle),
                failed: None,
            },
            Err(io) => {
                let failed = Error::Analysis(format!(
                    "failed to spawn dag worker thread for '{name}': {io}"
                ));
                DagEngine {
                    name,
                    controls,
                    requirements,
                    counters,
                    scheduler_counters,
                    tx: None,
                    handle: None,
                    failed: Some(failed),
                }
            }
        }
    }

    fn join_worker(&mut self) -> Result<()> {
        match self.handle.take() {
            Some(h) => match h.join() {
                Ok(result) => result,
                Err(_) => Err(Error::Analysis(format!("dag worker '{}' panicked", self.name))),
            },
            None => Ok(()),
        }
    }
}

impl ExecutionEngine for DagEngine {
    fn backend_name(&self) -> &str {
        &self.name
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn requirements(&self) -> DataRequirements {
        self.requirements.clone()
    }

    fn needs_snapshot(&self) -> bool {
        true
    }

    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }

    fn scheduler_counters(&self) -> Option<Arc<SchedulerCounters>> {
        Some(self.scheduler_counters.clone())
    }

    fn queue_occupancy(&self) -> Option<usize> {
        self.tx.as_ref().map(|tx| tx.len())
    }

    fn dispatch(
        &mut self,
        _data: &dyn DataAdaptor,
        snapshot: Option<&Arc<SnapshotAdaptor>>,
        _comm: &Comm,
        _node: &Arc<SimNode>,
    ) -> Result<bool> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        let Some(snapshot) = snapshot else {
            return Err(Error::Analysis(format!(
                "dag engine '{}' expected a snapshot but the bridge supplied none",
                self.name
            )));
        };
        let tx = self.tx.as_ref().ok_or(Error::Finalized)?;
        match tx.send(snapshot.clone()) {
            Ok(_) => Ok(true),
            Err(SendError::Full) => Err(Error::Analysis(format!(
                "in situ queue for '{}' is full ({} snapshots in flight, overflow policy \
                 'error')",
                self.name, self.controls.queue_depth
            ))),
            Err(SendError::Closed) => {
                let err = Error::Analysis(format!("in situ queue for '{}' is closed", self.name));
                self.failed = Some(err.clone());
                Err(err)
            }
            Err(SendError::Disconnected) => {
                self.tx = None;
                let err = match self.join_worker() {
                    Ok(()) => {
                        Error::Analysis(format!("dag worker '{}' terminated early", self.name))
                    }
                    Err(e) => e,
                };
                self.failed = Some(err.clone());
                Err(err)
            }
        }
    }

    fn finalize(&mut self, _comm: &Comm, _node: &Arc<SimNode>) -> Result<()> {
        if let Some(tx) = self.tx.take() {
            tx.close();
        }
        let join_result = self.join_worker();
        match self.failed.take() {
            Some(err) => Err(err),
            None => join_result,
        }
    }
}

/// Context an [`EngineFactory`] builds an engine in.
pub struct EngineContext<'a> {
    /// The simulation's communicator. Engines needing their own duplicate
    /// (threaded engines) call [`Comm::dup`] — collectively, so every
    /// rank must attach the same back-ends in the same order.
    pub comm: &'a Comm,
    /// The heterogeneous node the rank runs on.
    pub node: &'a Arc<SimNode>,
}

/// Builds an [`ExecutionEngine`] around a back-end.
pub type EngineFactory = Box<
    dyn Fn(Box<dyn AnalysisAdaptor>, &EngineContext<'_>) -> Result<Box<dyn ExecutionEngine>>
        + Send
        + Sync,
>;

/// Maps execution-mode names (the XML `mode` spellings) to engine
/// factories. The bridge looks a back-end's
/// [`crate::ExecutionMethod::name`] up here, so replacing or extending
/// how a mode executes is a registration, not a bridge change.
pub struct EngineRegistry {
    factories: HashMap<String, EngineFactory>,
}

impl EngineRegistry {
    /// A registry with no engines (register your own).
    pub fn empty() -> Self {
        EngineRegistry { factories: HashMap::new() }
    }

    /// The built-in engines: `lockstep` → [`InlineEngine`],
    /// `asynchronous` → [`ThreadedEngine`] (deprecated; one more release
    /// before it aliases to `dag`), `dag` → [`DagEngine`].
    pub fn with_defaults() -> Self {
        let mut reg = EngineRegistry::empty();
        reg.register("lockstep", |adaptor, _ctx| {
            Ok(Box::new(InlineEngine::new(adaptor)) as Box<dyn ExecutionEngine>)
        });
        reg.register("asynchronous", |adaptor, ctx| {
            Ok(Box::new(ThreadedEngine::spawn(adaptor, ctx.comm.dup(), ctx.node.clone()))
                as Box<dyn ExecutionEngine>)
        });
        reg.register("dag", |adaptor, ctx| {
            Ok(Box::new(DagEngine::spawn(adaptor, ctx.comm.dup(), ctx.node.clone()))
                as Box<dyn ExecutionEngine>)
        });
        reg
    }

    /// Register (or replace) the factory for `mode`.
    pub fn register(
        &mut self,
        mode: impl Into<String>,
        factory: impl Fn(Box<dyn AnalysisAdaptor>, &EngineContext<'_>) -> Result<Box<dyn ExecutionEngine>>
            + Send
            + Sync
            + 'static,
    ) {
        self.factories.insert(mode.into(), Box::new(factory));
    }

    /// True when a factory is registered for `mode`.
    pub fn contains(&self, mode: &str) -> bool {
        self.factories.contains_key(mode)
    }

    /// Registered mode names, sorted.
    pub fn mode_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Build the engine for `mode` around `adaptor`.
    pub fn create(
        &self,
        mode: &str,
        adaptor: Box<dyn AnalysisAdaptor>,
        ctx: &EngineContext<'_>,
    ) -> Result<Box<dyn ExecutionEngine>> {
        let factory = self.factories.get(mode).ok_or_else(|| {
            Error::Config(format!("no execution engine registered for mode '{mode}'"))
        })?;
        factory(adaptor, ctx)
    }
}

impl Default for EngineRegistry {
    /// [`EngineRegistry::with_defaults`].
    fn default() -> Self {
        EngineRegistry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionMethod;
    use devsim::NodeConfig;
    use minimpi::World;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting {
        controls: BackendControls,
        executes: Arc<AtomicU64>,
    }

    impl AnalysisAdaptor for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn controls(&self) -> &BackendControls {
            &self.controls
        }
        fn controls_mut(&mut self) -> &mut BackendControls {
            &mut self.controls
        }
        fn required_arrays(&self) -> DataRequirements {
            DataRequirements::none().with_mesh("bodies")
        }
        fn execute(&mut self, _d: &dyn DataAdaptor, _c: &ExecContext<'_>) -> Result<bool> {
            self.executes.fetch_add(1, Ordering::SeqCst);
            Ok(true)
        }
    }

    #[test]
    fn default_registry_has_all_builtin_modes() {
        let reg = EngineRegistry::with_defaults();
        for m in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous, ExecutionMethod::Dag] {
            assert!(reg.contains(m.name()), "missing engine for {}", m.name());
        }
        assert_eq!(reg.mode_names(), vec!["asynchronous", "dag", "lockstep"]);
        assert!(!reg.contains("warp"));
    }

    #[test]
    fn unknown_mode_is_a_config_error() {
        let reg = EngineRegistry::empty();
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let adaptor = Box::new(Counting {
                controls: BackendControls::default(),
                executes: Arc::new(AtomicU64::new(0)),
            });
            let err = reg
                .create("lockstep", adaptor, &EngineContext { comm: &comm, node: &node })
                .err()
                .expect("empty registry rejects");
            assert!(matches!(err, Error::Config(_)), "got {err:?}");
        });
    }

    /// A data adaptor publishing nothing (snapshots of it are empty).
    struct EmptyData;

    impl DataAdaptor for EmptyData {
        fn num_meshes(&self) -> usize {
            0
        }
        fn mesh_metadata(&self, _i: usize) -> Result<crate::adaptor::MeshMetadata> {
            Err(Error::NoSuchMesh { name: "none".into() })
        }
        fn mesh(&self, name: &str) -> Result<svtk::DataObject> {
            Err(Error::NoSuchMesh { name: name.into() })
        }
        fn time(&self) -> f64 {
            0.0
        }
        fn time_step(&self) -> u64 {
            0
        }
    }

    #[test]
    fn closed_queue_dispatch_failure_surfaces_at_finalize() {
        let executes = Arc::new(AtomicU64::new(0));
        let e2 = executes.clone();
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let controls =
                BackendControls { execution: ExecutionMethod::Asynchronous, ..Default::default() };
            let adaptor = Box::new(Counting { controls, executes: e2.clone() });
            let mut engine = ThreadedEngine::spawn(adaptor, comm.dup(), node.clone());
            // Close the queue through a second sender handle, as a
            // finalizer racing a dispatch on another thread would.
            engine.tx.as_ref().unwrap().clone().close();

            let data = EmptyData;
            let snap = Arc::new(SnapshotAdaptor::capture(&data).unwrap());
            let err = engine.dispatch(&data, Some(&snap), &comm, &node).unwrap_err();
            assert!(matches!(err, Error::Analysis(_)), "got {err:?}");

            // The dropped iteration must surface at finalize even though
            // the caller swallowed the dispatch error.
            let fin = engine.finalize(&comm, &node);
            assert!(
                matches!(fin, Err(Error::Analysis(ref m)) if m.contains("closed")),
                "finalize must report the dropped dispatch, got {fin:?}"
            );
        });
        assert_eq!(executes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn dag_engine_falls_back_to_monolithic_dispatch() {
        // A back-end without `supports_dag` runs through the DagEngine
        // exactly like the threaded path: the step executes once per
        // snapshot on the worker thread and finalize drains cleanly.
        let executes = Arc::new(AtomicU64::new(0));
        let e2 = executes.clone();
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let controls =
                BackendControls { execution: ExecutionMethod::Dag, ..Default::default() };
            let adaptor = Box::new(Counting { controls, executes: e2.clone() });
            let reg = EngineRegistry::with_defaults();
            let mut engine =
                reg.create("dag", adaptor, &EngineContext { comm: &comm, node: &node }).unwrap();
            assert!(engine.needs_snapshot());
            let sc = engine.scheduler_counters().expect("dag engine exposes counters");
            let data = EmptyData;
            for _ in 0..3 {
                let snap = Arc::new(SnapshotAdaptor::capture(&data).unwrap());
                assert!(engine.dispatch(&data, Some(&snap), &comm, &node).unwrap());
            }
            engine.finalize(&comm, &node).unwrap();
            assert_eq!(sc.snapshot().tasks, 0, "fallback path plans no task graph");
        });
        assert_eq!(executes.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn engines_expose_backend_controls_and_requirements() {
        let executes = Arc::new(AtomicU64::new(0));
        let e2 = executes.clone();
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let controls = BackendControls {
                execution: ExecutionMethod::Asynchronous,
                frequency: 2,
                ..Default::default()
            };
            let adaptor = Box::new(Counting { controls, executes: e2.clone() });
            let reg = EngineRegistry::with_defaults();
            let mut engine = reg
                .create("asynchronous", adaptor, &EngineContext { comm: &comm, node: &node })
                .unwrap();
            assert_eq!(engine.backend_name(), "counting");
            assert_eq!(engine.controls().frequency, 2);
            assert!(engine.needs_snapshot());
            assert_eq!(engine.requirements(), DataRequirements::none().with_mesh("bodies"));
            engine.finalize(&comm, &node).unwrap();
        });
    }
}
