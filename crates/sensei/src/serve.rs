//! Live result serving: fan one step's published results out to
//! thousands of subscribed steering sessions, zero-copy.
//!
//! The placement/execution machinery exists to get analysis results off
//! the simulation fast; this layer makes the pipeline an *interactive
//! service* (the ISAAC direction): N concurrent consumer sessions
//! subscribe to binned results by (variable × coordinate system), each
//! step's publication serializes the result **once** into a refcounted
//! [`StepPayload`], and every session receives an [`Arc`] view of it
//! through its own bounded queue — bytes serialized per step are
//! independent of the session count, which is the whole perf claim.
//!
//! Three pieces make that safe and non-serializing:
//!
//! * **CoW pin accounting.** The session pool registers as *one* extra
//!   consumer of the bridge's per-step snapshot
//!   ([`SnapshotAdaptor::expect_consumers`]); the hub wraps the snapshot
//!   in a [`StepPin`] whose last dropped [`Arc`] calls
//!   `consumer_finished` — so CoW pins drop exactly when the last
//!   session of a step lets go of its frame, and never earlier.
//! * **Bounded per-session queues.** Delivery reuses
//!   [`crate::queue`]'s overflow policies: `block` applies backpressure
//!   (an in-budget client never loses a frame), `drop_oldest` keeps
//!   slow viewers current at the cost of skipped frames, `error`
//!   rejects. Evictions and rejections are counted as dropped frames.
//! * **A sharded session registry.** Sessions hash into `N_SHARDS`
//!   independently-locked maps, and publication snapshots each shard's
//!   matching senders *before* sending, so subscribe/unsubscribe and a
//!   blocking delivery never serialize on one lock.
//!
//! Steering flows the other way: sessions submit [`SteeringCommand`]s
//! (resolution, analysis frequency, pause/resume), the bridge drains
//! them at the next step boundary, rank 0 decides and broadcasts, and
//! every rank applies the identical schedule through the existing
//! mid-run [`crate::Bridge::reconfigure_backend`] rebuild path — so a
//! steered run stays bit-identical to an unsteered run replaying the
//! same schedule.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::counters::{ServeCounters, ServeSnapshot};
use crate::payload::StepPayload;
use crate::queue::{bounded, BoundedReceiver, BoundedSender, OverflowPolicy, SendError};
use crate::snapshot::SnapshotAdaptor;

/// What one session subscribed to: a variable (column name, `*` for
/// all) within a coordinate system (the binning axes label).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topic {
    /// Column name the session wants, or `"*"` for every variable.
    pub variable: String,
    /// Coordinate-system label (e.g. `"x:y"` for Cartesian binning).
    pub coords: String,
}

impl Topic {
    /// A topic for `variable` binned in `coords`.
    pub fn new(variable: impl Into<String>, coords: impl Into<String>) -> Self {
        Topic { variable: variable.into(), coords: coords.into() }
    }

    /// Does a payload published for `coords` with these columns match?
    fn matches(&self, coords: &str, payload: &StepPayload) -> bool {
        self.coords == coords
            && (self.variable == "*" || payload.columns.iter().any(|(n, _)| n == &self.variable))
    }
}

/// Holds the step's CoW snapshot pinned on behalf of the session pool.
/// The hub registers as one consumer of the bridge's snapshot; dropping
/// the last [`Arc<StepPin>`] — hub hand-off, queue eviction, or the
/// final session finishing its frame — releases that consumer slot, and
/// with it (once the engines are done too) the CoW pins.
pub struct StepPin {
    snap: Arc<SnapshotAdaptor>,
}

impl StepPin {
    /// The pinned snapshot (sessions may read the step's arrays through
    /// it zero-copy while the pin lives).
    pub fn adaptor(&self) -> &SnapshotAdaptor {
        &self.snap
    }
}

impl Drop for StepPin {
    fn drop(&mut self) {
        self.snap.consumer_finished();
    }
}

/// One delivered result view: a refcounted handle onto the step's
/// shared payload (never a copy) plus the pin keeping the step's CoW
/// snapshot alive while any session still holds the frame.
pub struct Frame {
    /// Topic this frame was matched under.
    pub topic: Topic,
    /// The step's shared serialized result — one allocation per
    /// (step × coordinate system), `Arc`-shared by every receiving
    /// session.
    pub payload: Arc<StepPayload>,
    /// CoW snapshot pin for the step, when the bridge captured one.
    pub pin: Option<Arc<StepPin>>,
    /// When the hub published the payload (delivery latency is measured
    /// against this at receive time).
    pub published: Instant,
}

impl Frame {
    /// Step the frame belongs to.
    pub fn step(&self) -> u64 {
        self.payload.step
    }
}

/// A steering command a session sends back to the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringCommand {
    /// Change the binning resolution (takes effect through the
    /// [`ServeKnobs`] the back-end factory reads at rebuild).
    SetResolution(usize),
    /// Change how often the analysis runs (every `n` steps).
    SetFrequency(u64),
    /// Stop dispatching the analysis until [`SteeringCommand::Resume`].
    Pause,
    /// Resume a paused analysis at its pre-pause frequency.
    Resume,
}

/// A steering command addressed to one attached back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Steer {
    /// Back-end index (bridge attach order).
    pub backend: usize,
    /// What to change.
    pub command: SteeringCommand,
}

/// Shared knobs steering can turn that live outside [`crate::BackendControls`]
/// — the back-end factory reads them when the bridge rebuilds it, so a
/// [`SteeringCommand::SetResolution`] is: set the knob, rebuild.
#[derive(Debug, Default)]
pub struct ServeKnobs {
    resolution: AtomicUsize,
}

impl ServeKnobs {
    /// Current resolution override (0 until steering sets one).
    pub fn resolution(&self) -> usize {
        self.resolution.load(Ordering::Acquire)
    }

    /// Set the resolution override.
    pub fn set_resolution(&self, r: usize) {
        self.resolution.store(r, Ordering::Release);
    }
}

/// Per-session configuration: the delivery queue's depth and overflow
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Frames buffered per session before the overflow policy applies.
    pub queue_depth: usize,
    /// What publication does when this session's queue is full.
    pub overflow: OverflowPolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { queue_depth: 4, overflow: OverflowPolicy::Block }
    }
}

/// `<serve>` run-time configuration (see [`crate::ConfigurableAnalysis`]):
/// how many sessions the traffic generator opens and how their queues
/// behave, plus whether steering commands are accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Sessions the harness traffic generator opens.
    pub sessions: usize,
    /// Per-session queue depth.
    pub queue_depth: usize,
    /// Per-session overflow policy.
    pub overflow: OverflowPolicy,
    /// Accept steering commands back from sessions.
    pub steering: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sessions: 64,
            queue_depth: 4,
            overflow: OverflowPolicy::Block,
            steering: true,
        }
    }
}

/// What one `publish` did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Frames enqueued into session queues.
    pub delivered: u64,
    /// Frames lost: drop-oldest evictions plus error-policy rejections.
    pub dropped: u64,
    /// Bytes serialized for this publication (independent of sessions).
    pub payload_bytes: u64,
}

/// Aggregated per-step serving statistics (the `serve_csv` row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStepStats {
    /// Simulation step.
    pub step: u64,
    /// Sessions registered when the step published.
    pub sessions: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Median delivery latency (publish → receive), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile delivery latency, nanoseconds.
    pub p99_ns: u64,
    /// Bytes serialized at publication (once, not per session).
    pub bytes_copied: u64,
}

struct Session {
    topic: Topic,
    tx: BoundedSender<Frame>,
}

#[derive(Default)]
struct Shard {
    sessions: Mutex<HashMap<u64, Session>>,
}

#[derive(Default)]
struct StepAccum {
    sessions: u64,
    delivered: u64,
    dropped: u64,
    bytes: u64,
    latencies_ns: Vec<u64>,
}

/// The fan-out hub: sharded session registry, per-step publication, and
/// the steering inbox. One per bridge (attach with
/// [`crate::Bridge::attach_serve`]); clones are cheap (`Arc` inside).
pub struct ServeHub {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    session_count: AtomicUsize,
    counters: Arc<ServeCounters>,
    knobs: Arc<ServeKnobs>,
    /// The current step's pin; replaced each offer, so the hub itself
    /// never holds more than one step pinned.
    current_pin: Mutex<Option<Arc<StepPin>>>,
    steering_enabled: bool,
    steering: Mutex<Vec<Steer>>,
    /// Per-step delivery/drop/latency accumulators, drained at finalize.
    step_stats: Mutex<BTreeMap<u64, StepAccum>>,
}

/// Shards in the session registry. More than enough for the thread
/// counts the simulated clients use; the point is that two concurrent
/// subscribes (or a subscribe racing a publish snapshot of another
/// shard) don't contend.
const N_SHARDS: usize = 16;

impl ServeHub {
    /// A hub with the default shard count. `steering` gates whether
    /// session steering commands are accepted.
    pub fn new(steering: bool) -> Arc<Self> {
        Self::with_shards(steering, N_SHARDS)
    }

    /// A hub with an explicit shard count (tests use 1 to force
    /// contention, benches can oversize).
    pub fn with_shards(steering: bool, shards: usize) -> Arc<Self> {
        Arc::new(ServeHub {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            next_id: AtomicU64::new(0),
            session_count: AtomicUsize::new(0),
            counters: ServeCounters::new(),
            knobs: Arc::new(ServeKnobs::default()),
            current_pin: Mutex::new(None),
            steering_enabled: steering,
            steering: Mutex::new(Vec::new()),
            step_stats: Mutex::new(BTreeMap::new()),
        })
    }

    /// The hub's work counters.
    pub fn counters(&self) -> &Arc<ServeCounters> {
        &self.counters
    }

    /// A plain-value copy of the counter totals.
    pub fn counter_snapshot(&self) -> ServeSnapshot {
        self.counters.snapshot()
    }

    /// The steering knobs shared with back-end factories.
    pub fn knobs(&self) -> Arc<ServeKnobs> {
        self.knobs.clone()
    }

    /// Whether steering commands are accepted.
    pub fn steering_enabled(&self) -> bool {
        self.steering_enabled
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.session_count.load(Ordering::Acquire)
    }

    /// True when at least one session is subscribed (the bridge counts
    /// the pool as a snapshot consumer only then).
    pub fn has_sessions(&self) -> bool {
        self.session_count() > 0
    }

    fn shard_of(&self, id: u64) -> &Shard {
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Open a session subscribed to `topic`. The returned handle owns
    /// the receive side; dropping it unsubscribes.
    pub fn subscribe(self: &Arc<Self>, topic: Topic, config: SessionConfig) -> SessionHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(config.queue_depth, config.overflow);
        self.shard_of(id).sessions.lock().insert(id, Session { topic: topic.clone(), tx });
        self.session_count.fetch_add(1, Ordering::AcqRel);
        self.counters.add_subscribed(1);
        SessionHandle { hub: self.clone(), id, topic, rx, pending: Vec::new() }
    }

    /// Remove session `id` (idempotent: publish-side disconnect cleanup
    /// and handle drop may race; only the actual remover counts it).
    fn remove_session(&self, id: u64) {
        let removed = self.shard_of(id).sessions.lock().remove(&id).is_some();
        if removed {
            self.session_count.fetch_sub(1, Ordering::AcqRel);
            self.counters.add_unsubscribed(1);
        }
    }

    /// Take over pinning the step's snapshot: the bridge registered the
    /// session pool as one consumer; the hub now owes exactly one
    /// `consumer_finished`, paid when the last `Arc<StepPin>` drops
    /// (immediately, if no publication attaches it to a frame).
    pub fn offer_snapshot(&self, snap: &Arc<SnapshotAdaptor>) {
        *self.current_pin.lock() = Some(Arc::new(StepPin { snap: snap.clone() }));
    }

    /// Publish one coordinate system's step result to every matching
    /// session. Serializes nothing per session: the payload is wrapped
    /// in an `Arc` once and each delivery clones the handle. Senders are
    /// collected under the shard locks but sends happen *outside* them,
    /// so a `block`-policy session exerting backpressure stalls only the
    /// publisher, never subscribes on its shard.
    pub fn publish(&self, coords: &str, payload: StepPayload) -> PublishStats {
        let step = payload.step;
        let bytes = payload.bytes() as u64;
        let payload = Arc::new(payload);
        let pin = self.current_pin.lock().clone();
        let published = Instant::now();

        let mut matched: Vec<(u64, Topic, BoundedSender<Frame>)> = Vec::new();
        for shard in &self.shards {
            let sessions = shard.sessions.lock();
            for (id, s) in sessions.iter() {
                if s.topic.matches(coords, &payload) {
                    matched.push((*id, s.topic.clone(), s.tx.clone()));
                }
            }
        }

        let mut stats = PublishStats { payload_bytes: bytes, ..Default::default() };
        let mut dead = Vec::new();
        for (id, topic, tx) in matched {
            let frame = Frame { topic, payload: Arc::clone(&payload), pin: pin.clone(), published };
            match tx.send(frame) {
                Ok(ok) => {
                    stats.delivered += 1;
                    stats.dropped += ok.evicted;
                }
                Err(SendError::Full) => stats.dropped += 1,
                Err(SendError::Disconnected) | Err(SendError::Closed) => dead.push(id),
            }
        }
        for id in dead {
            self.remove_session(id);
        }

        self.counters.add_delivered(stats.delivered);
        self.counters.add_dropped(stats.dropped);
        self.counters.add_payload_bytes(bytes);

        let mut all = self.step_stats.lock();
        let acc = all.entry(step).or_default();
        acc.sessions = acc.sessions.max(self.session_count() as u64);
        acc.delivered += stats.delivered;
        acc.dropped += stats.dropped;
        acc.bytes += bytes;
        stats
    }

    /// Submit a steering command (no-op unless steering is enabled).
    pub fn submit_steer(&self, steer: Steer) {
        if self.steering_enabled {
            self.steering.lock().push(steer);
        }
    }

    /// Take the queued steering commands (the bridge drains this on
    /// rank 0 at each step boundary and broadcasts the result).
    pub fn drain_steering(&self) -> Vec<Steer> {
        std::mem::take(&mut *self.steering.lock())
    }

    /// Count `n` steering commands actually applied.
    pub fn note_steers_applied(&self, n: u64) {
        self.counters.add_steers(n);
    }

    /// Record a batch of client-side delivery latency samples
    /// (`(step, nanoseconds)`); session handles flush these as they
    /// receive.
    pub fn record_latencies(&self, samples: &[(u64, u64)]) {
        if samples.is_empty() {
            return;
        }
        let mut all = self.step_stats.lock();
        for &(step, ns) in samples {
            all.entry(step).or_default().latencies_ns.push(ns);
        }
    }

    /// Drain the per-step aggregates, computing latency percentiles.
    pub fn drain_step_stats(&self) -> Vec<ServeStepStats> {
        let all = std::mem::take(&mut *self.step_stats.lock());
        all.into_iter()
            .map(|(step, mut acc)| {
                acc.latencies_ns.sort_unstable();
                ServeStepStats {
                    step,
                    sessions: acc.sessions,
                    delivered: acc.delivered,
                    dropped: acc.dropped,
                    p50_ns: percentile(&acc.latencies_ns, 0.50),
                    p99_ns: percentile(&acc.latencies_ns, 0.99),
                    bytes_copied: acc.bytes,
                }
            })
            .collect()
    }

    /// Shut the hub down: close every session queue (clients drain what
    /// is buffered, then see end-of-stream) and drop the hub's pin on
    /// the final step.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            let sessions = shard.sessions.lock();
            for s in sessions.values() {
                s.tx.close();
            }
        }
        *self.current_pin.lock() = None;
    }
}

/// `values` must be sorted ascending. Empty → 0.
fn percentile(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx.min(values.len() - 1)]
}

/// A live client session: the receive side of one subscription plus the
/// steering path back. Dropping the handle unsubscribes (flushing any
/// buffered latency samples first).
pub struct SessionHandle {
    hub: Arc<ServeHub>,
    id: u64,
    topic: Topic,
    rx: BoundedReceiver<Frame>,
    /// Locally buffered latency samples, flushed in batches so receive
    /// loops don't take the hub lock per frame.
    pending: Vec<(u64, u64)>,
}

/// Latency samples buffered per handle before a flush.
const LATENCY_FLUSH: usize = 64;

impl SessionHandle {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// What this session subscribed to.
    pub fn topic(&self) -> &Topic {
        &self.topic
    }

    /// Receive the next frame, blocking until one arrives; `None` once
    /// the hub has shut down and the queue is drained.
    pub fn recv(&mut self) -> Option<Frame> {
        let frame = self.rx.recv()?;
        self.note(&frame);
        Some(frame)
    }

    /// Receive without blocking: `None` when nothing is queued right
    /// now (use [`SessionHandle::is_closed`] to tell end-of-stream
    /// apart). Lets one client thread poll many sessions.
    pub fn try_recv(&mut self) -> Option<Frame> {
        let frame = self.rx.try_recv()?;
        self.note(&frame);
        Some(frame)
    }

    /// True once the hub shut down and every buffered frame was drained.
    pub fn is_closed(&self) -> bool {
        self.rx.is_closed()
    }

    /// Submit a steering command through this session.
    pub fn steer(&self, backend: usize, command: SteeringCommand) {
        self.hub.submit_steer(Steer { backend, command });
    }

    fn note(&mut self, frame: &Frame) {
        let ns = frame.published.elapsed().as_nanos() as u64;
        self.pending.push((frame.step(), ns));
        if self.pending.len() >= LATENCY_FLUSH {
            self.flush();
        }
    }

    /// Push buffered latency samples to the hub now.
    pub fn flush(&mut self) {
        self.hub.record_latencies(&self.pending);
        self.pending.clear();
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.flush();
        self.hub.remove_session(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(step: u64, cols: &[(&str, &[f64])]) -> StepPayload {
        StepPayload {
            step,
            time: step as f64 * 0.1,
            columns: cols.iter().map(|(n, v)| (n.to_string(), v.to_vec())).collect(),
        }
    }

    #[test]
    fn fan_out_matches_topics_and_shares_one_payload() {
        let hub = ServeHub::new(false);
        let mut density = hub.subscribe(Topic::new("density", "x:y"), SessionConfig::default());
        let mut any = hub.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        let mut other_coords =
            hub.subscribe(Topic::new("density", "r:z"), SessionConfig::default());
        assert_eq!(hub.session_count(), 3);

        let stats = hub.publish("x:y", payload(3, &[("density", &[1.0, 2.0])]));
        assert_eq!(stats.delivered, 2, "r:z session must not match");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.payload_bytes, "density".len() as u64 + 16);

        let f1 = density.try_recv().expect("density frame");
        let f2 = any.try_recv().expect("wildcard frame");
        assert!(other_coords.try_recv().is_none());
        assert_eq!(f1.step(), 3);
        assert!(
            Arc::ptr_eq(&f1.payload, &f2.payload),
            "both sessions must view the same allocation"
        );
    }

    #[test]
    fn payload_bytes_are_counted_once_regardless_of_sessions() {
        for n in [1usize, 8, 64] {
            let hub = ServeHub::new(false);
            let _handles: Vec<SessionHandle> = (0..n)
                .map(|_| {
                    hub.subscribe(
                        Topic::new("*", "x:y"),
                        SessionConfig { queue_depth: 4, overflow: OverflowPolicy::DropOldest },
                    )
                })
                .collect();
            let stats = hub.publish("x:y", payload(0, &[("m", &[0.0; 100])]));
            assert_eq!(stats.delivered, n as u64);
            assert_eq!(stats.payload_bytes, 801, "bytes independent of {n} sessions");
            assert_eq!(hub.counter_snapshot().payload_bytes, 801);
        }
    }

    #[test]
    fn overflow_policies_count_drops() {
        let hub = ServeHub::with_shards(false, 1);
        let mut dropper = hub.subscribe(
            Topic::new("*", "x:y"),
            SessionConfig { queue_depth: 1, overflow: OverflowPolicy::DropOldest },
        );
        let _rejecter = hub.subscribe(
            Topic::new("*", "x:y"),
            SessionConfig { queue_depth: 1, overflow: OverflowPolicy::Error },
        );
        hub.publish("x:y", payload(0, &[("m", &[1.0])]));
        let stats = hub.publish("x:y", payload(1, &[("m", &[2.0])]));
        // Dropper evicted step 0; rejecter refused step 1.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 2);
        let freshest = dropper.try_recv().expect("kept newest");
        assert_eq!(freshest.step(), 1, "drop_oldest keeps the freshest frame");
        let s = hub.counter_snapshot();
        assert_eq!((s.delivered, s.dropped), (3, 2));
    }

    #[test]
    fn dropping_a_handle_unsubscribes_and_publish_reaps_dead_sessions() {
        let hub = ServeHub::new(false);
        let h1 = hub.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        drop(h1);
        assert_eq!(hub.session_count(), 0, "handle drop unsubscribes");

        // Simulate a client that died without unsubscribing: a registry
        // entry whose receive side is already gone.
        let (tx, rx) = bounded::<Frame>(1, OverflowPolicy::Block);
        drop(rx);
        hub.shard_of(99).sessions.lock().insert(99, Session { topic: Topic::new("*", "x:y"), tx });
        hub.session_count.fetch_add(1, Ordering::AcqRel);
        assert_eq!(hub.session_count(), 1, "dead entry still registered");

        let stats = hub.publish("x:y", payload(0, &[("m", &[1.0])]));
        assert_eq!(stats.delivered, 0);
        assert_eq!(hub.session_count(), 0, "publish reaped the dead session");
        assert_eq!(hub.counter_snapshot().unsubscribed, 2);
    }

    #[test]
    fn steering_queue_drains_once_and_respects_enable_flag() {
        let hub = ServeHub::new(true);
        let h = hub.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        h.steer(0, SteeringCommand::SetResolution(128));
        h.steer(1, SteeringCommand::Pause);
        let drained = hub.drain_steering();
        assert_eq!(
            drained,
            vec![
                Steer { backend: 0, command: SteeringCommand::SetResolution(128) },
                Steer { backend: 1, command: SteeringCommand::Pause },
            ]
        );
        assert!(hub.drain_steering().is_empty(), "drain takes, not copies");

        let disabled = ServeHub::new(false);
        let h2 = disabled.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        h2.steer(0, SteeringCommand::SetResolution(32));
        assert!(disabled.drain_steering().is_empty(), "steering disabled");
    }

    #[test]
    fn step_stats_aggregate_latency_percentiles() {
        let hub = ServeHub::new(false);
        let mut h = hub.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        hub.publish("x:y", payload(5, &[("m", &[1.0, 2.0])]));
        let _ = h.try_recv().expect("frame");
        h.flush();
        // Add a synthetic spread so the percentiles are distinguishable.
        hub.record_latencies(&(0..100).map(|i| (5u64, (i + 1) * 1000)).collect::<Vec<_>>());
        let stats = hub.drain_step_stats();
        assert_eq!(stats.len(), 1);
        let s = stats[0];
        assert_eq!(s.step, 5);
        assert_eq!(s.sessions, 1);
        assert_eq!(s.delivered, 1);
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.p99_ns >= 99_000, "p99 lands in the synthetic tail, got {}", s.p99_ns);
        assert!(hub.drain_step_stats().is_empty(), "drain takes");
    }

    #[test]
    fn shutdown_closes_sessions_after_draining() {
        let hub = ServeHub::new(false);
        let mut h = hub.subscribe(Topic::new("*", "x:y"), SessionConfig::default());
        hub.publish("x:y", payload(0, &[("m", &[1.0])]));
        hub.shutdown();
        assert!(!h.is_closed(), "buffered frame still pending");
        assert!(h.recv().is_some(), "buffered frame survives shutdown");
        assert!(h.recv().is_none(), "then end-of-stream");
        assert!(h.is_closed());
    }

    #[test]
    fn percentiles_on_small_samples() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.5), 3);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.99), 4);
    }
}
