//! Back-end control parameters shared by every analysis adaptor.
//!
//! The paper defines the new execution-model controls "in the base class
//! for SENSEI analysis back-ends and therefore available to all
//! back-ends". Rust has no base classes; [`BackendControls`] is the
//! struct every back-end embeds and exposes through
//! [`crate::AnalysisAdaptor::controls`].

use crate::device_select::{select_device, DeviceSelector};
use crate::execution::ExecutionMethod;
use crate::queue::OverflowPolicy;
use crate::recovery::RecoveryPolicy;

/// Where an analysis should run, before rank-specific resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceSpec {
    /// Run on the host CPU.
    Host,
    /// Explicit device id (manual selection).
    Explicit(usize),
    /// Automatic selection via Eq. (1).
    #[default]
    Auto,
}

impl DeviceSpec {
    /// Parse the XML encoding: `-1` = host, `-2` = automatic, `>= 0` =
    /// explicit device id.
    pub fn from_code(code: i64) -> Option<DeviceSpec> {
        match code {
            -1 => Some(DeviceSpec::Host),
            -2 => Some(DeviceSpec::Auto),
            d if d >= 0 => Some(DeviceSpec::Explicit(d as usize)),
            _ => None,
        }
    }

    /// The XML encoding of this spec.
    pub fn code(&self) -> i64 {
        match self {
            DeviceSpec::Host => -1,
            DeviceSpec::Auto => -2,
            DeviceSpec::Explicit(d) => *d as i64,
        }
    }
}

/// The execution-model control parameters every back-end carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendControls {
    /// Lockstep or asynchronous execution (§3).
    pub execution: ExecutionMethod,
    /// Placement target before resolution.
    pub device: DeviceSpec,
    /// Automatic-selection parameters (Eq. 1).
    pub selector: DeviceSelector,
    /// Execute every `frequency` steps (1 = every iteration, as in the
    /// paper's runs). The bridge skips the back-end on other steps.
    pub frequency: u64,
    /// Maximum snapshots in flight for asynchronous execution (each holds
    /// a deep copy of the back-end's required arrays). Minimum 1.
    pub queue_depth: usize,
    /// What snapshot submission does when `queue_depth` is reached.
    pub overflow: OverflowPolicy,
    /// What the owning engine does when one dispatch of this back-end
    /// fails (abort / skip the step / retry with backoff).
    pub recovery: RecoveryPolicy,
    /// Physical data layout the producer publishes this back-end's tables
    /// in ([`hamr::Layout::Scalar`] = one dense allocation per column).
    /// Consumers read through the accessor API either way; placement
    /// moves relayout in flight.
    pub layout: hamr::Layout,
}

impl Default for BackendControls {
    fn default() -> Self {
        BackendControls {
            execution: ExecutionMethod::default(),
            device: DeviceSpec::default(),
            selector: DeviceSelector::default(),
            frequency: 1,
            queue_depth: 4,
            overflow: OverflowPolicy::default(),
            recovery: RecoveryPolicy::default(),
            layout: hamr::Layout::Scalar,
        }
    }
}

impl BackendControls {
    /// True when the back-end should run at `step`.
    pub fn due_at(&self, step: u64) -> bool {
        self.frequency <= 1 || step.is_multiple_of(self.frequency)
    }
}

impl BackendControls {
    /// Resolve the placement for `rank` on a node with `n_avail` devices:
    /// `None` = host, `Some(d)` = device `d`.
    pub fn resolve_device(&self, rank: usize, n_avail: usize) -> Option<usize> {
        match self.device {
            DeviceSpec::Host => None,
            DeviceSpec::Explicit(d) => Some(d.min(n_avail.saturating_sub(1))),
            DeviceSpec::Auto => Some(select_device(rank, n_avail, &self.selector)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for spec in [DeviceSpec::Host, DeviceSpec::Auto, DeviceSpec::Explicit(3)] {
            assert_eq!(DeviceSpec::from_code(spec.code()), Some(spec));
        }
        assert_eq!(DeviceSpec::from_code(-3), None);
    }

    #[test]
    fn host_resolves_to_none() {
        let c = BackendControls { device: DeviceSpec::Host, ..Default::default() };
        assert_eq!(c.resolve_device(0, 4), None);
    }

    #[test]
    fn explicit_is_clamped_to_available() {
        let c = BackendControls { device: DeviceSpec::Explicit(9), ..Default::default() };
        assert_eq!(c.resolve_device(0, 4), Some(3));
        let c2 = BackendControls { device: DeviceSpec::Explicit(2), ..Default::default() };
        assert_eq!(c2.resolve_device(7, 4), Some(2));
    }

    #[test]
    fn auto_uses_the_selector() {
        let c = BackendControls {
            device: DeviceSpec::Auto,
            selector: DeviceSelector { n_use: Some(1), offset: 3, stride: 1 },
            ..Default::default()
        };
        for rank in 0..5 {
            assert_eq!(c.resolve_device(rank, 4), Some(3));
        }
    }

    #[test]
    fn default_is_auto_round_robin_lockstep_every_step() {
        let c = BackendControls::default();
        assert_eq!(c.execution, ExecutionMethod::Lockstep);
        assert_eq!(c.resolve_device(5, 4), Some(1));
        assert_eq!(c.frequency, 1);
        assert!(c.due_at(0) && c.due_at(1) && c.due_at(7));
        assert_eq!(c.queue_depth, 4);
        assert_eq!(c.overflow, OverflowPolicy::Block);
        assert_eq!(c.recovery, RecoveryPolicy::Abort, "failures surface by default");
    }

    #[test]
    fn frequency_gates_execution() {
        let c = BackendControls { frequency: 3, ..Default::default() };
        assert!(c.due_at(0));
        assert!(!c.due_at(1));
        assert!(!c.due_at(2));
        assert!(c.due_at(3));
        assert!(c.due_at(6));
        // Frequency 0 behaves like 1 (always due).
        let c0 = BackendControls { frequency: 0, ..Default::default() };
        assert!(c0.due_at(5));
    }
}
