//! The simulation-facing bridge: initialize, execute per iteration,
//! finalize.
//!
//! The bridge no longer hard-codes the two execution methods; each
//! attached back-end is wrapped in an [`ExecutionEngine`] resolved from
//! an [`EngineRegistry`] by the back-end's execution-mode name. Snapshot
//! capture is requirements-driven: per iteration the bridge unions the
//! [`crate::DataRequirements`] of the due snapshot-consuming engines and
//! deep-copies exactly that.
//!
//! Back-ends attached with [`Bridge::add_reconfigurable_analysis`] can be
//! rebuilt mid-run under new [`BackendControls`] — the hook the
//! [`AdaptiveController`] applies its decisions through (and callers can
//! drive directly for externally-steered placement changes).

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::SimNode;
use minimpi::Comm;

use crate::adaptive::{
    AdaptiveAction, AdaptiveConfig, AdaptiveController, AdaptiveDecision, AdaptiveEnv,
    BackendObservation, StepObservation,
};
use crate::adaptor::{AnalysisAdaptor, DataAdaptor};
use crate::controls::BackendControls;
use crate::counters::{CounterSnapshot, FaultSnapshot, SnapshotCounterSnapshot};
use crate::engine::{EngineContext, EngineRegistry, ExecutionEngine};
use crate::error::{Error, Result};
use crate::profiler::Profiler;
use crate::requirements::DataRequirements;
use crate::serve::{ServeHub, Steer, SteeringCommand};
use crate::snapshot::{SnapshotMode, SnapshotPipeline};

/// Builds a fresh back-end instance under the given controls, so the
/// bridge can retire an engine and rebuild it mid-run (engines consume
/// their adaptor — a worker thread owns it — so reconfiguration needs a
/// new one). The factory must honor `controls` (the built adaptor's
/// [`crate::AnalysisAdaptor::controls`] should return them) and build
/// back-ends whose per-step results are position-independent (e.g.
/// streaming into a shared sink), so a rebuild changes *when* work runs,
/// never *what* it computes.
pub type AdaptorFactory = Box<dyn Fn(&BackendControls) -> Result<Box<dyn AnalysisAdaptor>> + Send>;

/// The SENSEI bridge: the single instrumentation point a simulation calls.
///
/// Back-ends are attached with [`Bridge::add_analysis`] (directly or from
/// XML via [`crate::ConfigurableAnalysis`]); every iteration the
/// simulation calls [`Bridge::execute`] with its data adaptor; at shutdown
/// [`Bridge::finalize`] drains asynchronous workers and returns the
/// [`Profiler`] with the run's per-iteration timings (including a
/// per-backend apparent-time breakdown).
pub struct Bridge {
    node: Arc<SimNode>,
    engines: Vec<Attached>,
    registry: EngineRegistry,
    profiler: Profiler,
    pipeline: SnapshotPipeline,
    adaptive: Option<AdaptiveState>,
    serve: Option<Arc<ServeHub>>,
    finalized: bool,
}

/// One attached back-end: its engine plus the label the profiler uses
/// (the back-end name, suffixed `#2`, `#3`, ... for repeated instances so
/// the breakdown keeps them apart).
struct Attached {
    label: String,
    engine: Box<dyn ExecutionEngine>,
    /// Present for reconfigurable back-ends: rebuilds the adaptor when
    /// the engine is retired and recreated under new controls.
    factory: Option<AdaptorFactory>,
    /// Fault totals already observed, so each step's retried/recovered
    /// delta can taint that step's apparent-cost sample (retry backoff
    /// sleeps inside dispatch and would otherwise look like real cost).
    faults_seen: FaultSnapshot,
    /// The frequency a steering Pause saved, restored by Resume.
    paused_from: Option<u64>,
}

/// Controller plus the last-seen counter totals it diffs per step.
struct AdaptiveState {
    controller: AdaptiveController,
    snap_seen: SnapshotCounterSnapshot,
    relayout_seen: u64,
}

impl Bridge {
    /// A bridge for one rank on `node`, with the built-in engines
    /// (lockstep inline, asynchronous threaded).
    pub fn new(node: Arc<SimNode>) -> Self {
        Self::with_engines(node, EngineRegistry::with_defaults())
    }

    /// A bridge dispatching through a caller-supplied engine registry —
    /// the hook for replacing how a mode executes (or adding new modes)
    /// without changing the bridge.
    pub fn with_engines(node: Arc<SimNode>, registry: EngineRegistry) -> Self {
        Bridge {
            node,
            engines: Vec::new(),
            registry,
            profiler: Profiler::new(),
            pipeline: SnapshotPipeline::new(SnapshotMode::Deep),
            adaptive: None,
            serve: None,
            finalized: false,
        }
    }

    /// Select how per-iteration snapshots are captured (deep copy,
    /// generation-tracked delta, or copy-on-write). The default is the
    /// paper's unconditional deep copy.
    pub fn set_snapshot_mode(&mut self, mode: SnapshotMode) {
        self.pipeline.set_mode(mode);
    }

    /// The active snapshot capture mode.
    pub fn snapshot_mode(&self) -> SnapshotMode {
        self.pipeline.mode()
    }

    /// Close the profiler loop: from the next step on, an
    /// [`AdaptiveController`] with `config`'s knobs observes each step and
    /// re-places / re-tunes reconfigurable back-ends through
    /// [`Bridge::reconfigure_backend`]. On multi-rank communicators rank 0
    /// decides and broadcasts, so every rank reconfigures identically
    /// (engine rebuilds are collective).
    pub fn enable_adaptive(&mut self, config: AdaptiveConfig) {
        self.adaptive = Some(AdaptiveState {
            controller: AdaptiveController::new(config),
            snap_seen: SnapshotCounterSnapshot::default(),
            relayout_seen: 0,
        });
    }

    /// The adaptive controller, when [`Bridge::enable_adaptive`] was
    /// called (harnesses read convergence state off it).
    pub fn adaptive_controller(&self) -> Option<&AdaptiveController> {
        self.adaptive.as_ref().map(|s| &s.controller)
    }

    /// Attach a live-serving hub ([`crate::serve`]): from the next step
    /// on, the session pool counts as one consumer of each captured
    /// snapshot (the hub pins it until the last session's frame drops),
    /// and — when the hub accepts steering — queued session commands are
    /// drained at every step boundary, rank-0-decided, broadcast, and
    /// applied through the mid-run reconfiguration path.
    pub fn attach_serve(&mut self, hub: Arc<ServeHub>) {
        self.serve = Some(hub);
    }

    /// The attached serving hub, if any.
    pub fn serve_hub(&self) -> Option<&Arc<ServeHub>> {
        self.serve.as_ref()
    }

    /// Attach a back-end. Its [`crate::ExecutionMethod`]'s name selects
    /// the engine from the registry: lockstep back-ends run inline;
    /// asynchronous back-ends get a persistent worker thread with a
    /// bounded snapshot queue and a dedicated duplicate of `comm`
    /// (collective: every rank must attach the same back-ends in the same
    /// order).
    pub fn add_analysis(&mut self, adaptor: Box<dyn AnalysisAdaptor>, comm: &Comm) -> Result<()> {
        self.attach(adaptor, None, comm)
    }

    /// Attach a back-end the bridge can rebuild mid-run: `factory`
    /// constructs the initial instance under `initial` and every later
    /// instance under whatever controls a reconfiguration applies.
    pub fn add_reconfigurable_analysis(
        &mut self,
        initial: BackendControls,
        factory: AdaptorFactory,
        comm: &Comm,
    ) -> Result<()> {
        let adaptor = factory(&initial)?;
        self.attach(adaptor, Some(factory), comm)
    }

    fn attach(
        &mut self,
        adaptor: Box<dyn AnalysisAdaptor>,
        factory: Option<AdaptorFactory>,
        comm: &Comm,
    ) -> Result<()> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let mode = adaptor.controls().execution.name();
        let name = adaptor.name().to_string();
        let ctx = EngineContext { comm, node: &self.node };
        let engine = self.registry.create(mode, adaptor, &ctx)?;
        let copies = self.engines.iter().filter(|a| a.engine.backend_name() == name).count();
        let label = if copies == 0 { name } else { format!("{}#{}", name, copies + 1) };
        self.engines.push(Attached {
            label,
            engine,
            factory,
            faults_seen: FaultSnapshot::default(),
            paused_from: None,
        });
        Ok(())
    }

    /// Number of attached back-ends.
    pub fn num_backends(&self) -> usize {
        self.engines.len()
    }

    /// The controls back-end `idx` (attach order) currently runs under.
    /// Producers consult this each step so layout re-picks take effect on
    /// the data they publish next.
    pub fn backend_controls(&self, idx: usize) -> Option<BackendControls> {
        self.engines.get(idx).map(|a| *a.engine.controls())
    }

    /// Retire back-end `idx`'s engine (draining its queue) and rebuild it
    /// under `controls` — the mid-run reconfiguration path. The retired
    /// engine's lifetime counters are merged into the profiler first, so
    /// no work goes missing; counter rows accumulate per label. Fails for
    /// back-ends attached without a factory. Collective on multi-rank
    /// communicators: every rank must reconfigure identically.
    pub fn reconfigure_backend(
        &mut self,
        idx: usize,
        controls: BackendControls,
        comm: &Comm,
    ) -> Result<()> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let n = self.engines.len();
        if idx >= n {
            return Err(Error::Config(format!("no back-end #{idx} to reconfigure (have {n})")));
        }
        if self.engines[idx].factory.is_none() {
            return Err(Error::Config(format!(
                "back-end '{}' was not attached reconfigurable",
                self.engines[idx].label
            )));
        }
        self.engines[idx].engine.finalize(comm, &self.node)?;
        self.retire_counters(idx);
        let adaptor = (self.engines[idx].factory.as_ref().expect("checked above"))(&controls)?;
        let ctx = EngineContext { comm, node: &self.node };
        let engine = self.registry.create(controls.execution.name(), adaptor, &ctx)?;
        self.engines[idx].engine = engine;
        self.engines[idx].faults_seen = FaultSnapshot::default();
        Ok(())
    }

    /// Merge back-end `idx`'s counter totals into the profiler (used at
    /// engine retirement; finalize does the same for live engines).
    fn retire_counters(&mut self, idx: usize) {
        let a = &self.engines[idx];
        if let Some(c) = a.engine.counters() {
            self.profiler.record_counters_labeled(
                a.label.as_str(),
                a.engine.controls().layout.name(),
                c.snapshot(),
            );
        }
        if let Some(s) = a.engine.scheduler_counters() {
            self.profiler.record_scheduler_counters(a.label.as_str(), s.snapshot());
        }
    }

    /// Process the simulation's current state through every back-end.
    ///
    /// `solver_time` is the solver cost of the iteration just completed
    /// (recorded alongside the measured apparent in situ cost). Returns
    /// `Ok(false)` when a back-end requests the simulation stop.
    pub fn execute(
        &mut self,
        data: &dyn DataAdaptor,
        comm: &Comm,
        solver_time: Duration,
    ) -> Result<bool> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let step = data.time_step();

        // Steering is applied strictly at step boundaries: whatever the
        // sessions queued since the last step is drained now, before any
        // engine sees this step's data, so a reconfiguration never splits
        // a step. Rank 0 decides, everyone applies the broadcast copy.
        self.apply_steering(step, comm)?;

        let t0 = Instant::now();

        // One deep-copied snapshot per iteration, shared by every due
        // snapshot-consuming engine (§4.3: "the in situ code deep copies
        // the relevant data" — once, not once per back-end), containing
        // the union of their declared requirements and nothing else.
        let mut requirements: Option<DataRequirements> = None;
        let mut consumers = 0;
        for a in &self.engines {
            if a.engine.needs_snapshot() && a.engine.controls().due_at(step) {
                consumers += 1;
                let req = a.engine.requirements();
                match &mut requirements {
                    Some(union) => union.union_with(&req),
                    None => requirements = Some(req),
                }
            }
        }
        // The session pool is one more consumer of the step's snapshot:
        // the hub pins it (StepPin) until the last session's frame for
        // this step drops, so a slow viewer can keep reading the step's
        // arrays zero-copy while the solver has long moved on.
        let hub_consumes =
            requirements.is_some() && self.serve.as_ref().is_some_and(|h| h.has_sessions());
        if hub_consumes {
            consumers += 1;
        }
        let snapshot = match &requirements {
            Some(req) => {
                let snap = self.pipeline.capture(data, req, &self.node)?;
                // Every due engine gets the same snapshot: CoW pins may
                // only drop once the *last* of them has released, or an
                // early releaser would expose the rest to post-capture
                // producer writes.
                snap.expect_consumers(consumers);
                let snap = Arc::new(snap);
                if hub_consumes {
                    self.serve.as_ref().expect("hub_consumes").offer_snapshot(&snap);
                }
                Some(snap)
            }
            None => None,
        };

        let mut proceed = true;
        let mut backend_obs = Vec::with_capacity(self.engines.len());
        for a in &mut self.engines {
            let due = a.engine.controls().due_at(step);
            let mut apparent = Duration::ZERO;
            if due {
                let te0 = Instant::now();
                proceed &= a.engine.dispatch(data, snapshot.as_ref(), comm, &self.node)?;
                apparent = te0.elapsed();
            }
            // Retry recovery sleeps its backoff (capped 250 ms) inside
            // dispatch, so a step whose retried/recovered counters moved
            // carries that wall clock in its apparent sample: taint it so
            // the adaptive window skips it instead of re-placing the
            // back-end off one injected fault. Asynchronous engines bump
            // the counters on their worker, so the taint may land a step
            // late there — but there the backoff never polluted the
            // dispatch timing in the first place.
            let faults = a.engine.counters().map(|c| c.snapshot().faults).unwrap_or_default();
            let tainted = faults.retried > a.faults_seen.retried
                || faults.recovered > a.faults_seen.recovered;
            a.faults_seen = faults;
            if due {
                self.profiler.record_backend_tainted(step, a.label.as_str(), apparent, tainted);
            }
            backend_obs.push(BackendObservation {
                apparent_s: apparent.as_secs_f64(),
                // A not-due back-end contributed no sample this step;
                // taint the placeholder so no window ingests the zero.
                tainted: tainted || !due,
                queue_occupancy: a.engine.queue_occupancy(),
            });
        }
        let apparent = t0.elapsed();
        self.profiler.record(step, solver_time, apparent);
        if self.adaptive.is_some() {
            self.adaptive_step(step, apparent, &backend_obs, comm)?;
        }
        Ok(proceed)
    }

    /// One controller round: assemble the step's observations, let rank 0
    /// decide, broadcast, and apply the decisions at this step boundary.
    fn adaptive_step(
        &mut self,
        step: u64,
        apparent: Duration,
        backend_obs: &[BackendObservation],
        comm: &Comm,
    ) -> Result<()> {
        let snap = self.pipeline.counters().snapshot();
        let relayout_total: u64 = self
            .engines
            .iter()
            .filter_map(|a| a.engine.counters())
            .map(|c| c.snapshot().relayout_bytes)
            .sum();
        let controls: Vec<BackendControls> =
            self.engines.iter().map(|a| *a.engine.controls()).collect();
        let reconfigurable: Vec<bool> = self.engines.iter().map(|a| a.factory.is_some()).collect();
        let modes = self.registry.mode_names();
        let snapshot_consumers = self.engines.iter().any(|a| a.engine.needs_snapshot());

        let state = self.adaptive.as_mut().expect("caller checked");
        let obs = StepObservation {
            step,
            insitu_s: apparent.as_secs_f64(),
            written_fraction: self.pipeline.written_fraction(),
            snapshot_bytes: snap.bytes_copied.saturating_sub(state.snap_seen.bytes_copied),
            cow_faults: snap.cow_faults.saturating_sub(state.snap_seen.cow_faults),
            relayout_bytes: relayout_total.saturating_sub(state.relayout_seen),
            pool_hit_rate: self.node.pool_stats(devsim::MemSpace::Host).hit_rate(),
        };
        state.snap_seen = snap;
        state.relayout_seen = relayout_total;
        let env = AdaptiveEnv {
            num_devices: self.node.num_devices(),
            controls: &controls,
            reconfigurable: &reconfigurable,
            snapshot_mode: self.pipeline.mode(),
            snapshot_consumers,
            available_modes: &modes,
        };
        let decisions: Vec<AdaptiveDecision> = if comm.size() > 1 {
            // Timings are rank-local and would diverge; engine rebuilds
            // are collective (Comm::dup). Rank 0 decides for everyone.
            let local = if comm.rank() == 0 {
                state.controller.observe_and_decide(&env, &obs, backend_obs)
            } else {
                Vec::new()
            };
            comm.bcast(0, local).map_err(|e| Error::Analysis(format!("adaptive bcast: {e}")))?
        } else {
            state.controller.observe_and_decide(&env, &obs, backend_obs)
        };
        for d in &decisions {
            self.apply_decision(d, comm)?;
        }
        Ok(())
    }

    /// Log and apply one controller decision.
    fn apply_decision(&mut self, d: &AdaptiveDecision, comm: &Comm) -> Result<()> {
        match &d.action {
            AdaptiveAction::Reconfigure { backend, controls } => {
                let label = self.engines.get(*backend).map(|a| a.label.clone()).unwrap_or_default();
                self.profiler.record_adaptive(
                    d.step,
                    label,
                    d.cause,
                    format!(
                        "mode={} device={} layout={} snapshot={} queue={}",
                        controls.execution.name(),
                        controls.device.code(),
                        controls.layout.name(),
                        self.pipeline.mode().name(),
                        controls.queue_depth,
                    ),
                );
                self.reconfigure_backend(*backend, *controls, comm)
            }
            AdaptiveAction::SetSnapshotMode { mode } => {
                self.profiler.record_adaptive(
                    d.step,
                    "bridge",
                    d.cause,
                    format!("snapshot={}", mode.name()),
                );
                self.pipeline.set_mode(*mode);
                Ok(())
            }
        }
    }

    /// The frequency a paused back-end runs at: due only at step 0, i.e.
    /// never again mid-run (the pre-pause frequency is saved for Resume).
    const PAUSED_FREQUENCY: u64 = u64::MAX;

    /// Drain the sessions' queued steering commands and apply them at
    /// this step boundary. On multi-rank communicators only rank 0's
    /// queue is consulted and the command list is broadcast, so every
    /// rank applies the identical schedule (engine rebuilds are
    /// collective) and results stay bit-identical across ranks.
    fn apply_steering(&mut self, step: u64, comm: &Comm) -> Result<()> {
        let Some(hub) = self.serve.clone() else { return Ok(()) };
        if !hub.steering_enabled() {
            return Ok(());
        }
        let commands: Vec<Steer> = if comm.size() > 1 {
            let local = if comm.rank() == 0 { hub.drain_steering() } else { Vec::new() };
            comm.bcast(0, local).map_err(|e| Error::Analysis(format!("steering bcast: {e}")))?
        } else {
            hub.drain_steering()
        };
        for s in commands {
            self.apply_steer(step, &hub, s, comm)?;
            hub.note_steers_applied(1);
        }
        Ok(())
    }

    /// Apply one steering command: adjust the target back-end's controls
    /// (or the shared [`crate::serve::ServeKnobs`]) and rebuild it through
    /// the ordinary mid-run reconfiguration path.
    fn apply_steer(&mut self, step: u64, hub: &ServeHub, s: Steer, comm: &Comm) -> Result<()> {
        let n = self.engines.len();
        let Some(a) = self.engines.get_mut(s.backend) else {
            return Err(Error::Config(format!(
                "steering targets back-end #{} (have {n})",
                s.backend
            )));
        };
        let label = a.label.clone();
        let mut controls = *a.engine.controls();
        let detail = match s.command {
            SteeringCommand::SetResolution(r) => {
                hub.knobs().set_resolution(r);
                format!("resolution={r}")
            }
            SteeringCommand::SetFrequency(f) => {
                controls.frequency = f.max(1);
                a.paused_from = None;
                format!("frequency={}", controls.frequency)
            }
            SteeringCommand::Pause => {
                if a.paused_from.is_none() {
                    a.paused_from = Some(controls.frequency);
                }
                controls.frequency = Self::PAUSED_FREQUENCY;
                "pause".to_string()
            }
            SteeringCommand::Resume => {
                controls.frequency = a.paused_from.take().unwrap_or(1);
                "resume".to_string()
            }
        };
        self.profiler.record_adaptive(step, label, "steer", detail);
        self.reconfigure_backend(s.backend, controls, comm)
    }

    /// Finalize every back-end (draining asynchronous queues) and return
    /// the run's profiler.
    ///
    /// On failure the profiler — with every counter merged up to the
    /// failure — is discarded with the bridge; callers that want the
    /// partial counters alongside the typed error use
    /// [`Bridge::finalize_partial`].
    pub fn finalize(self, comm: &Comm) -> Result<Profiler> {
        let (profiler, err) = self.finalize_partial(comm);
        match err {
            Some(e) => Err(e),
            None => Ok(profiler),
        }
    }

    /// Like [`Bridge::finalize`], but always returns the profiler.
    ///
    /// A worker that fails at step N still did the work of steps 0..N;
    /// its counters are shared atomics, so they are merged into the
    /// profiler *before* the typed error is surfaced — partial totals are
    /// data, not collateral of the failure.
    pub fn finalize_partial(mut self, comm: &Comm) -> (Profiler, Option<Error>) {
        self.finalized = true;
        let mut first_err = None;
        for a in &mut self.engines {
            if let Err(e) = a.engine.finalize(comm, &self.node) {
                first_err.get_or_insert(e);
            }
        }
        // Work counters are read only after every engine has finalized
        // (asynchronous workers joined), so the totals are exact — and
        // they are read even when an engine failed: a worker that aborted
        // at step N still completed steps 0..N and those counts (plus the
        // fault counters describing the failure itself) must survive.
        for a in &self.engines {
            if let Some(counters) = a.engine.counters() {
                self.profiler.record_counters_labeled(
                    a.label.as_str(),
                    a.engine.controls().layout.name(),
                    counters.snapshot(),
                );
            }
            // Every back-end gets a scheduler row — explicit zeros for
            // engines without a task-graph scheduler — so scheduler_csv
            // stays rectangular whatever mix of modes a run used.
            let sched = a.engine.scheduler_counters().map(|s| s.snapshot()).unwrap_or_default();
            self.profiler.record_scheduler_counters(a.label.as_str(), sched);
        }
        // Snapshot-layer totals (shares vs copies, CoW faults, overlap)
        // are exact now too: every worker that could fault a pinned
        // array or wait a copy event has joined.
        self.profiler.record_snapshot_counters(
            self.pipeline.mode().name(),
            self.pipeline.counters().snapshot(),
        );
        // Serving totals: close every session queue (clients drain what
        // is buffered, then see end-of-stream), fold the per-step
        // delivery stats into serve_csv, and record the hub's lifetime
        // counters as a bridge-wide "serve" row.
        if let Some(hub) = &self.serve {
            hub.shutdown();
            for s in hub.drain_step_stats() {
                self.profiler.record_serve(s);
            }
            self.profiler.record_counters_labeled(
                "serve",
                "-",
                CounterSnapshot { serve: hub.counter_snapshot(), ..Default::default() },
            );
        }
        // Freeze the run's caching-pool counters into the profiler so the
        // harness can report hit rates alongside the timings.
        self.profiler.record_pool_stats("host", self.node.pool_stats(devsim::MemSpace::Host));
        for d in 0..self.node.num_devices() {
            self.profiler.record_pool_stats(
                format!("device{d}"),
                self.node.pool_stats(devsim::MemSpace::Device(d)),
            );
        }
        self.profiler.stop();
        (std::mem::take(&mut self.profiler), first_err)
    }
}
