//! The simulation-facing bridge: initialize, execute per iteration,
//! finalize.
//!
//! The bridge no longer hard-codes the two execution methods; each
//! attached back-end is wrapped in an [`ExecutionEngine`] resolved from
//! an [`EngineRegistry`] by the back-end's execution-mode name. Snapshot
//! capture is requirements-driven: per iteration the bridge unions the
//! [`crate::DataRequirements`] of the due snapshot-consuming engines and
//! deep-copies exactly that.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::SimNode;
use minimpi::Comm;

use crate::adaptor::{AnalysisAdaptor, DataAdaptor};
use crate::engine::{EngineContext, EngineRegistry, ExecutionEngine};
use crate::error::{Error, Result};
use crate::profiler::Profiler;
use crate::requirements::DataRequirements;
use crate::snapshot::{SnapshotMode, SnapshotPipeline};

/// The SENSEI bridge: the single instrumentation point a simulation calls.
///
/// Back-ends are attached with [`Bridge::add_analysis`] (directly or from
/// XML via [`crate::ConfigurableAnalysis`]); every iteration the
/// simulation calls [`Bridge::execute`] with its data adaptor; at shutdown
/// [`Bridge::finalize`] drains asynchronous workers and returns the
/// [`Profiler`] with the run's per-iteration timings (including a
/// per-backend apparent-time breakdown).
pub struct Bridge {
    node: Arc<SimNode>,
    engines: Vec<Attached>,
    registry: EngineRegistry,
    profiler: Profiler,
    pipeline: SnapshotPipeline,
    finalized: bool,
}

/// One attached back-end: its engine plus the label the profiler uses
/// (the back-end name, suffixed `#2`, `#3`, ... for repeated instances so
/// the breakdown keeps them apart).
struct Attached {
    label: String,
    engine: Box<dyn ExecutionEngine>,
}

impl Bridge {
    /// A bridge for one rank on `node`, with the built-in engines
    /// (lockstep inline, asynchronous threaded).
    pub fn new(node: Arc<SimNode>) -> Self {
        Self::with_engines(node, EngineRegistry::with_defaults())
    }

    /// A bridge dispatching through a caller-supplied engine registry —
    /// the hook for replacing how a mode executes (or adding new modes)
    /// without changing the bridge.
    pub fn with_engines(node: Arc<SimNode>, registry: EngineRegistry) -> Self {
        Bridge {
            node,
            engines: Vec::new(),
            registry,
            profiler: Profiler::new(),
            pipeline: SnapshotPipeline::new(SnapshotMode::Deep),
            finalized: false,
        }
    }

    /// Select how per-iteration snapshots are captured (deep copy,
    /// generation-tracked delta, or copy-on-write). The default is the
    /// paper's unconditional deep copy.
    pub fn set_snapshot_mode(&mut self, mode: SnapshotMode) {
        self.pipeline.set_mode(mode);
    }

    /// The active snapshot capture mode.
    pub fn snapshot_mode(&self) -> SnapshotMode {
        self.pipeline.mode()
    }

    /// Attach a back-end. Its [`crate::ExecutionMethod`]'s name selects
    /// the engine from the registry: lockstep back-ends run inline;
    /// asynchronous back-ends get a persistent worker thread with a
    /// bounded snapshot queue and a dedicated duplicate of `comm`
    /// (collective: every rank must attach the same back-ends in the same
    /// order).
    pub fn add_analysis(&mut self, adaptor: Box<dyn AnalysisAdaptor>, comm: &Comm) -> Result<()> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let mode = adaptor.controls().execution.name();
        let name = adaptor.name().to_string();
        let ctx = EngineContext { comm, node: &self.node };
        let engine = self.registry.create(mode, adaptor, &ctx)?;
        let copies = self.engines.iter().filter(|a| a.engine.backend_name() == name).count();
        let label = if copies == 0 { name } else { format!("{}#{}", name, copies + 1) };
        self.engines.push(Attached { label, engine });
        Ok(())
    }

    /// Number of attached back-ends.
    pub fn num_backends(&self) -> usize {
        self.engines.len()
    }

    /// Process the simulation's current state through every back-end.
    ///
    /// `solver_time` is the solver cost of the iteration just completed
    /// (recorded alongside the measured apparent in situ cost). Returns
    /// `Ok(false)` when a back-end requests the simulation stop.
    pub fn execute(
        &mut self,
        data: &dyn DataAdaptor,
        comm: &Comm,
        solver_time: Duration,
    ) -> Result<bool> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let step = data.time_step();
        let t0 = Instant::now();

        // One deep-copied snapshot per iteration, shared by every due
        // snapshot-consuming engine (§4.3: "the in situ code deep copies
        // the relevant data" — once, not once per back-end), containing
        // the union of their declared requirements and nothing else.
        let mut requirements: Option<DataRequirements> = None;
        let mut consumers = 0;
        for a in &self.engines {
            if a.engine.needs_snapshot() && a.engine.controls().due_at(step) {
                consumers += 1;
                let req = a.engine.requirements();
                match &mut requirements {
                    Some(union) => union.union_with(&req),
                    None => requirements = Some(req),
                }
            }
        }
        let snapshot = match &requirements {
            Some(req) => {
                let snap = self.pipeline.capture(data, req, &self.node)?;
                // Every due engine gets the same snapshot: CoW pins may
                // only drop once the *last* of them has released, or an
                // early releaser would expose the rest to post-capture
                // producer writes.
                snap.expect_consumers(consumers);
                Some(Arc::new(snap))
            }
            None => None,
        };

        let mut proceed = true;
        for a in &mut self.engines {
            if !a.engine.controls().due_at(step) {
                continue;
            }
            let te0 = Instant::now();
            proceed &= a.engine.dispatch(data, snapshot.as_ref(), comm, &self.node)?;
            self.profiler.record_backend(step, a.label.as_str(), te0.elapsed());
        }
        let apparent = t0.elapsed();
        self.profiler.record(step, solver_time, apparent);
        Ok(proceed)
    }

    /// Finalize every back-end (draining asynchronous queues) and return
    /// the run's profiler.
    ///
    /// On failure the profiler — with every counter merged up to the
    /// failure — is discarded with the bridge; callers that want the
    /// partial counters alongside the typed error use
    /// [`Bridge::finalize_partial`].
    pub fn finalize(self, comm: &Comm) -> Result<Profiler> {
        let (profiler, err) = self.finalize_partial(comm);
        match err {
            Some(e) => Err(e),
            None => Ok(profiler),
        }
    }

    /// Like [`Bridge::finalize`], but always returns the profiler.
    ///
    /// A worker that fails at step N still did the work of steps 0..N;
    /// its counters are shared atomics, so they are merged into the
    /// profiler *before* the typed error is surfaced — partial totals are
    /// data, not collateral of the failure.
    pub fn finalize_partial(mut self, comm: &Comm) -> (Profiler, Option<Error>) {
        self.finalized = true;
        let mut first_err = None;
        for a in &mut self.engines {
            if let Err(e) = a.engine.finalize(comm, &self.node) {
                first_err.get_or_insert(e);
            }
        }
        // Work counters are read only after every engine has finalized
        // (asynchronous workers joined), so the totals are exact — and
        // they are read even when an engine failed: a worker that aborted
        // at step N still completed steps 0..N and those counts (plus the
        // fault counters describing the failure itself) must survive.
        for a in &self.engines {
            if let Some(counters) = a.engine.counters() {
                self.profiler.record_counters_labeled(
                    a.label.as_str(),
                    a.engine.controls().layout.name(),
                    counters.snapshot(),
                );
            }
            if let Some(sched) = a.engine.scheduler_counters() {
                self.profiler.record_scheduler_counters(a.label.as_str(), sched.snapshot());
            }
        }
        // Snapshot-layer totals (shares vs copies, CoW faults, overlap)
        // are exact now too: every worker that could fault a pinned
        // array or wait a copy event has joined.
        self.profiler.record_snapshot_counters(
            self.pipeline.mode().name(),
            self.pipeline.counters().snapshot(),
        );
        // Freeze the run's caching-pool counters into the profiler so the
        // harness can report hit rates alongside the timings.
        self.profiler.record_pool_stats("host", self.node.pool_stats(devsim::MemSpace::Host));
        for d in 0..self.node.num_devices() {
            self.profiler.record_pool_stats(
                format!("device{d}"),
                self.node.pool_stats(devsim::MemSpace::Device(d)),
            );
        }
        self.profiler.stop();
        (std::mem::take(&mut self.profiler), first_err)
    }
}
