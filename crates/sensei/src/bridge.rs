//! The simulation-facing bridge: initialize, execute per iteration,
//! finalize.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use devsim::SimNode;
use minimpi::Comm;

use crate::adaptor::{AnalysisAdaptor, DataAdaptor, ExecContext};
use crate::error::{Error, Result};
use crate::execution::ExecutionMethod;
use crate::profiler::Profiler;
use crate::snapshot::SnapshotAdaptor;

enum BackendSlot {
    /// Executes inline; may access simulation arrays zero-copy.
    Lockstep(Box<dyn AnalysisAdaptor>),
    /// Executes on its own thread against deep-copied snapshots.
    Async(AsyncRunner),
}

/// A persistent in situ worker thread owning one asynchronous back-end
/// and a dedicated duplicate communicator.
struct AsyncRunner {
    name: String,
    controls: crate::BackendControls,
    tx: Option<Sender<Arc<SnapshotAdaptor>>>,
    handle: Option<std::thread::JoinHandle<Result<()>>>,
}

impl AsyncRunner {
    fn spawn(mut adaptor: Box<dyn AnalysisAdaptor>, comm: Comm, node: Arc<SimNode>) -> Self {
        let name = adaptor.name().to_string();
        let controls = *adaptor.controls();
        let (tx, rx) = unbounded::<Arc<SnapshotAdaptor>>();
        let thread_name = format!("sensei-insitu-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || -> Result<()> {
                let ctx = ExecContext::new(&comm, &node);
                for snapshot in rx {
                    adaptor.execute(snapshot.as_ref(), &ctx)?;
                }
                adaptor.finalize(&ctx)
            })
            .expect("spawn in situ worker");
        AsyncRunner { name, controls, tx: Some(tx), handle: Some(handle) }
    }

    fn submit(&self, snapshot: Arc<SnapshotAdaptor>) -> Result<()> {
        match &self.tx {
            Some(tx) => tx.send(snapshot).map_err(|_| {
                Error::Analysis(format!("in situ worker '{}' terminated early", self.name))
            }),
            None => Err(Error::Finalized),
        }
    }

    /// Close the queue and wait for all outstanding work plus finalize.
    fn drain(&mut self) -> Result<()> {
        self.tx = None; // closing the channel ends the worker loop
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| Error::Analysis(format!("in situ worker '{}' panicked", self.name)))?,
            None => Ok(()),
        }
    }
}

/// The SENSEI bridge: the single instrumentation point a simulation calls.
///
/// Back-ends are attached with [`Bridge::add_analysis`] (directly or from
/// XML via [`crate::ConfigurableAnalysis`]); every iteration the
/// simulation calls [`Bridge::execute`] with its data adaptor; at shutdown
/// [`Bridge::finalize`] drains asynchronous workers and returns the
/// [`Profiler`] with the run's per-iteration timings.
pub struct Bridge {
    node: Arc<SimNode>,
    slots: Vec<BackendSlot>,
    profiler: Profiler,
    finalized: bool,
}

impl Bridge {
    /// A bridge for one rank on `node`.
    pub fn new(node: Arc<SimNode>) -> Self {
        Bridge { node, slots: Vec::new(), profiler: Profiler::new(), finalized: false }
    }

    /// Attach a back-end. The back-end's [`ExecutionMethod`] decides its
    /// slot: lockstep back-ends run inline; asynchronous back-ends get a
    /// persistent worker thread and a dedicated duplicate of `comm`
    /// (collective: every rank must attach the same back-ends in the same
    /// order).
    pub fn add_analysis(&mut self, adaptor: Box<dyn AnalysisAdaptor>, comm: &Comm) -> Result<()> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let slot = match adaptor.controls().execution {
            ExecutionMethod::Lockstep => BackendSlot::Lockstep(adaptor),
            ExecutionMethod::Asynchronous => {
                let dup = comm.dup();
                BackendSlot::Async(AsyncRunner::spawn(adaptor, dup, self.node.clone()))
            }
        };
        self.slots.push(slot);
        Ok(())
    }

    /// Number of attached back-ends.
    pub fn num_backends(&self) -> usize {
        self.slots.len()
    }

    /// Process the simulation's current state through every back-end.
    ///
    /// `solver_time` is the solver cost of the iteration just completed
    /// (recorded alongside the measured apparent in situ cost). Returns
    /// `Ok(false)` when a lockstep back-end requests the simulation stop.
    pub fn execute(
        &mut self,
        data: &dyn DataAdaptor,
        comm: &Comm,
        solver_time: Duration,
    ) -> Result<bool> {
        if self.finalized {
            return Err(Error::Finalized);
        }
        let step = data.time_step();
        let t0 = Instant::now();
        let mut proceed = true;
        // One deep-copied snapshot per iteration, shared by every
        // asynchronous back-end (§4.3: "the in situ code deep copies the
        // relevant data" — once, not once per back-end).
        let mut snapshot: Option<Arc<SnapshotAdaptor>> = None;
        for slot in &mut self.slots {
            match slot {
                BackendSlot::Lockstep(adaptor) => {
                    if !adaptor.controls().due_at(step) {
                        continue;
                    }
                    let ctx = ExecContext::new(comm, &self.node);
                    proceed &= adaptor.execute(data, &ctx)?;
                }
                BackendSlot::Async(runner) => {
                    if !runner.controls.due_at(step) {
                        continue;
                    }
                    // Deep copy, hand off, return immediately (§4.3).
                    if snapshot.is_none() {
                        snapshot = Some(Arc::new(SnapshotAdaptor::capture(data)?));
                    }
                    runner.submit(snapshot.clone().expect("captured above"))?;
                }
            }
        }
        let apparent = t0.elapsed();
        self.profiler.record(step, solver_time, apparent);
        Ok(proceed)
    }

    /// Finalize every back-end (draining asynchronous queues) and return
    /// the run's profiler.
    pub fn finalize(mut self, comm: &Comm) -> Result<Profiler> {
        self.finalized = true;
        let mut first_err = None;
        for slot in &mut self.slots {
            let result = match slot {
                BackendSlot::Lockstep(adaptor) => {
                    let ctx = ExecContext::new(comm, &self.node);
                    adaptor.finalize(&ctx)
                }
                BackendSlot::Async(runner) => runner.drain(),
            };
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        self.profiler.stop();
        match first_err {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.profiler)),
        }
    }
}
