//! Automatic device selection — Eq. (1) of the paper.

/// User-tunable parameters of the automatic device-selection rule.
///
/// The defaults reproduce the paper's: `n_u = n_a` (use every device),
/// `s = 1`, `d_0 = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSelector {
    /// Devices to use per node (`n_u`); `None` means "all available".
    pub n_use: Option<usize>,
    /// Stride between consecutive ranks' devices (`s`).
    pub stride: usize,
    /// First device to assign (`d_0`).
    pub offset: usize,
}

impl Default for DeviceSelector {
    fn default() -> Self {
        DeviceSelector { n_use: None, stride: 1, offset: 0 }
    }
}

/// Evaluate Eq. (1): `d = (r mod n_u * s + d_0) mod n_a`.
///
/// * `rank` — the MPI rank of the querying process (`r`);
/// * `n_avail` — devices on the node (`n_a`), from a system query.
///
/// As in C, `r mod n_u * s` parses as `(r mod n_u) * s`.
///
/// # Panics
/// Panics if `n_avail == 0`, or the selector requests zero devices or a
/// zero stride — configurations the C++ implementation also rejects.
pub fn select_device(rank: usize, n_avail: usize, sel: &DeviceSelector) -> usize {
    assert!(n_avail > 0, "device selection requires at least one device");
    let n_use = sel.n_use.unwrap_or(n_avail);
    assert!(n_use > 0, "n_use must be positive");
    assert!(sel.stride > 0, "stride must be positive");
    (rank % n_use * sel.stride + sel.offset) % n_avail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_robin_over_all_devices() {
        let sel = DeviceSelector::default();
        let got: Vec<_> = (0..8).map(|r| select_device(r, 4, &sel)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn n_use_restricts_the_pool() {
        // Use 2 of 4 devices: ranks alternate between devices 0 and 1.
        let sel = DeviceSelector { n_use: Some(2), ..Default::default() };
        let got: Vec<_> = (0..6).map(|r| select_device(r, 4, &sel)).collect();
        assert_eq!(got, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn stride_spreads_ranks() {
        // Stride 2 over 4 devices: 0, 2, 0, 2 ... with n_u = 2.
        let sel = DeviceSelector { n_use: Some(2), stride: 2, offset: 0 };
        let got: Vec<_> = (0..4).map(|r| select_device(r, 4, &sel)).collect();
        assert_eq!(got, vec![0, 2, 0, 2]);
    }

    #[test]
    fn offset_shifts_the_assignment() {
        // Offset 3 on a 4-device node: rank 0 -> device 3, rank 1 -> 0, ...
        let sel = DeviceSelector { offset: 3, ..Default::default() };
        let got: Vec<_> = (0..4).map(|r| select_device(r, 4, &sel)).collect();
        assert_eq!(got, vec![3, 0, 1, 2]);
    }

    #[test]
    fn dedicated_device_shape() {
        // The paper's 1-dedicated-device placement: 3 simulation ranks on
        // devices 0..2 (n_u = 3), in situ pinned to device 3 via
        // n_u = 1, offset = 3.
        let sim = DeviceSelector { n_use: Some(3), ..Default::default() };
        let insitu = DeviceSelector { n_use: Some(1), offset: 3, ..Default::default() };
        for r in 0..3 {
            assert_eq!(select_device(r, 4, &sim), r);
            assert_eq!(select_device(r, 4, &insitu), 3);
        }
    }

    #[test]
    fn two_dedicated_devices_shape() {
        // The paper's 2-dedicated placement: 2 ranks per node, sim on
        // devices 0..1, in situ paired on devices 2..3.
        let sim = DeviceSelector { n_use: Some(2), ..Default::default() };
        let insitu = DeviceSelector { n_use: Some(2), offset: 2, ..Default::default() };
        assert_eq!(select_device(0, 4, &sim), 0);
        assert_eq!(select_device(1, 4, &sim), 1);
        assert_eq!(select_device(0, 4, &insitu), 2);
        assert_eq!(select_device(1, 4, &insitu), 3);
    }

    #[test]
    fn result_is_always_a_valid_device() {
        for n_avail in 1..6 {
            for n_use in 1..6 {
                for stride in 1..4 {
                    for offset in 0..6 {
                        let sel = DeviceSelector { n_use: Some(n_use), stride, offset };
                        for rank in 0..12 {
                            let d = select_device(rank, n_avail, &sel);
                            assert!(d < n_avail, "d={d} out of range n_a={n_avail}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        select_device(0, 0, &DeviceSelector::default());
    }
}
