//! The in situ placements investigated in the paper's evaluation (§4.3).

use crate::controls::DeviceSpec;
use crate::device_select::DeviceSelector;

/// Where in situ processing runs relative to the simulation, for a node
/// with `n_a` devices and one simulation rank per simulation device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// In situ on the host CPUs; data moves device → host.
    Host,
    /// In situ on the device where the data is generated; zero-copy.
    SameDevice,
    /// `k` devices per node reserved exclusively for in situ processing;
    /// the remaining `n_a - k` devices run the simulation and data moves
    /// device → device.
    DedicatedDevices(usize),
}

impl Placement {
    /// The four placements of Table 1, in the paper's order.
    pub fn paper_placements() -> [Placement; 4] {
        [
            Placement::Host,
            Placement::SameDevice,
            Placement::DedicatedDevices(1),
            Placement::DedicatedDevices(2),
        ]
    }

    /// Human-readable label (matches the paper's figures).
    pub fn label(&self) -> String {
        match self {
            Placement::Host => "all on host".to_string(),
            Placement::SameDevice => "on same device".to_string(),
            Placement::DedicatedDevices(1) => "1 dedicated device".to_string(),
            Placement::DedicatedDevices(k) => format!("{k} dedicated devices"),
        }
    }

    /// Parse an XML/CLI spelling.
    pub fn parse(s: &str) -> Option<Placement> {
        match s.trim().to_ascii_lowercase().as_str() {
            "host" => Some(Placement::Host),
            "same_device" | "same-device" | "same" => Some(Placement::SameDevice),
            "dedicated" | "dedicated_1" | "dedicated-1" => Some(Placement::DedicatedDevices(1)),
            "dedicated_2" | "dedicated-2" => Some(Placement::DedicatedDevices(2)),
            _ => None,
        }
    }

    /// MPI ranks per node: one per *simulation* device (Table 1's
    /// "Ranks per node" column).
    ///
    /// # Panics
    /// Panics if the placement reserves every device, leaving none for
    /// the simulation.
    pub fn ranks_per_node(&self, n_devices: usize) -> usize {
        match self {
            Placement::Host | Placement::SameDevice => n_devices,
            Placement::DedicatedDevices(k) => {
                assert!(*k < n_devices, "cannot dedicate all {n_devices} devices to in situ");
                n_devices - k
            }
        }
    }

    /// Device selector assigning each simulation rank its device.
    pub fn sim_selector(&self, n_devices: usize) -> DeviceSelector {
        DeviceSelector { n_use: Some(self.ranks_per_node(n_devices)), stride: 1, offset: 0 }
    }

    /// The in situ device spec + selector implementing this placement
    /// through the back-end controls.
    pub fn insitu_spec(&self, n_devices: usize) -> (DeviceSpec, DeviceSelector) {
        match self {
            Placement::Host => (DeviceSpec::Host, DeviceSelector::default()),
            Placement::SameDevice => {
                (DeviceSpec::Auto, DeviceSelector { n_use: Some(n_devices), stride: 1, offset: 0 })
            }
            Placement::DedicatedDevices(k) => (
                DeviceSpec::Auto,
                DeviceSelector { n_use: Some(*k), stride: 1, offset: n_devices - k },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_select::select_device;

    const NA: usize = 4;

    fn insitu_device(p: Placement, rank: usize) -> Option<usize> {
        let (spec, sel) = p.insitu_spec(NA);
        match spec {
            DeviceSpec::Host => None,
            DeviceSpec::Auto => Some(select_device(rank, NA, &sel)),
            DeviceSpec::Explicit(d) => Some(d),
        }
    }

    #[test]
    fn table1_ranks_per_node() {
        assert_eq!(Placement::Host.ranks_per_node(NA), 4);
        assert_eq!(Placement::SameDevice.ranks_per_node(NA), 4);
        assert_eq!(Placement::DedicatedDevices(1).ranks_per_node(NA), 3);
        assert_eq!(Placement::DedicatedDevices(2).ranks_per_node(NA), 2);
    }

    #[test]
    fn host_placement_runs_in_situ_on_host() {
        for rank in 0..4 {
            assert_eq!(insitu_device(Placement::Host, rank), None);
        }
    }

    #[test]
    fn same_device_pairs_in_situ_with_simulation() {
        let sim = Placement::SameDevice.sim_selector(NA);
        for rank in 0..4 {
            let sim_dev = select_device(rank, NA, &sim);
            assert_eq!(insitu_device(Placement::SameDevice, rank), Some(sim_dev));
        }
    }

    #[test]
    fn one_dedicated_device_shares_the_last_gpu() {
        let p = Placement::DedicatedDevices(1);
        let sim = p.sim_selector(NA);
        for rank in 0..3 {
            assert_eq!(select_device(rank, NA, &sim), rank, "sim on devices 0..2");
            assert_eq!(insitu_device(p, rank), Some(3), "in situ shared on device 3");
        }
    }

    #[test]
    fn two_dedicated_devices_pair_ranks_with_gpus() {
        let p = Placement::DedicatedDevices(2);
        let sim = p.sim_selector(NA);
        assert_eq!(select_device(0, NA, &sim), 0);
        assert_eq!(select_device(1, NA, &sim), 1);
        assert_eq!(insitu_device(p, 0), Some(2));
        assert_eq!(insitu_device(p, 1), Some(3));
    }

    #[test]
    fn sim_and_insitu_devices_are_disjoint_for_dedicated() {
        for k in 1..NA {
            let p = Placement::DedicatedDevices(k);
            let sim = p.sim_selector(NA);
            for rank in 0..p.ranks_per_node(NA) {
                let sd = select_device(rank, NA, &sim);
                let id = insitu_device(p, rank).unwrap();
                assert!(sd < NA - k, "sim device {sd} in simulation pool");
                assert!(id >= NA - k, "in situ device {id} in dedicated pool");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot dedicate all")]
    fn dedicating_every_device_is_rejected() {
        Placement::DedicatedDevices(4).ranks_per_node(4);
    }

    #[test]
    fn labels_and_parse() {
        assert_eq!(Placement::parse("host"), Some(Placement::Host));
        assert_eq!(Placement::parse("same_device"), Some(Placement::SameDevice));
        assert_eq!(Placement::parse("dedicated"), Some(Placement::DedicatedDevices(1)));
        assert_eq!(Placement::parse("dedicated_2"), Some(Placement::DedicatedDevices(2)));
        assert_eq!(Placement::parse("???"), None);
        assert_eq!(Placement::DedicatedDevices(2).label(), "2 dedicated devices");
    }
}
