//! Worker-failure paths: analyses that error or panic mid-run must not
//! take the solver down, must surface at finalize, and must not leak
//! snapshots or pool blocks — under every overflow policy and recovery
//! policy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use devsim::{MemSpace, NodeConfig, SimNode};
use minimpi::World;
use sensei::{
    AnalysisAdaptor, AnalysisCounters, BackendControls, Bridge, DataAdaptor, ExecContext,
    ExecutionMethod, MeshMetadata, OverflowPolicy, RecoveryPolicy, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

/// A simulation-side adaptor publishing one host column (deep-copied into
/// every asynchronous snapshot, so leaked snapshots show up as leaked
/// host-pool bytes).
struct Sim {
    node: Arc<SimNode>,
    values: Vec<f64>,
    step: u64,
}

impl DataAdaptor for Sim {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        assert_eq!(name, "bodies");
        let mut t = TableData::new();
        let arr = HamrDataArray::<f64>::from_slice(
            "v",
            self.node.clone(),
            &self.values,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .map_err(sensei::Error::Hamr)?;
        t.set_column(arr.as_array_ref());
        Ok(DataObject::Table(t))
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// A back-end that errors or panics on chosen execute attempts (0-based
/// attempt index, counted across retries).
struct Flaky {
    controls: BackendControls,
    counters: Arc<AnalysisCounters>,
    attempts: Arc<AtomicU64>,
    successes: Arc<AtomicU64>,
    finalizes: Arc<AtomicU64>,
    fail_on: Vec<u64>,
    panic_instead: bool,
}

impl Flaky {
    fn boxed(
        execution: ExecutionMethod,
        overflow: OverflowPolicy,
        recovery: RecoveryPolicy,
        fail_on: Vec<u64>,
        panic_instead: bool,
    ) -> (Box<dyn AnalysisAdaptor>, Arc<AnalysisCounters>, Arc<AtomicU64>, Arc<AtomicU64>) {
        let counters = AnalysisCounters::new();
        let attempts = Arc::new(AtomicU64::new(0));
        let successes = Arc::new(AtomicU64::new(0));
        let adaptor = Box::new(Flaky {
            controls: BackendControls { execution, overflow, recovery, ..Default::default() },
            counters: counters.clone(),
            attempts: attempts.clone(),
            successes: successes.clone(),
            finalizes: Arc::new(AtomicU64::new(0)),
            fail_on,
            panic_instead,
        });
        (adaptor, counters, attempts, successes)
    }
}

impl AnalysisAdaptor for Flaky {
    fn name(&self) -> &str {
        "flaky"
    }
    fn controls(&self) -> &BackendControls {
        &self.controls
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }
    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }
    fn execute(&mut self, data: &dyn DataAdaptor, _ctx: &ExecContext<'_>) -> Result<bool> {
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
        if self.fail_on.contains(&attempt) {
            if self.panic_instead {
                panic!("flaky analysis panicked on attempt {attempt}");
            }
            return Err(sensei::Error::Analysis(format!("flaky failure on attempt {attempt}")));
        }
        // Touch the data like a real back-end (reads the snapshot copy on
        // the worker thread).
        let mesh = data.mesh("bodies")?;
        let col = mesh.as_table().unwrap().column("v").unwrap().clone();
        let _sum: f64 = svtk::downcast::<f64>(&col)
            .unwrap()
            .to_vec()
            .map_err(sensei::Error::Hamr)?
            .iter()
            .sum();
        self.counters.add_table_passes(1);
        self.successes.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }
    fn finalize(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        self.finalizes.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// Drive `steps` bridge iterations, tolerating per-step dispatch errors
/// (the solver keeps stepping regardless), and return how many execute
/// calls errored.
fn run_tolerant(bridge: &mut Bridge, sim: &mut Sim, comm: &minimpi::Comm, steps: u64) -> u64 {
    let mut errors = 0;
    for step in 0..steps {
        sim.step = step;
        if bridge.execute(sim as &dyn DataAdaptor, comm, Duration::ZERO).is_err() {
            errors += 1;
        }
    }
    errors
}

#[test]
fn erroring_async_worker_surfaces_at_finalize_under_each_policy() {
    for overflow in [OverflowPolicy::Block, OverflowPolicy::DropOldest, OverflowPolicy::Error] {
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let baseline = node.pool_stats(MemSpace::Host).live_bytes;
            let (adaptor, counters, _attempts, successes) = Flaky::boxed(
                ExecutionMethod::Asynchronous,
                overflow,
                RecoveryPolicy::Abort,
                vec![1],
                false,
            );
            let mut bridge = Bridge::new(node.clone());
            bridge.add_analysis(adaptor, &comm).unwrap();
            let mut sim = Sim { node: node.clone(), values: vec![1.0, 2.0, 3.0], step: 0 };
            // The solver completes all 6 steps even though the worker dies
            // on its second snapshot.
            run_tolerant(&mut bridge, &mut sim, &comm, 6);
            let err = bridge.finalize(&comm).unwrap_err();
            assert!(
                matches!(err, sensei::Error::Analysis(_)),
                "({overflow:?}) finalize reports the worker failure, got {err:?}"
            );
            assert_eq!(successes.load(Ordering::SeqCst), 1, "({overflow:?}) first step ran");
            let f = counters.snapshot().faults;
            assert_eq!((f.injected, f.aborted), (1, 1), "({overflow:?})");
            // No snapshot or pool blocks leak: queued snapshots are freed
            // when the engine shuts down.
            assert_eq!(
                node.pool_stats(MemSpace::Host).live_bytes,
                baseline,
                "({overflow:?}) host pool back to baseline"
            );
        });
    }
}

#[test]
fn failed_worker_partial_counters_survive_finalize() {
    // Regression: a worker that aborts at step N still completed steps
    // 0..N; `Bridge::finalize` used to drop the profiler (and with it the
    // merged counter samples) when surfacing the typed error, losing
    // those partial totals. `finalize_partial` returns both.
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, counters, _attempts, successes) = Flaky::boxed(
            ExecutionMethod::Asynchronous,
            OverflowPolicy::Block,
            RecoveryPolicy::Abort,
            vec![2],
            false,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![1.0, 2.0], step: 0 };
        run_tolerant(&mut bridge, &mut sim, &comm, 6);
        let (profiler, err) = bridge.finalize_partial(&comm);
        let err = err.expect("the aborted worker must surface its typed error");
        assert!(matches!(err, sensei::Error::Analysis(_)), "got {err:?}");
        assert_eq!(successes.load(Ordering::SeqCst), 2, "two steps completed before the abort");

        // The partial totals from the completed steps were merged into the
        // profiler before the error surfaced.
        let sample = profiler
            .counter_samples()
            .iter()
            .find(|s| s.backend == "flaky")
            .expect("failed worker's counters are still recorded");
        assert_eq!(sample.counters.table_passes, 2, "partial work counters survive");
        assert_eq!((sample.counters.faults.injected, sample.counters.faults.aborted), (1, 1));
        assert_eq!(sample.counters, counters.snapshot());
        // And the CSV surface carries them too.
        assert!(profiler.counters_csv().contains("flaky,2,"), "csv row for the failed worker");
    });
}

#[test]
fn panicking_async_worker_is_reported_not_fatal() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let baseline = node.pool_stats(MemSpace::Host).live_bytes;
        let (adaptor, counters, _attempts, _successes) = Flaky::boxed(
            ExecutionMethod::Asynchronous,
            OverflowPolicy::Block,
            RecoveryPolicy::Abort,
            vec![0],
            true,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![4.0], step: 0 };
        run_tolerant(&mut bridge, &mut sim, &comm, 4);
        let err = bridge.finalize(&comm).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("panicked"), "panic converted to a typed error, got: {msg}");
        assert_eq!(counters.snapshot().faults.aborted, 1);
        assert_eq!(node.pool_stats(MemSpace::Host).live_bytes, baseline, "no leaked snapshot");
    });
}

#[test]
fn skip_step_keeps_the_worker_alive_through_failures() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        // Attempts 1 and 3 fail; under SkipStep the worker drops those
        // iterations and keeps consuming.
        let (adaptor, counters, attempts, successes) = Flaky::boxed(
            ExecutionMethod::Asynchronous,
            OverflowPolicy::Block,
            RecoveryPolicy::SkipStep,
            vec![1, 3],
            false,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![1.0], step: 0 };
        let errors = run_tolerant(&mut bridge, &mut sim, &comm, 6);
        assert_eq!(errors, 0, "skip_step never fails a dispatch");
        bridge.finalize(&comm).expect("skipped steps are not a finalize failure");
        assert_eq!(attempts.load(Ordering::SeqCst), 6, "every snapshot was attempted");
        assert_eq!(successes.load(Ordering::SeqCst), 4, "two iterations dropped");
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.skipped, f.aborted), (2, 2, 0));
    });
}

#[test]
fn retry_recovers_an_async_panic_within_budget() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, counters, _attempts, successes) = Flaky::boxed(
            ExecutionMethod::Asynchronous,
            OverflowPolicy::Block,
            RecoveryPolicy::Retry { max_retries: 2, backoff_ms: 0 },
            vec![2],
            true,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![1.0], step: 0 };
        let errors = run_tolerant(&mut bridge, &mut sim, &comm, 4);
        assert_eq!(errors, 0);
        bridge.finalize(&comm).unwrap();
        assert_eq!(successes.load(Ordering::SeqCst), 4, "all 4 steps eventually processed");
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.retried, f.recovered, f.aborted), (1, 1, 1, 0));
    });
}

#[test]
fn inline_panic_is_caught_and_recovered_by_retry() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, counters, _attempts, successes) = Flaky::boxed(
            ExecutionMethod::Lockstep,
            OverflowPolicy::Block,
            RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 0 },
            vec![0],
            true,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![2.0], step: 0 };
        let errors = run_tolerant(&mut bridge, &mut sim, &comm, 3);
        assert_eq!(errors, 0, "the panic is retried inline, the solver never sees it");
        bridge.finalize(&comm).unwrap();
        assert_eq!(successes.load(Ordering::SeqCst), 3);
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.retried, f.recovered), (1, 1, 1));
    });
}

#[test]
fn inline_abort_propagates_but_solver_chooses_to_continue() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, counters, _attempts, successes) = Flaky::boxed(
            ExecutionMethod::Lockstep,
            OverflowPolicy::Block,
            RecoveryPolicy::Abort,
            vec![1],
            false,
        );
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(adaptor, &comm).unwrap();
        let mut sim = Sim { node: node.clone(), values: vec![2.0], step: 0 };
        let errors = run_tolerant(&mut bridge, &mut sim, &comm, 4);
        assert_eq!(errors, 1, "exactly the failing step errored");
        bridge.finalize(&comm).unwrap();
        assert_eq!(successes.load(Ordering::SeqCst), 3);
        assert_eq!(counters.snapshot().faults.aborted, 1);
    });
}
