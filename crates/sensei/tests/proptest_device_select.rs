//! Property tests pinning automatic device selection to Eq. (1) of the
//! paper: `d = (r mod n_u * s + d_0) mod n_a`.

use proptest::prelude::*;
use sensei::{select_device, DeviceSelector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The selected device is a valid index for every admissible
    /// parameter combination — including offsets and strides far past
    /// `n_avail`, where the outer `mod n_a` must wrap.
    #[test]
    fn selection_is_always_in_range(
        rank in 0usize..10_000,
        n_avail in 1usize..64,
        n_use in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..10_000,
    ) {
        let sel = DeviceSelector { n_use: Some(n_use), stride, offset };
        prop_assert!(select_device(rank, n_avail, &sel) < n_avail);
    }

    /// Exact pin against the closed form, with C precedence:
    /// `r mod n_u * s` is `(r mod n_u) * s`.
    #[test]
    fn selection_matches_eq_1(
        rank in 0usize..10_000,
        n_avail in 1usize..64,
        n_use in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..10_000,
    ) {
        let sel = DeviceSelector { n_use: Some(n_use), stride, offset };
        prop_assert_eq!(
            select_device(rank, n_avail, &sel),
            (rank % n_use * stride + offset) % n_avail
        );
    }

    /// `n_use: None` means "use every available device" — identical to
    /// writing `Some(n_avail)` explicitly.
    #[test]
    fn default_n_use_is_all_available(
        rank in 0usize..10_000,
        n_avail in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..10_000,
    ) {
        let all = DeviceSelector { n_use: None, stride, offset };
        let explicit = DeviceSelector { n_use: Some(n_avail), stride, offset };
        prop_assert_eq!(
            select_device(rank, n_avail, &all),
            select_device(rank, n_avail, &explicit)
        );
    }

    /// A single-device node absorbs every configuration: the answer is
    /// always device 0.
    #[test]
    fn single_device_always_selects_zero(
        rank in 0usize..10_000,
        n_use in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..10_000,
    ) {
        let sel = DeviceSelector { n_use: Some(n_use), stride, offset };
        prop_assert_eq!(select_device(rank, 1, &sel), 0);
    }

    /// Offsets at or past `n_avail` wrap: shifting the offset by exactly
    /// `n_avail` never changes the assignment.
    #[test]
    fn offset_wraps_modulo_n_avail(
        rank in 0usize..10_000,
        n_avail in 1usize..64,
        n_use in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..1_000,
    ) {
        let base = DeviceSelector { n_use: Some(n_use), stride, offset };
        let wrapped = DeviceSelector { n_use: Some(n_use), stride, offset: offset + n_avail };
        prop_assert_eq!(
            select_device(rank, n_avail, &base),
            select_device(rank, n_avail, &wrapped)
        );
    }

    /// Ranks congruent modulo `n_use` land on the same device — the
    /// round-robin the paper relies on for multi-rank nodes.
    #[test]
    fn assignment_is_periodic_in_rank(
        rank in 0usize..10_000,
        n_avail in 1usize..64,
        n_use in 1usize..64,
        stride in 1usize..64,
        offset in 0usize..1_000,
    ) {
        let sel = DeviceSelector { n_use: Some(n_use), stride, offset };
        prop_assert_eq!(
            select_device(rank, n_avail, &sel),
            select_device(rank + n_use, n_avail, &sel)
        );
    }
}
