//! The closed profiler loop at the bridge level: taint-marked samples
//! (retry backoff must not look like real cost), mid-run reconfiguration
//! that changes *when* work runs but never *what* it computes, and the
//! measurement-driven controller converging on a real bridge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use sensei::{
    AdaptiveConfig, AnalysisAdaptor, AnalysisCounters, BackendControls, Bridge, DataAdaptor,
    DeviceSpec, ExecContext, ExecutionMethod, MeshMetadata, RecoveryPolicy, Result, SnapshotMode,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

/// A simulation adaptor publishing one deterministic host column whose
/// values depend only on the step (splitmix64, same idiom as the bench
/// producers).
struct Sim {
    node: Arc<SimNode>,
    rows: usize,
    step: u64,
}

fn field_value(step: u64, i: u64) -> f64 {
    let mut z = step.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) as f64 / u64::MAX as f64
}

impl DataAdaptor for Sim {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        assert_eq!(name, "bodies");
        let values: Vec<f64> = (0..self.rows).map(|i| field_value(self.step, i as u64)).collect();
        let mut t = TableData::new();
        let arr = HamrDataArray::<f64>::from_slice(
            "v",
            self.node.clone(),
            &values,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .map_err(sensei::Error::Hamr)?;
        t.set_column(arr.as_array_ref());
        Ok(DataObject::Table(t))
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// A deterministic reduction back-end streaming per-step sums into a
/// shared sink (position-independent: a rebuild mid-run changes nothing
/// about what any step computes). Optionally sleeps per dispatch as a
/// placement-dependent synthetic cost, and optionally fails chosen
/// attempts to exercise retry recovery.
struct Summer {
    controls: BackendControls,
    counters: Arc<AnalysisCounters>,
    sink: Arc<Mutex<Vec<(u64, f64)>>>,
    attempts: Arc<AtomicU64>,
    fail_on: Vec<u64>,
    host_cost: Duration,
    device_cost: Duration,
}

impl AnalysisAdaptor for Summer {
    fn name(&self) -> &str {
        "summer"
    }
    fn controls(&self) -> &BackendControls {
        &self.controls
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }
    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }
    fn execute(&mut self, data: &dyn DataAdaptor, _ctx: &ExecContext<'_>) -> Result<bool> {
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
        if self.fail_on.contains(&attempt) {
            return Err(sensei::Error::Analysis(format!("injected fault on attempt {attempt}")));
        }
        let cost = match self.controls.device {
            DeviceSpec::Host => self.host_cost,
            _ => self.device_cost,
        };
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
        let mesh = data.mesh("bodies")?;
        let col = mesh.as_table().unwrap().column("v").unwrap().clone();
        let sum: f64 = svtk::downcast::<f64>(&col)
            .unwrap()
            .to_vec()
            .map_err(sensei::Error::Hamr)?
            .iter()
            .sum();
        self.counters.add_table_passes(1);
        self.sink.lock().unwrap().push((data.time_step(), sum));
        Ok(true)
    }
}

struct SummerSpec {
    sink: Arc<Mutex<Vec<(u64, f64)>>>,
    attempts: Arc<AtomicU64>,
    fail_on: Vec<u64>,
    host_cost: Duration,
    device_cost: Duration,
}

impl SummerSpec {
    fn quiet() -> Self {
        SummerSpec {
            sink: Arc::new(Mutex::new(Vec::new())),
            attempts: Arc::new(AtomicU64::new(0)),
            fail_on: Vec::new(),
            host_cost: Duration::ZERO,
            device_cost: Duration::ZERO,
        }
    }

    fn build(&self, controls: BackendControls) -> Box<dyn AnalysisAdaptor> {
        Box::new(Summer {
            controls,
            counters: AnalysisCounters::new(),
            sink: self.sink.clone(),
            attempts: self.attempts.clone(),
            fail_on: self.fail_on.clone(),
            host_cost: self.host_cost,
            device_cost: self.device_cost,
        })
    }

    fn factory(&self) -> sensei::AdaptorFactory {
        let sink = self.sink.clone();
        let attempts = self.attempts.clone();
        let fail_on = self.fail_on.clone();
        let (host_cost, device_cost) = (self.host_cost, self.device_cost);
        Box::new(move |controls: &BackendControls| {
            Ok(Box::new(Summer {
                controls: *controls,
                counters: AnalysisCounters::new(),
                sink: sink.clone(),
                attempts: attempts.clone(),
                fail_on: fail_on.clone(),
                host_cost,
                device_cost,
            }) as Box<dyn AnalysisAdaptor>)
        })
    }

    fn sorted_results(&self) -> Vec<(u64, f64)> {
        let mut v = self.sink.lock().unwrap().clone();
        v.sort_by_key(|(s, _)| *s);
        v
    }
}

fn drive(bridge: &mut Bridge, sim: &mut Sim, comm: &minimpi::Comm, steps: u64) {
    for step in 0..steps {
        sim.step = step;
        bridge.execute(sim as &dyn DataAdaptor, comm, Duration::from_millis(1)).unwrap();
    }
}

/// Satellite regression: one injected fault under `Retry` sleeps a real
/// backoff inside dispatch; the sample must be flagged tainted and the
/// controller's window must skip it instead of reading the backoff as a
/// workload shift.
#[test]
fn retry_backoff_taints_the_sample_and_the_window_skips_it() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut spec = SummerSpec::quiet();
        spec.fail_on = vec![4];
        let controls = BackendControls {
            execution: ExecutionMethod::Lockstep,
            device: DeviceSpec::Host,
            recovery: RecoveryPolicy::Retry { max_retries: 2, backoff_ms: 20 },
            ..Default::default()
        };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_reconfigurable_analysis(controls, spec.factory(), &comm).unwrap();
        // All tuning off: the controller settles immediately and only
        // watches for drift — exactly the state a backoff spike would
        // corrupt into a spurious re-probe if it were not tainted.
        bridge.enable_adaptive(AdaptiveConfig {
            window: 2,
            warmup: 0,
            tune_placement: false,
            tune_execution: false,
            tune_layout: false,
            tune_snapshot: false,
            ..Default::default()
        });
        let mut sim = Sim { node: node.clone(), rows: 64, step: 0 };
        drive(&mut bridge, &mut sim, &comm, 10);

        let ctrl = bridge.adaptive_controller().expect("adaptive enabled");
        assert!(ctrl.settled());
        assert_eq!(ctrl.tainted_skipped(), 1, "exactly the faulted step was skipped");
        assert_eq!(ctrl.probes_used(), 0, "no spurious exploration");

        let profiler = bridge.finalize(&comm).unwrap();
        let tainted: Vec<u64> =
            profiler.backend_samples().iter().filter(|s| s.tainted).map(|s| s.step).collect();
        assert_eq!(tainted, vec![4], "only the retried step is flagged");
        assert!(profiler.adaptive_samples().is_empty(), "no decision made off the spike");
        // The flag reaches the CSV surface the harnesses parse.
        assert!(profiler
            .backend_csv()
            .lines()
            .any(|l| l.starts_with("4,summer,") && l.ends_with(",1")));
    });
}

/// Mid-run reconfiguration across execution modes, placements, and
/// layouts computes bit-identical per-step results to a static run —
/// reconfiguration changes *when* work runs, never *what* it computes.
#[test]
fn reconfiguration_is_bit_identical_to_static() {
    World::new(1).run(|comm| {
        let steps = 12;
        // Static reference: lockstep on host throughout.
        let node = SimNode::new(NodeConfig::fast_test(2));
        let spec_static = SummerSpec::quiet();
        let base = BackendControls {
            execution: ExecutionMethod::Lockstep,
            device: DeviceSpec::Host,
            ..Default::default()
        };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(spec_static.build(base), &comm).unwrap();
        let mut sim = Sim { node, rows: 256, step: 0 };
        drive(&mut bridge, &mut sim, &comm, steps);
        bridge.finalize(&comm).unwrap();
        let reference = spec_static.sorted_results();
        assert_eq!(reference.len(), steps as usize);

        // Reconfigured run: flip mode/placement/layout every few steps.
        let node = SimNode::new(NodeConfig::fast_test(2));
        let spec = SummerSpec::quiet();
        let mut bridge = Bridge::new(node.clone());
        bridge.add_reconfigurable_analysis(base, spec.factory(), &comm).unwrap();
        let mut sim = Sim { node, rows: 256, step: 0 };
        let schedule: Vec<(u64, BackendControls)> = vec![
            (3, BackendControls { execution: ExecutionMethod::Asynchronous, ..base }),
            (
                6,
                BackendControls {
                    execution: ExecutionMethod::Lockstep,
                    device: DeviceSpec::Explicit(1),
                    layout: hamr::Layout::SoA,
                    ..base
                },
            ),
            (
                9,
                BackendControls {
                    execution: ExecutionMethod::Asynchronous,
                    device: DeviceSpec::Host,
                    layout: hamr::Layout::AoSoA { lane_width: 4 },
                    queue_depth: 2,
                    ..base
                },
            ),
        ];
        for step in 0..steps {
            if let Some((_, c)) = schedule.iter().find(|(at, _)| *at == step) {
                bridge.reconfigure_backend(0, *c, &comm).unwrap();
                assert_eq!(bridge.backend_controls(0), Some(*c));
            }
            sim.step = step;
            bridge.execute(&sim as &dyn DataAdaptor, &comm, Duration::from_millis(1)).unwrap();
        }
        let profiler = bridge.finalize(&comm).unwrap();
        assert_eq!(spec.sorted_results(), reference, "bit-identical across reconfigurations");
        // Each engine incarnation merged its counters at retirement: the
        // per-label rows sum to one table pass per step, none lost.
        assert_eq!(profiler.counters_total().table_passes, steps);
    });
}

/// The full loop on a real bridge: a placement-dependent cost (host 5 ms,
/// device ~0) and a controller that must find the device and settle.
#[test]
fn controller_converges_on_a_live_bridge() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut spec = SummerSpec::quiet();
        spec.host_cost = Duration::from_millis(5);
        let start = BackendControls {
            execution: ExecutionMethod::Lockstep,
            device: DeviceSpec::Host,
            ..Default::default()
        };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_reconfigurable_analysis(start, spec.factory(), &comm).unwrap();
        bridge.enable_adaptive(AdaptiveConfig {
            window: 2,
            warmup: 1,
            cooldown: 1,
            tune_execution: false,
            tune_layout: false,
            tune_snapshot: false,
            ..Default::default()
        });
        let mut sim = Sim { node, rows: 64, step: 0 };
        drive(&mut bridge, &mut sim, &comm, 30);
        let ctrl = bridge.adaptive_controller().unwrap();
        assert!(ctrl.settled(), "exploration ended");
        let placed = bridge.backend_controls(0).unwrap().device;
        assert_ne!(placed, DeviceSpec::Host, "the 50x cheaper device won, got {placed:?}");
        let profiler = bridge.finalize(&comm).unwrap();
        assert!(
            profiler.adaptive_samples().iter().any(|s| s.action == "probe"),
            "decision log records the exploration"
        );
        assert!(profiler.adaptive_csv().starts_with("step,backend,action,detail\n"));
    });
}

/// Reconfiguration is gated on how the back-end was attached.
#[test]
fn reconfigure_requires_a_factory_and_a_valid_index() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec = SummerSpec::quiet();
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(spec.build(BackendControls::default()), &comm).unwrap();
        let err = bridge.reconfigure_backend(0, BackendControls::default(), &comm).unwrap_err();
        assert!(matches!(err, sensei::Error::Config(_)), "no factory: {err}");
        let err = bridge.reconfigure_backend(7, BackendControls::default(), &comm).unwrap_err();
        assert!(matches!(err, sensei::Error::Config(_)), "bad index: {err}");
        bridge.finalize(&comm).unwrap();
    });
}

/// Satellite: every back-end gets a scheduler row — explicit zeros for
/// engines without a task-graph scheduler — so scheduler_csv stays
/// rectangular whatever mix of modes a run used.
#[test]
fn scheduler_csv_emits_explicit_zero_rows_for_non_dag_backends() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec = SummerSpec::quiet();
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(spec.build(BackendControls::default()), &comm).unwrap();
        let mut sim = Sim { node, rows: 16, step: 0 };
        drive(&mut bridge, &mut sim, &comm, 2);
        let profiler = bridge.finalize(&comm).unwrap();
        assert_eq!(profiler.scheduler_samples().len(), 1, "one row per back-end");
        let row = &profiler.scheduler_samples()[0];
        assert_eq!(row.backend, "summer");
        assert_eq!(row.counters, sensei::SchedulerSnapshot::default(), "explicit zeros");
        assert!(profiler.scheduler_csv().contains("summer,0,0,0,0"), "rectangular CSV");
    });
}

/// Snapshot-mode switches mid-run (the controller's snapshot dimension)
/// keep results bit-identical too.
#[test]
fn snapshot_mode_flips_preserve_results() {
    World::new(1).run(|comm| {
        let steps = 9;
        let node = SimNode::new(NodeConfig::fast_test(1));
        let reference_spec = SummerSpec::quiet();
        let controls =
            BackendControls { execution: ExecutionMethod::Asynchronous, ..Default::default() };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(reference_spec.build(controls), &comm).unwrap();
        let mut sim = Sim { node, rows: 128, step: 0 };
        drive(&mut bridge, &mut sim, &comm, steps);
        bridge.finalize(&comm).unwrap();
        let reference = reference_spec.sorted_results();

        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec = SummerSpec::quiet();
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(spec.build(controls), &comm).unwrap();
        let mut sim = Sim { node, rows: 128, step: 0 };
        for step in 0..steps {
            match step {
                3 => bridge.set_snapshot_mode(SnapshotMode::Delta),
                6 => bridge.set_snapshot_mode(SnapshotMode::Cow),
                _ => {}
            }
            sim.step = step;
            bridge.execute(&sim as &dyn DataAdaptor, &comm, Duration::from_millis(1)).unwrap();
        }
        bridge.finalize(&comm).unwrap();
        assert_eq!(spec.sorted_results(), reference, "bit-identical across snapshot modes");
    });
}
