//! Integration tests of the bridge: lockstep vs asynchronous execution,
//! snapshot isolation, cross-rank reduction from in situ threads, and
//! failure propagation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, BackendControls, Bridge, DataAdaptor, ExecContext, ExecutionMethod,
    MeshMetadata, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

/// A simulation-side adaptor publishing one mutable column.
struct Sim {
    node: Arc<SimNode>,
    values: Vec<f64>,
    step: u64,
}

impl Sim {
    fn new(node: Arc<SimNode>, values: Vec<f64>) -> Self {
        Sim { node, values, step: 0 }
    }
}

impl DataAdaptor for Sim {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        assert_eq!(name, "bodies");
        let mut t = TableData::new();
        let arr = HamrDataArray::<f64>::from_slice(
            "v",
            self.node.clone(),
            &self.values,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .map_err(sensei::Error::Hamr)?;
        t.set_column(arr.as_array_ref());
        Ok(DataObject::Table(t))
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// Test back-end: sums its input column (allreduced across ranks),
/// recording one result per execute, with an optional artificial delay.
struct SummingAnalysis {
    controls: BackendControls,
    results: Arc<Mutex<Vec<f64>>>,
    executes: Arc<AtomicU64>,
    finalizes: Arc<AtomicU64>,
    delay: Duration,
    fail_on_execute: bool,
}

impl SummingAnalysis {
    fn boxed(
        execution: ExecutionMethod,
        results: Arc<Mutex<Vec<f64>>>,
        executes: Arc<AtomicU64>,
        finalizes: Arc<AtomicU64>,
        delay: Duration,
    ) -> Box<dyn AnalysisAdaptor> {
        Box::new(SummingAnalysis {
            controls: BackendControls { execution, ..Default::default() },
            results,
            executes,
            finalizes,
            delay,
            fail_on_execute: false,
        })
    }
}

impl AnalysisAdaptor for SummingAnalysis {
    fn name(&self) -> &str {
        "summing"
    }
    fn controls(&self) -> &BackendControls {
        &self.controls
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }
    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        if self.fail_on_execute {
            return Err(sensei::Error::Analysis("injected failure".into()));
        }
        std::thread::sleep(self.delay);
        let mesh = data.mesh("bodies")?;
        let col = mesh.as_table().unwrap().column("v").unwrap().clone();
        let local: f64 = svtk::downcast::<f64>(&col)
            .unwrap()
            .to_vec()
            .map_err(sensei::Error::Hamr)?
            .iter()
            .sum();
        let global = ctx.comm.allreduce(local, |a, b| a + b);
        self.results.lock().push(global);
        self.executes.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }
    fn finalize(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        self.finalizes.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

#[test]
fn lockstep_executes_inline_across_ranks() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let executes = Arc::new(AtomicU64::new(0));
    let finalizes = Arc::new(AtomicU64::new(0));
    let (r2, e2, f2) = (results.clone(), executes.clone(), finalizes.clone());

    World::new(3).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut bridge = Bridge::new(node.clone());
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Lockstep,
                    r2.clone(),
                    e2.clone(),
                    f2.clone(),
                    Duration::ZERO,
                ),
                &comm,
            )
            .unwrap();
        let mut sim = Sim::new(node, vec![comm.rank() as f64 + 1.0]);
        for step in 0..4 {
            sim.step = step;
            assert!(bridge.execute(&sim, &comm, Duration::from_millis(1)).unwrap());
        }
        let profiler = bridge.finalize(&comm).unwrap();
        assert_eq!(profiler.records().len(), 4);
    });

    // 3 ranks x 4 steps, every execute saw the global sum 1+2+3 = 6.
    assert_eq!(executes.load(Ordering::SeqCst), 12);
    assert_eq!(finalizes.load(Ordering::SeqCst), 3);
    let r = results.lock();
    assert_eq!(r.len(), 12);
    assert!(r.iter().all(|&v| v == 6.0));
}

#[test]
fn async_execution_overlaps_and_drains_at_finalize() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let executes = Arc::new(AtomicU64::new(0));
    let finalizes = Arc::new(AtomicU64::new(0));
    let (r2, e2, f2) = (results.clone(), executes.clone(), finalizes.clone());

    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut bridge = Bridge::new(node.clone());
        // Each analysis execute takes >= 30ms; the simulation's call must
        // return in far less (deep copy + enqueue only).
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Asynchronous,
                    r2.clone(),
                    e2.clone(),
                    f2.clone(),
                    Duration::from_millis(30),
                ),
                &comm,
            )
            .unwrap();
        let mut sim = Sim::new(node, vec![10.0 * (comm.rank() as f64 + 1.0)]);
        for step in 0..3 {
            sim.step = step;
            let t0 = std::time::Instant::now();
            bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
            assert!(
                t0.elapsed() < Duration::from_millis(25),
                "async submission must not wait for the analysis"
            );
        }
        // Finalize drains the queue: all 3 steps complete.
        let profiler = bridge.finalize(&comm).unwrap();
        // Apparent in situ cost is small even though each analysis ran 30ms.
        let s = profiler.summary();
        assert!(s.mean_insitu < Duration::from_millis(25), "apparent cost {:?}", s.mean_insitu);
    });

    assert_eq!(executes.load(Ordering::SeqCst), 6, "2 ranks x 3 steps all processed");
    assert_eq!(finalizes.load(Ordering::SeqCst), 2);
    assert!(results.lock().iter().all(|&v| v == 30.0), "allreduce on in situ threads");
}

#[test]
fn async_snapshot_isolates_from_simulation_mutation() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();

    World::new(1).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Asynchronous,
                    r2.clone(),
                    Arc::new(AtomicU64::new(0)),
                    Arc::new(AtomicU64::new(0)),
                    Duration::from_millis(20),
                ),
                &comm,
            )
            .unwrap();
        let mut sim = Sim::new(node, vec![1.0]);
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        // The simulation overwrites its state while the analysis of the
        // old snapshot may still be running.
        sim.values = vec![100.0];
        sim.step = 1;
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        bridge.finalize(&comm).unwrap();
    });

    assert_eq!(*results.lock(), vec![1.0, 100.0], "each step sees its own snapshot");
}

#[test]
fn mixed_backends_run_in_attachment_order_per_step() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let (r_lock, r_async) = (results.clone(), results.clone());
    let _ = (r_lock, r_async);
    let lock_exec = Arc::new(AtomicU64::new(0));
    let async_exec = Arc::new(AtomicU64::new(0));
    let (le, ae) = (lock_exec.clone(), async_exec.clone());
    let res2 = results.clone();

    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Lockstep,
                    res2.clone(),
                    le.clone(),
                    Arc::new(AtomicU64::new(0)),
                    Duration::ZERO,
                ),
                &comm,
            )
            .unwrap();
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Asynchronous,
                    res2.clone(),
                    ae.clone(),
                    Arc::new(AtomicU64::new(0)),
                    Duration::ZERO,
                ),
                &comm,
            )
            .unwrap();
        assert_eq!(bridge.num_backends(), 2);
        let mut sim = Sim::new(node, vec![comm.rank() as f64]);
        for step in 0..5 {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });

    assert_eq!(lock_exec.load(Ordering::SeqCst), 10);
    assert_eq!(async_exec.load(Ordering::SeqCst), 10);
}

#[test]
fn async_analysis_error_surfaces_at_finalize() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        let failing = Box::new(SummingAnalysis {
            controls: BackendControls {
                execution: ExecutionMethod::Asynchronous,
                ..Default::default()
            },
            results: Arc::new(Mutex::new(Vec::new())),
            executes: Arc::new(AtomicU64::new(0)),
            finalizes: Arc::new(AtomicU64::new(0)),
            delay: Duration::ZERO,
            fail_on_execute: true,
        });
        bridge.add_analysis(failing, &comm).unwrap();
        let mut sim = Sim::new(node, vec![1.0]);
        sim.step = 0;
        // Submission itself succeeds (the failure happens on the worker).
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        let err = bridge.finalize(&comm).unwrap_err();
        assert!(matches!(err, sensei::Error::Analysis(_)), "got {err:?}");
    });
}

#[test]
fn profiler_records_solver_and_insitu_times() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        bridge
            .add_analysis(
                SummingAnalysis::boxed(
                    ExecutionMethod::Lockstep,
                    Arc::new(Mutex::new(Vec::new())),
                    Arc::new(AtomicU64::new(0)),
                    Arc::new(AtomicU64::new(0)),
                    Duration::from_millis(10),
                ),
                &comm,
            )
            .unwrap();
        let mut sim = Sim::new(node, vec![1.0]);
        for step in 0..2 {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::from_millis(42)).unwrap();
        }
        let profiler = bridge.finalize(&comm).unwrap();
        let recs = profiler.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].step, 0);
        assert_eq!(recs[0].solver, Duration::from_millis(42));
        assert!(recs[0].insitu >= Duration::from_millis(9), "lockstep cost measured");
        let s = profiler.summary();
        assert!(s.total_runtime >= Duration::from_millis(20));
    });
}

#[test]
fn frequency_gates_backend_execution() {
    let executes = Arc::new(AtomicU64::new(0));
    let async_execs = Arc::new(AtomicU64::new(0));
    let (e2, a2) = (executes.clone(), async_execs.clone());
    World::new(1).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        // Lockstep back-end every 3rd step...
        let mut lock = SummingAnalysis::boxed(
            ExecutionMethod::Lockstep,
            Arc::new(Mutex::new(Vec::new())),
            e2.clone(),
            Arc::new(AtomicU64::new(0)),
            Duration::ZERO,
        );
        lock.controls_mut().frequency = 3;
        bridge.add_analysis(lock, &comm).unwrap();
        // ...and an asynchronous one every 2nd step.
        let mut asy = SummingAnalysis::boxed(
            ExecutionMethod::Asynchronous,
            Arc::new(Mutex::new(Vec::new())),
            a2.clone(),
            Arc::new(AtomicU64::new(0)),
            Duration::ZERO,
        );
        asy.controls_mut().frequency = 2;
        bridge.add_analysis(asy, &comm).unwrap();

        let mut sim = Sim::new(node, vec![1.0]);
        for step in 1..=12 {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    assert_eq!(executes.load(Ordering::SeqCst), 4, "steps 3, 6, 9, 12");
    assert_eq!(async_execs.load(Ordering::SeqCst), 6, "steps 2, 4, ..., 12");
}
