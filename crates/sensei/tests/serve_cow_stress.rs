//! CoW pin refcount stress for the serving layer: hundreds of sessions
//! attach and detach across steps while the hub holds each step's
//! snapshot pinned through [`StepPin`]s attached to delivered frames.
//!
//! Three invariants are pinned down:
//!
//! * a frame held across the producer's next write keeps reading the
//!   step it was published for (the pin forces the fault copy);
//! * when the last holder of a step's pin lets go, the pin refcount
//!   reaches zero and the CoW pins are released;
//! * after release, a late producer write never observes a shared view
//!   — it faults no copy, because nothing is pinned any more.

use std::cell::Cell;
use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use sensei::{
    ArrayMetadata, DataAdaptor, DataRequirements, Frame, MeshMetadata, OverflowPolicy, Result,
    ServeHub, SessionConfig, SnapshotMode, SnapshotPipeline, StepPayload, StepPin, Topic,
};
use svtk::{
    downcast, Allocator, DataObject, FieldAssociation, HamrDataArray, HamrStream, StreamMode,
    TableData,
};

const LEN: usize = 16;
const STEPS: u64 = 12;
/// Sessions alive at any moment ("hundreds").
const SESSIONS: usize = 240;
/// Sessions replaced (detach + attach) every step.
const CHURN: usize = 40;

/// A solver stand-in publishing one host column it overwrites in place.
struct ToySolver {
    table: TableData,
    step: Cell<u64>,
}

impl ToySolver {
    fn new(node: &Arc<SimNode>) -> Self {
        let col = HamrDataArray::<f64>::from_slice(
            "x",
            node.clone(),
            &expected(0),
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let mut table = TableData::new();
        table.set_column(col.as_array_ref());
        ToySolver { table, step: Cell::new(0) }
    }

    /// Advance to `step`: overwrite every cell through a write-intent
    /// host view (the path that faults any unresolved CoW pin).
    fn fill(&self, step: u64) {
        self.step.set(step);
        let cells = downcast::<f64>(self.table.column("x").unwrap()).unwrap().data();
        let view = cells.host_f64().unwrap();
        for (j, v) in expected(step).into_iter().enumerate() {
            view.set(j, v);
        }
    }
}

impl DataAdaptor for ToySolver {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "bodies".into(),
            arrays: self
                .table
                .columns()
                .iter()
                .map(|c| ArrayMetadata {
                    name: c.name().to_string(),
                    association: FieldAssociation::Point,
                    components: c.num_components(),
                    type_name: c.type_name(),
                    device: c.device(),
                })
                .collect(),
        })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name == "bodies" {
            Ok(DataObject::Table(self.table.clone()))
        } else {
            Err(sensei::Error::NoSuchMesh { name: name.into() })
        }
    }
    fn time(&self) -> f64 {
        self.step.get() as f64 * 0.1
    }
    fn time_step(&self) -> u64 {
        self.step.get()
    }
}

/// The column contents at `step`.
fn expected(step: u64) -> Vec<f64> {
    (0..LEN).map(|j| (step * 100 + j as u64) as f64).collect()
}

/// Read the column back through a frame's pinned snapshot.
fn pinned_values(pin: &StepPin) -> Vec<f64> {
    let table = pin.adaptor().mesh("bodies").unwrap();
    let col = table.as_table().unwrap().column("x").unwrap().clone();
    downcast::<f64>(&col).unwrap().to_vec().unwrap()
}

#[test]
fn hundreds_of_churning_sessions_release_every_pin() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let solver = ToySolver::new(&node);
    let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
    let hub = ServeHub::new(false);
    let config = SessionConfig { queue_depth: 2, overflow: OverflowPolicy::DropOldest };

    let mut handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            // Mix exact-variable and wildcard topics; both match.
            let topic = if i % 2 == 0 { Topic::new("x", "x:y") } else { Topic::new("*", "x:y") };
            hub.subscribe(topic, config)
        })
        .collect();

    // Frames held from the previous step, across the producer's write.
    let mut held: Vec<Frame> = Vec::new();

    for step in 0..STEPS {
        solver.fill(step);

        // The write above landed while the previous step's frames still
        // pin its snapshot: every held view must keep reading the step
        // it was published for, never the overwritten cells.
        if step > 0 {
            let want = expected(step - 1);
            for frame in &held {
                assert_eq!(frame.step(), step - 1);
                let pin = frame.pin.as_ref().expect("frames carry the step's pin");
                assert_eq!(pinned_values(pin), want, "pinned view isolated from late write");
                let (name, values) = &frame.payload.columns[0];
                assert_eq!(name, "x");
                assert_eq!(values, &want, "payload serialized the pinned step");
            }
        }
        // Drop the previous step's frames; the hub still holds its pin
        // until `offer_snapshot` below replaces it.
        held.clear();

        let cow = pipeline.capture(&solver, &DataRequirements::All, &node).unwrap();
        cow.wait_copies();
        // The session pool is the snapshot's sole registered consumer;
        // its one `consumer_finished` is paid by the last pin drop.
        cow.expect_consumers(1);
        let snap = Arc::new(cow);
        hub.offer_snapshot(&snap);

        // Churn: a batch of sessions detaches, a fresh batch attaches.
        if step > 0 {
            handles.drain(..CHURN);
            handles.extend((0..CHURN).map(|_| hub.subscribe(Topic::new("*", "x:y"), config)));
        }

        let payload = StepPayload::from_data(snap.as_ref(), "bodies").unwrap();
        let stats = hub.publish("x:y", payload);
        assert_eq!(stats.delivered, handles.len() as u64, "every session matched at step {step}");
        assert_eq!(stats.dropped, 0, "queues drained every step");
        assert_eq!(stats.payload_bytes, 1 + (LEN as u64) * 8, "one serialization per step");

        for h in &mut handles {
            held.push(h.try_recv().expect("one frame per session per step"));
        }
    }

    // Captures shared, never copied eagerly.
    let c = pipeline.counters().snapshot();
    assert_eq!(c.arrays_copied, 0, "cow captures copy nothing eagerly");
    assert_eq!(c.arrays_shared, STEPS, "one shared column per step");

    // Teardown in client order: frames, sessions, then the hub's own
    // pin on the final step. After this every StepPin refcount has hit
    // zero, which paid every snapshot's `consumer_finished`.
    held.clear();
    handles.clear();
    hub.shutdown();
    assert_eq!(hub.session_count(), 0);

    // A late writer must not observe any shared view: with all pins
    // released, the overwrite faults no copy.
    let faults_before = pipeline.counters().snapshot().cow_faults;
    solver.fill(STEPS + 1000);
    let faults_after = pipeline.counters().snapshot().cow_faults;
    assert_eq!(faults_after, faults_before, "late write hit a still-pinned snapshot");

    let s = hub.counter_snapshot();
    assert_eq!(s.subscribed, (SESSIONS + CHURN * (STEPS as usize - 1)) as u64);
    assert_eq!(s.unsubscribed, s.subscribed, "every attach was matched by a detach");
    assert_eq!(s.delivered, (SESSIONS as u64) * STEPS);
    assert_eq!(s.dropped, 0);
}
