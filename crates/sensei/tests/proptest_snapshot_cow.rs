//! Property test pinning copy-on-write snapshots to the deep-copy
//! reference under arbitrary interleavings of solver writes and
//! captures.
//!
//! At every capture point the test takes both a CoW capture (through a
//! [`SnapshotPipeline`]) and an eager deep copy
//! ([`SnapshotAdaptor::capture`]) of the same state. However the solver
//! then overwrites its arrays — including writes landing while several
//! snapshots hold pins on the same allocation — each live CoW snapshot
//! must keep reading exactly what its deep-copy twin holds.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use proptest::prelude::*;
use sensei::{
    ArrayMetadata, DataAdaptor, DataRequirements, MeshMetadata, Result, SnapshotAdaptor,
    SnapshotMode, SnapshotPipeline,
};
use svtk::{
    downcast, Allocator, ArrayRef, DataObject, FieldAssociation, HamrDataArray, HamrStream,
    StreamMode, TableData,
};

const COLUMNS: [&str; 3] = ["a", "b", "c"];
const LEN: usize = 8;

/// A solver stand-in publishing three host-resident columns.
struct ToySolver {
    table: TableData,
}

impl ToySolver {
    fn new(node: &Arc<SimNode>) -> Self {
        let mut table = TableData::new();
        for (i, name) in COLUMNS.iter().enumerate() {
            let init: Vec<f64> = (0..LEN).map(|j| (i * LEN + j) as f64).collect();
            let col = HamrDataArray::<f64>::from_slice(
                *name,
                node.clone(),
                &init,
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(col.as_array_ref());
        }
        ToySolver { table }
    }

    /// Overwrite one element of one column through a write-intent host
    /// view — the path that bumps the allocation's write generation and
    /// faults any unresolved CoW pins.
    fn write(&self, col: usize, elem: usize, value: f64) {
        let name = COLUMNS[col % COLUMNS.len()];
        let cells = downcast::<f64>(self.table.column(name).unwrap()).unwrap().data();
        cells.host_f64().unwrap().set(elem % LEN, value);
    }
}

impl DataAdaptor for ToySolver {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "bodies".into(),
            arrays: self
                .table
                .columns()
                .iter()
                .map(|c| ArrayMetadata {
                    name: c.name().to_string(),
                    association: FieldAssociation::Point,
                    components: c.num_components(),
                    type_name: c.type_name(),
                    device: c.device(),
                })
                .collect(),
        })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name == "bodies" {
            Ok(DataObject::Table(self.table.clone()))
        } else {
            Err(sensei::Error::NoSuchMesh { name: name.into() })
        }
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn time_step(&self) -> u64 {
        0
    }
}

fn column(snap: &SnapshotAdaptor, name: &str) -> ArrayRef {
    snap.mesh("bodies").unwrap().as_table().unwrap().column(name).unwrap().clone()
}

fn values(arr: &ArrayRef) -> Vec<f64> {
    downcast::<f64>(arr).unwrap().to_vec().unwrap()
}

/// Assert every column of the CoW capture reads bit-identical to its
/// deep-copied twin.
fn assert_matches_reference(cow: &SnapshotAdaptor, reference: &SnapshotAdaptor) {
    for name in COLUMNS {
        let got = values(&column(cow, name));
        let want = values(&column(reference, name));
        assert_eq!(got, want, "cow snapshot diverged from deep reference on column '{name}'");
    }
}

/// One step of the interleaving. Encoded from `(kind, col, elem, val)`
/// tuples the strategy draws.
enum Op {
    /// Solver overwrites `col[elem] = val` — faults pinned snapshots.
    Write { col: usize, elem: usize, val: f64 },
    /// Take a CoW capture plus its deep-copy reference.
    Capture,
    /// Drop the oldest live snapshot pair (releases its pins via Drop).
    DropOldest,
    /// Verify the oldest pair, then release its shares and retire it —
    /// the consumer-done path, after which writes skip the fault copy.
    FinishOldest,
}

fn decode(kind: u8, col: usize, elem: usize, val: i32) -> Op {
    match kind % 4 {
        0 | 1 => Op::Write { col, elem, val: val as f64 },
        2 => Op::Capture,
        3 if kind & 1 == 0 => Op::DropOldest,
        _ => Op::FinishOldest,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the solver writes while snapshots are pinned, every live
    /// CoW capture reads exactly the deep copy taken at the same point.
    #[test]
    fn cow_snapshots_match_deep_reference_under_any_interleaving(
        ops in proptest::collection::vec(
            (any::<u8>(), 0usize..COLUMNS.len(), 0usize..LEN, -1000i32..1000),
            1..48,
        ),
    ) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let solver = ToySolver::new(&node);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        // Live (cow, deep-reference) pairs, oldest first.
        let mut live: Vec<(SnapshotAdaptor, SnapshotAdaptor)> = Vec::new();

        for (kind, col, elem, val) in ops {
            match decode(kind, col, elem, val) {
                Op::Write { col, elem, val } => solver.write(col, elem, val),
                Op::Capture => {
                    let cow = pipeline
                        .capture(&solver, &DataRequirements::All, &node)
                        .unwrap();
                    cow.wait_copies();
                    let reference = SnapshotAdaptor::capture(&solver).unwrap();
                    live.push((cow, reference));
                }
                Op::DropOldest => {
                    if !live.is_empty() {
                        live.remove(0);
                    }
                }
                Op::FinishOldest => {
                    if !live.is_empty() {
                        let (cow, reference) = live.remove(0);
                        assert_matches_reference(&cow, &reference);
                        cow.release_shared();
                        // Released shares alias the live buffer again, so
                        // the pair is retired rather than re-checked.
                    }
                }
            }
            // The invariant holds after *every* op, not just at the end.
            for (cow, reference) in &live {
                assert_matches_reference(cow, reference);
            }
        }
        for (cow, reference) in &live {
            assert_matches_reference(cow, reference);
        }

        // Bookkeeping sanity: every capture shared all three columns and
        // copied nothing eagerly.
        let c = pipeline.counters().snapshot();
        prop_assert_eq!(c.arrays_copied, 0);
        prop_assert_eq!(c.arrays_shared % COLUMNS.len() as u64, 0);
    }
}
