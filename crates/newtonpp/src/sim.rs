//! The distributed, device-offloaded simulation.
//!
//! Each MPI rank owns the bodies inside its slab of the volume and keeps
//! their state resident on its assigned device (the offload model of the
//! original OpenMP-target Newton++). One step is kick-drift-kick with a
//! single force evaluation:
//!
//! 1. half kick with the cached accelerations,
//! 2. drift,
//! 3. exchange: positions/masses of *all* bodies are allgathered (direct
//!    n-body needs every source) and uploaded to the device,
//! 4. force kernel: `n_local × n_global` softened interactions,
//! 5. half kick with the fresh accelerations (cached for the next step).
//!
//! Optionally, every `repartition_every` steps bodies that drifted out of
//! their slab migrate to the owning rank (disabled in the paper's runs,
//! and by default here).

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::{CellBuffer, KernelCost, SimNode, Stream};
use minimpi::Comm;
use sensei::{Error, Result};

use crate::body::BodySet;
use crate::domain::Domain;
use crate::forces::Gravity;
use crate::ic::{self, DiskIc, UniformIc};
use crate::repartition::repartition;

/// Which initial condition to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IcKind {
    /// Uniform random positions/masses/velocities with a massive central
    /// body (the paper's evaluation IC).
    Uniform(UniformIc),
    /// Exponential disk galaxy (the MAGI stand-in).
    Disk(DiskIc),
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonConfig {
    /// Initial condition.
    pub ic: IcKind,
    /// Time step.
    pub dt: f64,
    /// Gravity parameters.
    pub grav: Gravity,
    /// Extent of the decomposed axis (slab decomposition along x).
    pub x_extent: (f64, f64),
    /// Migrate bodies every this many steps (`None` = disabled, as in the
    /// paper's runs).
    pub repartition_every: Option<u64>,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        NewtonConfig {
            ic: IcKind::Uniform(UniformIc::default()),
            dt: 1e-3,
            grav: Gravity::default(),
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        }
    }
}

/// Device-resident per-rank body state.
struct DeviceState {
    x: CellBuffer,
    y: CellBuffer,
    z: CellBuffer,
    vx: CellBuffer,
    vy: CellBuffer,
    vz: CellBuffer,
    m: CellBuffer,
    ax: CellBuffer,
    ay: CellBuffer,
    az: CellBuffer,
    /// Derived per-body quantities (momenta, kinetic energy, speed),
    /// refreshed by [`Newton::update_derived`] at the end of every step so
    /// the SENSEI adaptor can publish them zero-copy.
    px: CellBuffer,
    py: CellBuffer,
    pz: CellBuffer,
    ke: CellBuffer,
    speed: CellBuffer,
}

/// The Newton++ simulation on one rank.
pub struct Newton {
    node: Arc<SimNode>,
    device: usize,
    stream: Arc<Stream>,
    cfg: NewtonConfig,
    domain: Domain,
    state: DeviceState,
    n_local: usize,
    n_global: usize,
    needs_force_refresh: bool,
    step: u64,
    time: f64,
}

impl Newton {
    /// Initialize the simulation: generate the IC (identically on every
    /// rank from the shared seed), keep this rank's slab, and upload it
    /// to `device`. Collective.
    pub fn new(
        node: Arc<SimNode>,
        comm: &Comm,
        device: usize,
        cfg: NewtonConfig,
    ) -> Result<Newton> {
        let all = match &cfg.ic {
            IcKind::Uniform(p) => ic::uniform_random(p),
            IcKind::Disk(p) => ic::disk_galaxy(p),
        };
        let domain = Domain::new(cfg.x_extent.0, cfg.x_extent.1, comm.size());
        let mine = domain.select_owned(&all, comm.rank());
        let n_global = all.len();
        let stream = node.device(device)?.create_stream();
        let state = Self::upload(&node, device, &stream, &mine)?;
        let sim = Newton {
            node,
            device,
            stream,
            cfg,
            domain,
            state,
            n_local: mine.len(),
            n_global,
            needs_force_refresh: true,
            step: 0,
            time: 0.0,
        };
        sim.update_derived()?;
        sim.stream.synchronize().map_err(Error::Device)?;
        Ok(sim)
    }

    /// Allocate device buffers for `set` and copy it up.
    fn upload(
        node: &Arc<SimNode>,
        device: usize,
        stream: &Arc<Stream>,
        set: &BodySet,
    ) -> Result<DeviceState> {
        let n = set.len();
        let dev = node.device(device)?;
        let up = |data: &[f64]| -> Result<CellBuffer> {
            let host = node.host_alloc_f64(n);
            host.host_f64().map_err(Error::Device)?.copy_from_slice(data);
            let buf = dev.alloc_f64(n)?;
            stream.copy(&host, &buf).map_err(Error::Device)?;
            Ok(buf)
        };
        let state = DeviceState {
            x: up(&set.x)?,
            y: up(&set.y)?,
            z: up(&set.z)?,
            vx: up(&set.vx)?,
            vy: up(&set.vy)?,
            vz: up(&set.vz)?,
            m: up(&set.m)?,
            ax: dev.alloc_f64(n)?,
            ay: dev.alloc_f64(n)?,
            az: dev.alloc_f64(n)?,
            px: dev.alloc_f64(n)?,
            py: dev.alloc_f64(n)?,
            pz: dev.alloc_f64(n)?,
            ke: dev.alloc_f64(n)?,
            speed: dev.alloc_f64(n)?,
        };
        stream.synchronize().map_err(Error::Device)?;
        Ok(state)
    }

    /// Copy the local body state back to the host.
    pub fn download(&self) -> Result<BodySet> {
        let down = |buf: &CellBuffer| -> Result<Vec<f64>> {
            let host = self.node.host_alloc_f64(buf.len());
            self.stream.copy(buf, &host).map_err(Error::Device)?;
            self.stream.synchronize().map_err(Error::Device)?;
            Ok(host.host_f64_ro().map_err(Error::Device)?.to_vec())
        };
        Ok(BodySet {
            x: down(&self.state.x)?,
            y: down(&self.state.y)?,
            z: down(&self.state.z)?,
            vx: down(&self.state.vx)?,
            vy: down(&self.state.vy)?,
            vz: down(&self.state.vz)?,
            m: down(&self.state.m)?,
        })
    }

    /// Half-kick kernel: `v += a * dt/2`.
    fn kick(&self, half_dt: f64) -> Result<()> {
        let n = self.n_local;
        let (vx, vy, vz) = (self.state.vx.clone(), self.state.vy.clone(), self.state.vz.clone());
        let (ax, ay, az) = (self.state.ax.clone(), self.state.ay.clone(), self.state.az.clone());
        self.stream
            .launch(
                "nbody_kick",
                KernelCost { flops: 6.0 * n as f64, bytes: 96.0 * n as f64 },
                move |scope| {
                    let (vx, vy, vz) =
                        (vx.f64_view(scope)?, vy.f64_view(scope)?, vz.f64_view(scope)?);
                    let (ax, ay, az) =
                        (ax.f64_view_ro(scope)?, ay.f64_view_ro(scope)?, az.f64_view_ro(scope)?);
                    for i in 0..vx.len() {
                        vx.set(i, vx.get(i) + ax.get(i) * half_dt);
                        vy.set(i, vy.get(i) + ay.get(i) * half_dt);
                        vz.set(i, vz.get(i) + az.get(i) * half_dt);
                    }
                    Ok(())
                },
            )
            .map_err(Error::Device)
    }

    /// Drift kernel: `x += v * dt`.
    fn drift(&self, dt: f64) -> Result<()> {
        let n = self.n_local;
        let (x, y, z) = (self.state.x.clone(), self.state.y.clone(), self.state.z.clone());
        let (vx, vy, vz) = (self.state.vx.clone(), self.state.vy.clone(), self.state.vz.clone());
        self.stream
            .launch(
                "nbody_drift",
                KernelCost { flops: 6.0 * n as f64, bytes: 96.0 * n as f64 },
                move |scope| {
                    let (x, y, z) = (x.f64_view(scope)?, y.f64_view(scope)?, z.f64_view(scope)?);
                    let (vx, vy, vz) =
                        (vx.f64_view_ro(scope)?, vy.f64_view_ro(scope)?, vz.f64_view_ro(scope)?);
                    for i in 0..x.len() {
                        x.set(i, x.get(i) + vx.get(i) * dt);
                        y.set(i, y.get(i) + vy.get(i) * dt);
                        z.set(i, z.get(i) + vz.get(i) * dt);
                    }
                    Ok(())
                },
            )
            .map_err(Error::Device)
    }

    /// Exchange all bodies' positions/masses and recompute accelerations.
    ///
    /// The exchange is host-side work (download, allgather, upload) and is
    /// charged to the host executor; the O(n_local × n_global) force
    /// evaluation runs as a device kernel.
    fn compute_forces(&mut self, comm: &Comm) -> Result<()> {
        // Download local (x, y, z, m), bundled into one message.
        let n = self.n_local;
        let staging = self.node.host_alloc_f64(n * 4);
        // Pack on device into the staging layout via four ordered copies.
        let pack = self.node.host_alloc_f64(n);
        let mut bundle = vec![0.0f64; 4 * n];
        for (k, buf) in
            [&self.state.x, &self.state.y, &self.state.z, &self.state.m].into_iter().enumerate()
        {
            self.stream.copy(buf, &pack).map_err(Error::Device)?;
            self.stream.synchronize().map_err(Error::Device)?;
            let v = pack.host_f64_ro().map_err(Error::Device)?;
            for i in 0..n {
                bundle[k * n + i] = v.get(i);
            }
        }
        drop(staging);

        // Allgather across ranks; charged as host work (this is the
        // MPI/staging phase of the solver that competes with host-placed
        // in situ processing). The urgent lane keeps the blocking
        // collective from queueing behind asynchronous in situ kernels —
        // a rank stuck behind analysis work would hold every other rank
        // inside the allgather.
        let gathered: Vec<Vec<f64>> = self.node.host().run_urgent(
            "nbody_exchange",
            KernelCost::bytes((self.n_global * 4 * 8) as f64),
            || comm.allgather(bundle),
        );
        let n_global: usize = gathered.iter().map(|g| g.len() / 4).sum();
        self.n_global = n_global;

        // Concatenate per-variable and upload to the device.
        let gx = self.node.host_alloc_f64(n_global);
        let gy = self.node.host_alloc_f64(n_global);
        let gz = self.node.host_alloc_f64(n_global);
        let gm = self.node.host_alloc_f64(n_global);
        {
            let (vx, vy, vz, vm) = (
                gx.host_f64().map_err(Error::Device)?,
                gy.host_f64().map_err(Error::Device)?,
                gz.host_f64().map_err(Error::Device)?,
                gm.host_f64().map_err(Error::Device)?,
            );
            let mut off = 0;
            for part in &gathered {
                let pn = part.len() / 4;
                for i in 0..pn {
                    vx.set(off + i, part[i]);
                    vy.set(off + i, part[pn + i]);
                    vz.set(off + i, part[2 * pn + i]);
                    vm.set(off + i, part[3 * pn + i]);
                }
                off += pn;
            }
        }
        let dev = self.node.device(self.device)?;
        let dgx = dev.alloc_f64(n_global)?;
        let dgy = dev.alloc_f64(n_global)?;
        let dgz = dev.alloc_f64(n_global)?;
        let dgm = dev.alloc_f64(n_global)?;
        for (h, d) in [(&gx, &dgx), (&gy, &dgy), (&gz, &dgz), (&gm, &dgm)] {
            self.stream.copy(h, d).map_err(Error::Device)?;
        }

        // The O(n_local x n_global) force kernel.
        let grav = self.cfg.grav;
        let (x, y, z) = (self.state.x.clone(), self.state.y.clone(), self.state.z.clone());
        let (ax, ay, az) = (self.state.ax.clone(), self.state.ay.clone(), self.state.az.clone());
        let cost = KernelCost {
            flops: 20.0 * n as f64 * n_global as f64,
            bytes: 32.0 * (n + n_global) as f64,
        };
        self.stream
            .launch("nbody_forces", cost, move |scope| {
                let (x, y, z) =
                    (x.f64_view_ro(scope)?, y.f64_view_ro(scope)?, z.f64_view_ro(scope)?);
                let (ax, ay, az) = (ax.f64_view(scope)?, ay.f64_view(scope)?, az.f64_view(scope)?);
                let (sx, sy, sz, sm) = (
                    dgx.f64_view_ro(scope)?,
                    dgy.f64_view_ro(scope)?,
                    dgz.f64_view_ro(scope)?,
                    dgm.f64_view_ro(scope)?,
                );
                for i in 0..x.len() {
                    let (xi, yi, zi) = (x.get(i), y.get(i), z.get(i));
                    let (mut axx, mut ayy, mut azz) = (0.0, 0.0, 0.0);
                    for j in 0..sx.len() {
                        let a = crate::forces::pair_accel(
                            xi,
                            yi,
                            zi,
                            sx.get(j),
                            sy.get(j),
                            sz.get(j),
                            sm.get(j),
                            &grav,
                        );
                        axx += a[0];
                        ayy += a[1];
                        azz += a[2];
                    }
                    ax.set(i, axx);
                    ay.set(i, ayy);
                    az.set(i, azz);
                }
                Ok(())
            })
            .map_err(Error::Device)
    }

    /// Advance one time step. Collective. Returns the solver wall time of
    /// this step (what Figure 3's cyan bars measure).
    pub fn step(&mut self, comm: &Comm) -> Result<Duration> {
        let t0 = Instant::now();
        if self.needs_force_refresh {
            self.compute_forces(comm)?;
            self.needs_force_refresh = false;
        }
        let half = 0.5 * self.cfg.dt;
        self.kick(half)?;
        self.drift(self.cfg.dt)?;
        self.compute_forces(comm)?;
        self.kick(half)?;
        self.update_derived()?;
        self.stream.synchronize().map_err(Error::Device)?;
        self.step += 1;
        self.time += self.cfg.dt;

        if let Some(every) = self.cfg.repartition_every {
            if every > 0 && self.step.is_multiple_of(every) {
                self.repartition(comm)?;
            }
        }
        Ok(t0.elapsed())
    }

    /// Migrate bodies to the ranks owning their current positions.
    /// Collective.
    pub fn repartition(&mut self, comm: &Comm) -> Result<()> {
        let mine = self.download()?;
        let mine = repartition(comm, &self.domain, mine);
        self.state = Self::upload(&self.node, self.device, &self.stream, &mine)?;
        self.n_local = mine.len();
        self.needs_force_refresh = true;
        self.update_derived()?;
        self.stream.synchronize().map_err(Error::Device)?;
        Ok(())
    }

    /// Bodies owned by this rank (local count).
    pub fn num_local(&self) -> usize {
        self.n_local
    }

    /// Total bodies across all ranks (as of the last exchange).
    pub fn num_global(&self) -> usize {
        self.n_global
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The device this rank's simulation runs on.
    pub fn device(&self) -> usize {
        self.device
    }

    /// The node.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }

    /// The simulation's stream.
    pub fn stream(&self) -> &Arc<Stream> {
        &self.stream
    }

    /// The configuration.
    pub fn config(&self) -> &NewtonConfig {
        &self.cfg
    }

    /// The domain decomposition.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// One kernel refreshing the derived per-body quantities
    /// (`px py pz ke speed`) from the current state. Stream-ordered; runs
    /// at the end of every step so in situ consumers see values
    /// consistent with the positions/velocities of the same iteration.
    fn update_derived(&self) -> Result<()> {
        let n = self.n_local;
        let (vx, vy, vz, m) = (
            self.state.vx.clone(),
            self.state.vy.clone(),
            self.state.vz.clone(),
            self.state.m.clone(),
        );
        let (px, py, pz, ke, speed) = (
            self.state.px.clone(),
            self.state.py.clone(),
            self.state.pz.clone(),
            self.state.ke.clone(),
            self.state.speed.clone(),
        );
        self.stream
            .launch(
                "nbody_derived",
                KernelCost { flops: 10.0 * n as f64, bytes: 72.0 * n as f64 },
                move |scope| {
                    let (vx, vy, vz, m) = (
                        vx.f64_view_ro(scope)?,
                        vy.f64_view_ro(scope)?,
                        vz.f64_view_ro(scope)?,
                        m.f64_view_ro(scope)?,
                    );
                    let (px, py, pz, ke, speed) = (
                        px.f64_view(scope)?,
                        py.f64_view(scope)?,
                        pz.f64_view(scope)?,
                        ke.f64_view(scope)?,
                        speed.f64_view(scope)?,
                    );
                    for i in 0..vx.len() {
                        let (vxi, vyi, vzi, mi) = (vx.get(i), vy.get(i), vz.get(i), m.get(i));
                        let v2 = vxi * vxi + vyi * vyi + vzi * vzi;
                        px.set(i, mi * vxi);
                        py.set(i, mi * vyi);
                        pz.set(i, mi * vzi);
                        ke.set(i, 0.5 * mi * v2);
                        speed.set(i, v2.sqrt());
                    }
                    Ok(())
                },
            )
            .map_err(Error::Device)
    }

    /// Zero-copy handles to the derived-quantity buffers, in the order
    /// `px, py, pz, ke, speed`.
    pub fn derived_buffers(&self) -> [(&'static str, CellBuffer); 5] {
        [
            ("px", self.state.px.clone()),
            ("py", self.state.py.clone()),
            ("pz", self.state.pz.clone()),
            ("ke", self.state.ke.clone()),
            ("speed", self.state.speed.clone()),
        ]
    }

    /// Zero-copy handles to the device-resident state, in the order
    /// `x, y, z, vx, vy, vz, m` — what the SENSEI adaptor adopts.
    pub fn state_buffers(&self) -> [(&'static str, CellBuffer); 7] {
        [
            ("x", self.state.x.clone()),
            ("y", self.state.y.clone()),
            ("z", self.state.z.clone()),
            ("vx", self.state.vx.clone()),
            ("vy", self.state.vy.clone()),
            ("vz", self.state.vz.clone()),
            ("mass", self.state.m.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{kinetic_energy, potential_energy};
    use crate::integrator::Leapfrog;
    use devsim::NodeConfig;
    use minimpi::World;

    fn small_cfg(n: usize, seed: u64) -> NewtonConfig {
        NewtonConfig {
            ic: IcKind::Uniform(UniformIc {
                n,
                seed,
                half_width: 1.0,
                mass_range: (0.5, 1.5),
                velocity_scale: 0.2,
                central_mass: 100.0,
            }),
            dt: 1e-3,
            grav: Gravity { g: 1.0, eps: 0.05 },
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        }
    }

    /// Gather the full body set, sorted by mass for stable comparison.
    fn gather_all(comm: &Comm, sim: &Newton) -> BodySet {
        let mine = sim.download().unwrap();
        let parts = comm.allgather((mine.x, mine.y, mine.z, mine.vx, mine.vy, mine.vz, mine.m));
        let mut all = BodySet::new();
        for (x, y, z, vx, vy, vz, m) in parts {
            all.extend(&BodySet { x, y, z, vx, vy, vz, m });
        }
        all
    }

    #[test]
    fn distributed_run_matches_host_reference() {
        // 2-rank device simulation vs the single-threaded host leapfrog.
        let cfg = small_cfg(24, 3);
        let reference = {
            let mut bodies = match &cfg.ic {
                IcKind::Uniform(p) => ic::uniform_random(p),
                _ => unreachable!(),
            };
            let mut lf = Leapfrog::new(cfg.dt, cfg.grav);
            for _ in 0..5 {
                lf.step(&mut bodies);
            }
            bodies
        };
        let got = World::new(2).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let mut sim = Newton::new(node, &comm, comm.rank() % 2, cfg).unwrap();
            for _ in 0..5 {
                sim.step(&comm).unwrap();
            }
            gather_all(&comm, &sim)
        });
        for all in got {
            assert_eq!(all.len(), reference.len());
            // Compare as mass-sorted sets (rank ordering differs).
            let mut got_sorted: Vec<(f64, f64, f64)> =
                (0..all.len()).map(|i| (all.m[i], all.x[i], all.vy[i])).collect();
            let mut ref_sorted: Vec<(f64, f64, f64)> = (0..reference.len())
                .map(|i| (reference.m[i], reference.x[i], reference.vy[i]))
                .collect();
            got_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ref_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for ((gm, gx, gvy), (rm, rx, rvy)) in got_sorted.iter().zip(&ref_sorted) {
                assert!((gm - rm).abs() < 1e-12, "masses align");
                assert!((gx - rx).abs() < 1e-9, "positions match: {gx} vs {rx}");
                assert!((gvy - rvy).abs() < 1e-9, "velocities match");
            }
        }
    }

    #[test]
    fn energy_is_conserved_in_the_distributed_run() {
        // A gentler configuration than the default: close encounters with
        // a heavy central body need dt << eps/v to stay well resolved.
        let mut cfg = small_cfg(16, 11);
        cfg.grav = Gravity { g: 1.0, eps: 0.2 };
        cfg.dt = 5e-4;
        if let IcKind::Uniform(p) = &mut cfg.ic {
            p.central_mass = 10.0;
        }
        let drifts = World::new(2).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let mut sim = Newton::new(node, &comm, comm.rank(), cfg).unwrap();
            let all0 = gather_all(&comm, &sim);
            let e0 = kinetic_energy(&all0) + potential_energy(&all0, &cfg.grav);
            for _ in 0..50 {
                sim.step(&comm).unwrap();
            }
            let all1 = gather_all(&comm, &sim);
            let e1 = kinetic_energy(&all1) + potential_energy(&all1, &cfg.grav);
            ((e1 - e0) / e0.abs()).abs()
        });
        for d in drifts {
            assert!(d < 1e-3, "relative energy drift {d}");
        }
    }

    #[test]
    fn repartitioning_preserves_the_body_count_and_physics() {
        let mut cfg = small_cfg(20, 5);
        cfg.repartition_every = Some(2);
        let got = World::new(3).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(3));
            let mut sim = Newton::new(node, &comm, comm.rank(), cfg).unwrap();
            for _ in 0..6 {
                sim.step(&comm).unwrap();
            }
            let local = sim.download().unwrap();
            // After a repartition step, every local body is in our slab.
            let owned = local.x.iter().all(|&x| sim.domain().owner_of(x) == comm.rank());
            let total = comm.allreduce(local.len(), |a, b| a + b);
            (owned, total)
        });
        for (owned, total) in got {
            assert!(owned);
            assert_eq!(total, 20);
        }
    }

    #[test]
    fn step_advances_time_and_counters() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let cfg = small_cfg(8, 1);
            let mut sim = Newton::new(node, &comm, 0, cfg).unwrap();
            assert_eq!(sim.step_count(), 0);
            assert_eq!(sim.num_global(), 8);
            sim.step(&comm).unwrap();
            sim.step(&comm).unwrap();
            assert_eq!(sim.step_count(), 2);
            assert!((sim.time() - 2e-3).abs() < 1e-15);
            assert_eq!(sim.num_local(), 8);
        });
    }

    #[test]
    fn state_buffers_are_zero_copy_views_of_the_simulation() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let mut sim = Newton::new(node.clone(), &comm, 0, small_cfg(8, 2)).unwrap();
            let before = sim.download().unwrap();
            let bufs = sim.state_buffers();
            assert_eq!(bufs[0].0, "x");
            // The handle aliases live state: after a step it sees new data.
            sim.step(&comm).unwrap();
            let after = sim.download().unwrap();
            let x_view = {
                let host = node.host_alloc_f64(bufs[0].1.len());
                sim.stream().copy(&bufs[0].1, &host).unwrap();
                sim.stream().synchronize().unwrap();
                host.host_f64_ro().unwrap().to_vec()
            };
            assert_eq!(x_view, after.x);
            assert_ne!(before.x, after.x, "bodies moved");
        });
    }
}
