//! The SENSEI data adaptor: Newton++'s state as data-model objects.

use hamr::{Allocator, HamrStream, StreamMode};
use sensei::{ArrayMetadata, DataAdaptor, Error, MeshMetadata, Result};
use svtk::{DataObject, FieldAssociation, HamrDataArray, TableData};

use crate::sim::Newton;

/// Publishes the simulation's bodies as the `bodies` table.
///
/// The seven state columns (`x y z vx vy vz mass`) are **zero-copy**
/// adoptions of the simulation's device-resident buffers — the preferred
/// transfer of §2 ("the simulation should always prefer a zero-copy
/// transfer"); Newton++ is an OpenMP-offload code, so the columns carry
/// the OpenMP allocator and the simulation's stream, and a CUDA analysis
/// accessing them on the same device exercises the PM-interoperability
/// path. Derived columns (momenta, kinetic energy, speed) are refreshed
/// by the solver at the end of every step and adopted zero-copy as well
/// — together the table publishes the 10+ variables the paper's
/// 90-operation binning workload consumes.
pub struct NewtonAdaptor<'a> {
    sim: &'a Newton,
}

impl<'a> NewtonAdaptor<'a> {
    /// Wrap the simulation.
    pub fn new(sim: &'a Newton) -> Self {
        NewtonAdaptor { sim }
    }

    /// The variables the adaptor publishes.
    pub const VARIABLES: [&'static str; 12] =
        ["x", "y", "z", "vx", "vy", "vz", "mass", "px", "py", "pz", "ke", "speed"];

    fn build_table(&self) -> Result<TableData> {
        let node = self.sim.node().clone();
        // Asynchronous stream mode: accesses enqueue any movement on the
        // simulation's stream and return; consumers synchronize explicitly
        // (the Listing 3/4 pattern). This lets an analysis batch many
        // column moves behind one synchronization point.
        let stream = HamrStream::new(self.sim.stream().clone());
        let mut table = TableData::new();
        // Zero-copy adoption of the simulation's own buffers (Listing 1).
        for (name, cells) in self.sim.state_buffers() {
            let arr = HamrDataArray::<f64>::adopt(
                name,
                node.clone(),
                cells,
                1,
                Allocator::OpenMp,
                stream.clone(),
                StreamMode::Async,
            )?;
            table.set_column(arr.as_array_ref());
        }
        // Derived variables, refreshed by the solver each step.
        for (name, cells) in self.sim.derived_buffers() {
            let arr = HamrDataArray::<f64>::adopt(
                name,
                node.clone(),
                cells,
                1,
                Allocator::OpenMp,
                stream.clone(),
                StreamMode::Async,
            )?;
            table.set_column(arr.as_array_ref());
        }
        Ok(table)
    }
}

impl DataAdaptor for NewtonAdaptor<'_> {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "bodies".into(),
            arrays: Self::VARIABLES
                .iter()
                .map(|&name| ArrayMetadata {
                    name: name.to_string(),
                    association: FieldAssociation::Point,
                    components: 1,
                    type_name: "double",
                    device: Some(self.sim.device()),
                })
                .collect(),
        })
    }

    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name != "bodies" {
            return Err(Error::NoSuchMesh { name: name.to_string() });
        }
        Ok(DataObject::Table(self.build_table()?))
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn time_step(&self) -> u64 {
        self.sim.step_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::Gravity;
    use crate::ic::UniformIc;
    use crate::sim::{IcKind, NewtonConfig};
    use devsim::{NodeConfig, SimNode};
    use minimpi::World;
    use svtk::DataArray;

    fn cfg() -> NewtonConfig {
        NewtonConfig {
            ic: IcKind::Uniform(UniformIc { n: 10, seed: 9, ..Default::default() }),
            dt: 1e-3,
            grav: Gravity::default(),
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        }
    }

    #[test]
    fn publishes_the_bodies_table_with_all_variables() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let sim = Newton::new(node, &comm, 0, cfg()).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            assert_eq!(adaptor.num_meshes(), 1);
            let md = adaptor.mesh_metadata(0).unwrap();
            assert_eq!(md.name, "bodies");
            assert_eq!(md.arrays.len(), 12);
            let mesh = adaptor.mesh("bodies").unwrap();
            let t = mesh.as_table().unwrap();
            assert_eq!(t.num_columns(), 12);
            assert_eq!(t.num_rows(), sim.num_local());
            assert!(adaptor.mesh("junk").is_err());
        });
    }

    #[test]
    fn state_columns_are_zero_copy() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let sim = Newton::new(node, &comm, 0, cfg()).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            let mesh = adaptor.mesh("bodies").unwrap();
            let t = mesh.as_table().unwrap();
            let x = svtk::downcast::<f64>(t.column("x").unwrap()).unwrap();
            assert!(x.data().same_allocation(&sim.state_buffers()[0].1));
            assert_eq!(x.pm(), hamr::Pm::OpenMp);
            assert_eq!(x.device(), Some(0));
        });
    }

    #[test]
    fn derived_columns_are_consistent_with_state() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let sim = Newton::new(node, &comm, 0, cfg()).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            let mesh = adaptor.mesh("bodies").unwrap();
            let t = mesh.as_table().unwrap();
            let get = |name: &str| {
                svtk::downcast::<f64>(t.column(name).unwrap()).unwrap().to_vec().unwrap()
            };
            let (m, vx, vy, vz) = (get("mass"), get("vx"), get("vy"), get("vz"));
            let (px, ke, speed) = (get("px"), get("ke"), get("speed"));
            for i in 0..m.len() {
                assert!((px[i] - m[i] * vx[i]).abs() < 1e-14);
                let v2 = vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
                assert!((ke[i] - 0.5 * m[i] * v2).abs() < 1e-14);
                assert!((speed[i] - v2.sqrt()).abs() < 1e-14);
            }
        });
    }

    #[test]
    fn time_and_step_track_the_simulation() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let mut sim = Newton::new(node, &comm, 0, cfg()).unwrap();
            sim.step(&comm).unwrap();
            sim.step(&comm).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            assert_eq!(adaptor.time_step(), 2);
            assert!((adaptor.time() - 2e-3).abs() < 1e-15);
        });
    }
}
