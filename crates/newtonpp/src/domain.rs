//! Spatial domain decomposition: each MPI rank owns a slab of the volume.

use crate::body::BodySet;

/// A 1-D slab decomposition of the simulated volume along x.
///
/// "Each MPI rank owns a unique spatial subdomain of the simulated
/// volume" (§4.1). Slabs along one axis keep ownership arithmetic O(1)
/// while exercising the same migration machinery a full octree
/// decomposition would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Lower bound of the decomposed axis.
    pub lo: f64,
    /// Upper bound of the decomposed axis.
    pub hi: f64,
    /// Number of slabs (= MPI ranks).
    pub slabs: usize,
}

impl Domain {
    /// Construct; panics on degenerate input.
    pub fn new(lo: f64, hi: f64, slabs: usize) -> Self {
        assert!(hi > lo, "domain range is degenerate");
        assert!(slabs > 0, "need at least one slab");
        Domain { lo, hi, slabs }
    }

    /// The rank owning position `x`. Positions outside the domain clamp
    /// to the boundary slabs (bodies that escape the volume stay owned
    /// by the edge ranks).
    pub fn owner_of(&self, x: f64) -> usize {
        if !x.is_finite() {
            return 0;
        }
        let t = (x - self.lo) / (self.hi - self.lo) * self.slabs as f64;
        (t.floor().max(0.0) as usize).min(self.slabs - 1)
    }

    /// The slab bounds `[lo, hi)` of `rank`.
    pub fn slab(&self, rank: usize) -> (f64, f64) {
        assert!(rank < self.slabs);
        let w = (self.hi - self.lo) / self.slabs as f64;
        (self.lo + w * rank as f64, self.lo + w * (rank + 1) as f64)
    }

    /// Filter `all` down to the bodies `rank` owns.
    pub fn select_owned(&self, all: &BodySet, rank: usize) -> BodySet {
        let mut mine = BodySet::new();
        for i in 0..all.len() {
            if self.owner_of(all.x[i]) == rank {
                mine.push(
                    [all.x[i], all.y[i], all.z[i]],
                    [all.vx[i], all.vy[i], all.vz[i]],
                    all.m[i],
                );
            }
        }
        mine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_partitions_the_axis() {
        let d = Domain::new(-2.0, 2.0, 4);
        assert_eq!(d.owner_of(-1.9), 0);
        assert_eq!(d.owner_of(-0.5), 1);
        assert_eq!(d.owner_of(0.5), 2);
        assert_eq!(d.owner_of(1.9), 3);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let d = Domain::new(0.0, 1.0, 3);
        assert_eq!(d.owner_of(-5.0), 0);
        assert_eq!(d.owner_of(5.0), 2);
        assert_eq!(d.owner_of(1.0), 2, "upper boundary belongs to the last slab");
        assert_eq!(d.owner_of(f64::NAN), 0);
    }

    #[test]
    fn slabs_tile_the_domain() {
        let d = Domain::new(-1.0, 1.0, 4);
        let mut cursor = -1.0;
        for r in 0..4 {
            let (lo, hi) = d.slab(r);
            assert!((lo - cursor).abs() < 1e-12);
            cursor = hi;
        }
        assert!((cursor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_owned_covers_every_body_exactly_once() {
        let d = Domain::new(-1.0, 1.0, 3);
        let mut all = BodySet::new();
        for i in 0..30 {
            all.push([-0.99 + 0.066 * i as f64, 0.0, 0.0], [0.0; 3], 1.0);
        }
        let total: usize = (0..3).map(|r| d.select_owned(&all, r).len()).sum();
        assert_eq!(total, 30);
        for r in 0..3 {
            let mine = d.select_owned(&all, r);
            let (lo, hi) = d.slab(r);
            for &x in &mine.x {
                assert!(x >= lo - 1e-12 && x < hi + 1e-12);
            }
        }
    }
}
