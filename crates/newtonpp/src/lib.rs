//! # newtonpp — the Newton++ n-body simulation
//!
//! A Rust reimplementation of the simulation code used in the paper's
//! evaluation (§4.1): "an open source direct n-body simulation with a
//! second order, time reversible, symplectic integration scheme ...
//! parallelized with MPI and OpenMP device offload. Each MPI rank owns a
//! unique spatial subdomain of the simulated volume and is responsible
//! for integrating bodies within its subdomain. As bodies evolve in
//! time, a repartitioning phase migrates bodies that have moved outside
//! of a given subdomain to the correct MPI rank."
//!
//! Structure:
//!
//! * [`BodySet`] — host-side body storage (struct of arrays);
//! * [`ic`] — initial conditions: the paper's uniform-random
//!   distribution with a massive central body, plus a disk-galaxy
//!   generator standing in for MAGI;
//! * [`Domain`] — slab decomposition and body ownership;
//! * [`repartition`] — cross-rank body migration (`alltoallv`);
//! * [`forces`], [`integrator`] — softened gravity and the
//!   kick-drift-kick leapfrog (2nd-order symplectic, time reversible);
//! * [`Newton`] — the device-offloaded distributed simulation;
//! * [`NewtonAdaptor`] — the SENSEI data adaptor publishing the bodies
//!   as a table of heterogeneous arrays, zero-copy.

pub mod energy;
pub mod forces;
pub mod ic;
pub mod integrator;
pub mod io;
pub mod repartition;

mod adaptor;
mod body;
mod domain;
mod sim;

pub use adaptor::NewtonAdaptor;
pub use body::BodySet;
pub use domain::Domain;
pub use sim::{IcKind, Newton, NewtonConfig};
