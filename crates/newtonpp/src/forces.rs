//! Softened Newtonian gravity: the direct (all-pairs) force evaluation.
//!
//! The host implementation is the physics reference used by tests; the
//! device kernel in [`crate::Newton`] computes the same expression on the
//! simulated accelerator.

use crate::body::BodySet;

/// Gravity parameters shared by the host and device force paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gravity {
    /// Gravitational constant.
    pub g: f64,
    /// Plummer softening length (avoids the 1/r² singularity).
    pub eps: f64,
}

impl Default for Gravity {
    fn default() -> Self {
        Gravity { g: 1.0, eps: 1e-3 }
    }
}

/// Acceleration on a body at `(xi, yi, zi)` due to one source body.
/// Self-interaction (identical positions) contributes nothing through
/// the softening as long as `eps > 0`; exact coincidence with `eps = 0`
/// is guarded to return zero.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the flat kernel signature; packing into arrays costs in the hot loop
pub fn pair_accel(
    xi: f64,
    yi: f64,
    zi: f64,
    xj: f64,
    yj: f64,
    zj: f64,
    mj: f64,
    grav: &Gravity,
) -> [f64; 3] {
    let dx = xj - xi;
    let dy = yj - yi;
    let dz = zj - zi;
    let r2 = dx * dx + dy * dy + dz * dz + grav.eps * grav.eps;
    if r2 == 0.0 {
        return [0.0; 3];
    }
    let inv_r = 1.0 / r2.sqrt();
    let f = grav.g * mj * inv_r * inv_r * inv_r;
    [f * dx, f * dy, f * dz]
}

/// Accelerations of `targets` due to every body in `sources` (host
/// reference implementation). A target that coincides with a source with
/// identical position contributes zero when softened — excluding true
/// self-interaction of shared bodies is therefore automatic.
pub fn accelerations_host(targets: &BodySet, sources: &BodySet, grav: &Gravity) -> Vec<[f64; 3]> {
    let mut acc = vec![[0.0; 3]; targets.len()];
    for (i, out) in acc.iter_mut().enumerate() {
        let (xi, yi, zi) = (targets.x[i], targets.y[i], targets.z[i]);
        let mut a = [0.0; 3];
        for j in 0..sources.len() {
            let da = pair_accel(
                xi,
                yi,
                zi,
                sources.x[j],
                sources.y[j],
                sources.z[j],
                sources.m[j],
                grav,
            );
            a[0] += da[0];
            a[1] += da[1];
            a[2] += da[2];
        }
        *out = a;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bodies_attract_along_the_separation() {
        let grav = Gravity { g: 1.0, eps: 0.0 };
        let a = pair_accel(0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 8.0, &grav);
        // |a| = G m / r^2 = 8/4 = 2, pointing +x.
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert_eq!(a[1], 0.0);
        assert_eq!(a[2], 0.0);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let soft = Gravity { g: 1.0, eps: 0.1 };
        let near = pair_accel(0.0, 0.0, 0.0, 1e-8, 0.0, 0.0, 1.0, &soft);
        // With eps = 0.1 the acceleration is bounded by ~ G m d / eps^3.
        assert!(near[0].abs() < 1e-8 / (0.1f64.powi(3)) + 1e-6);
        assert!(near[0].is_finite());
    }

    #[test]
    fn coincident_bodies_with_zero_eps_do_not_nan() {
        let grav = Gravity { g: 1.0, eps: 0.0 };
        let a = pair_accel(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, &grav);
        assert_eq!(a, [0.0; 3]);
    }

    #[test]
    fn forces_are_antisymmetric() {
        let grav = Gravity { g: 1.0, eps: 0.01 };
        let mut bodies = BodySet::new();
        bodies.push([0.0, 0.0, 0.0], [0.0; 3], 3.0);
        bodies.push([1.0, 2.0, -1.0], [0.0; 3], 5.0);
        let acc = accelerations_host(&bodies, &bodies, &grav);
        // m0*a0 + m1*a1 = 0 (Newton's third law over the pair).
        for (k, (a0, a1)) in acc[0].iter().zip(&acc[1]).enumerate() {
            let net = 3.0 * a0 + 5.0 * a1;
            assert!(net.abs() < 1e-12, "component {k}: {net}");
        }
    }

    #[test]
    fn superposition_over_sources() {
        let grav = Gravity::default();
        let mut t = BodySet::new();
        t.push([0.0; 3], [0.0; 3], 1.0);
        let mut s1 = BodySet::new();
        s1.push([1.0, 0.0, 0.0], [0.0; 3], 2.0);
        let mut s2 = BodySet::new();
        s2.push([0.0, 1.0, 0.0], [0.0; 3], 4.0);
        let mut both = s1.clone();
        both.extend(&s2);
        let a1 = accelerations_host(&t, &s1, &grav)[0];
        let a2 = accelerations_host(&t, &s2, &grav)[0];
        let ab = accelerations_host(&t, &both, &grav)[0];
        for k in 0..3 {
            assert!((ab[k] - (a1[k] + a2[k])).abs() < 1e-12);
        }
    }
}
