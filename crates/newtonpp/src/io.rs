//! VTK-compatible output for *post hoc* visualization (§4.1: Newton++
//! "has a VTK compatible output format for post processing and
//! visualization"). Legacy ASCII polydata: points + per-point scalars
//! and vectors — loadable by ParaView/VisIt.

use std::io::{self, Write};

use crate::body::BodySet;

/// Write `bodies` as VTK legacy polydata with `mass` scalars and
/// `velocity` vectors.
pub fn write_vtk<W: Write>(w: &mut W, title: &str, bodies: &BodySet) -> io::Result<()> {
    let n = bodies.len();
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{title}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {n} double")?;
    for i in 0..n {
        writeln!(w, "{} {} {}", bodies.x[i], bodies.y[i], bodies.z[i])?;
    }
    writeln!(w, "VERTICES {n} {}", 2 * n)?;
    for i in 0..n {
        writeln!(w, "1 {i}")?;
    }
    writeln!(w, "POINT_DATA {n}")?;
    writeln!(w, "SCALARS mass double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for i in 0..n {
        writeln!(w, "{}", bodies.m[i])?;
    }
    writeln!(w, "VECTORS velocity double")?;
    for i in 0..n {
        writeln!(w, "{} {} {}", bodies.vx[i], bodies.vy[i], bodies.vz[i])?;
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn write_vtk_file(path: &std::path::Path, title: &str, bodies: &BodySet) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_vtk(&mut f, title, bodies)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BodySet {
        let mut b = BodySet::new();
        b.push([1.0, 2.0, 3.0], [0.1, 0.2, 0.3], 5.0);
        b.push([-1.0, 0.0, 0.5], [0.0, -0.1, 0.0], 2.5);
        b
    }

    #[test]
    fn produces_well_formed_legacy_vtk() {
        let mut out = Vec::new();
        write_vtk(&mut out, "test bodies", &sample()).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0\ntest bodies\nASCII\n"));
        assert!(text.contains("POINTS 2 double"));
        assert!(text.contains("1 2 3"));
        assert!(text.contains("VERTICES 2 4"));
        assert!(text.contains("POINT_DATA 2"));
        assert!(text.contains("SCALARS mass double 1"));
        assert!(text.contains("VECTORS velocity double"));
        assert!(text.contains("0.1 0.2 0.3"));
    }

    #[test]
    fn counts_match_body_count() {
        let mut out = Vec::new();
        write_vtk(&mut out, "t", &sample()).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Two coordinate lines between POINTS and VERTICES.
        let pts: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("POINTS"))
            .skip(1)
            .take_while(|l| !l.starts_with("VERTICES"))
            .collect();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("newtonpp_io_{}.vtk", std::process::id()));
        write_vtk_file(&path, "file test", &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("POINTS 2 double"));
        std::fs::remove_file(&path).unwrap();
    }
}
