//! Host-side body storage (struct of arrays).

/// A set of bodies in struct-of-arrays layout, the host-side currency of
/// initial-condition generation, repartitioning, and diagnostics. The
/// device-resident state lives in [`crate::Newton`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BodySet {
    /// Positions.
    pub x: Vec<f64>,
    /// Positions.
    pub y: Vec<f64>,
    /// Positions.
    pub z: Vec<f64>,
    /// Velocities.
    pub vx: Vec<f64>,
    /// Velocities.
    pub vy: Vec<f64>,
    /// Velocities.
    pub vz: Vec<f64>,
    /// Masses.
    pub m: Vec<f64>,
}

impl BodySet {
    /// An empty set.
    pub fn new() -> Self {
        BodySet::default()
    }

    /// Pre-allocate for `n` bodies.
    pub fn with_capacity(n: usize) -> Self {
        BodySet {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
            vz: Vec::with_capacity(n),
            m: Vec::with_capacity(n),
        }
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no bodies are held.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one body.
    pub fn push(&mut self, pos: [f64; 3], vel: [f64; 3], mass: f64) {
        self.x.push(pos[0]);
        self.y.push(pos[1]);
        self.z.push(pos[2]);
        self.vx.push(vel[0]);
        self.vy.push(vel[1]);
        self.vz.push(vel[2]);
        self.m.push(mass);
    }

    /// Move body `i` out of this set into `other` (order not preserved:
    /// swap-remove, O(1)).
    pub fn transfer(&mut self, i: usize, other: &mut BodySet) {
        other.push(
            [self.x[i], self.y[i], self.z[i]],
            [self.vx[i], self.vy[i], self.vz[i]],
            self.m[i],
        );
        self.swap_remove(i);
    }

    /// Remove body `i` by swapping in the last body.
    pub fn swap_remove(&mut self, i: usize) {
        self.x.swap_remove(i);
        self.y.swap_remove(i);
        self.z.swap_remove(i);
        self.vx.swap_remove(i);
        self.vy.swap_remove(i);
        self.vz.swap_remove(i);
        self.m.swap_remove(i);
    }

    /// Append all bodies of `other`.
    pub fn extend(&mut self, other: &BodySet) {
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        self.z.extend_from_slice(&other.z);
        self.vx.extend_from_slice(&other.vx);
        self.vy.extend_from_slice(&other.vy);
        self.vz.extend_from_slice(&other.vz);
        self.m.extend_from_slice(&other.m);
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.m.iter().sum()
    }

    /// Internal consistency check: all arrays equally long.
    pub fn is_consistent(&self) -> bool {
        let n = self.x.len();
        self.y.len() == n
            && self.z.len() == n
            && self.vx.len() == n
            && self.vy.len() == n
            && self.vz.len() == n
            && self.m.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lengths() {
        let mut b = BodySet::new();
        assert!(b.is_empty());
        b.push([1.0, 2.0, 3.0], [0.1, 0.2, 0.3], 5.0);
        b.push([4.0, 5.0, 6.0], [0.4, 0.5, 0.6], 7.0);
        assert_eq!(b.len(), 2);
        assert!(b.is_consistent());
        assert_eq!(b.total_mass(), 12.0);
    }

    #[test]
    fn transfer_moves_a_body() {
        let mut a = BodySet::new();
        a.push([1.0; 3], [0.0; 3], 1.0);
        a.push([2.0; 3], [0.0; 3], 2.0);
        a.push([3.0; 3], [0.0; 3], 3.0);
        let mut b = BodySet::new();
        a.transfer(0, &mut b);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.m[0], 1.0);
        // swap_remove brought the last body to slot 0.
        assert_eq!(a.m[0], 3.0);
        assert!(a.is_consistent() && b.is_consistent());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BodySet::new();
        a.push([1.0; 3], [0.0; 3], 1.0);
        let mut b = BodySet::new();
        b.push([2.0; 3], [0.0; 3], 2.0);
        b.push([3.0; 3], [0.0; 3], 3.0);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_mass(), 6.0);
    }
}
