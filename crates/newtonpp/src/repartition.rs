//! Body migration: move bodies to the ranks that own their subdomains.

use minimpi::Comm;

use crate::body::BodySet;
use crate::domain::Domain;

/// Exchange bodies so every body lives on the rank owning its position —
/// the "repartitioning phase" of §4.1. Collective. Returns the rank's
/// new body set.
pub fn repartition(comm: &Comm, domain: &Domain, mut mine: BodySet) -> BodySet {
    assert_eq!(domain.slabs, comm.size(), "one slab per rank");
    // Sort local bodies into per-destination sets.
    let mut outgoing: Vec<BodySet> = (0..comm.size()).map(|_| BodySet::new()).collect();
    let mut i = 0;
    while i < mine.len() {
        let dst = domain.owner_of(mine.x[i]);
        if dst == comm.rank() {
            i += 1;
        } else {
            // transfer() swap-removes: don't advance i.
            mine.transfer(i, &mut outgoing[dst]);
        }
    }
    let incoming = comm
        .alltoall(outgoing)
        .expect("repartition alltoall: vector length equals communicator size");
    for (src, set) in incoming.into_iter().enumerate() {
        if src != comm.rank() {
            mine.extend(&set);
        }
    }
    mine
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;

    /// Build a body at `x` with a mass encoding its identity.
    fn body_at(set: &mut BodySet, x: f64, id: f64) {
        set.push([x, 0.0, 0.0], [0.0; 3], id);
    }

    #[test]
    fn bodies_migrate_to_their_owners() {
        let got = World::new(4).run(|comm| {
            let domain = Domain::new(0.0, 4.0, 4);
            // Every rank starts holding one body destined for each rank.
            let mut mine = BodySet::new();
            for dst in 0..4 {
                body_at(&mut mine, dst as f64 + 0.5, (comm.rank() * 10 + dst) as f64);
            }
            let after = repartition(&comm, &domain, mine);
            let mut ids: Vec<f64> = after.m.clone();
            ids.sort_by(f64::total_cmp);
            (after.len(), ids)
        });
        for (rank, (n, ids)) in got.iter().enumerate() {
            assert_eq!(*n, 4, "each rank receives one body from each rank");
            let expect: Vec<f64> = (0..4).map(|src| (src * 10 + rank) as f64).collect();
            assert_eq!(*ids, expect);
        }
    }

    #[test]
    fn conservation_of_bodies_and_mass() {
        let got = World::new(3).run(|comm| {
            let domain = Domain::new(-1.0, 1.0, 3);
            let mut mine = BodySet::new();
            // Deterministic pseudo-random scatter, different per rank.
            for i in 0..50 {
                let x = ((comm.rank() * 50 + i) as f64 * 0.7919).rem_euclid(2.0) - 1.0;
                body_at(&mut mine, x, 1.0 + i as f64 * 0.01);
            }
            let before_mass = mine.total_mass();
            let total_before = comm.allreduce(before_mass, |a, b| a + b);
            let after = repartition(&comm, &domain, mine);
            let total_after = comm.allreduce(after.total_mass(), |a, b| a + b);
            let count_after = comm.allreduce(after.len(), |a, b| a + b);
            // Every surviving body is owned correctly.
            let all_owned = after.x.iter().all(|&x| domain.owner_of(x) == comm.rank());
            (total_before, total_after, count_after, all_owned, after.is_consistent())
        });
        for (tb, ta, count, owned, consistent) in got {
            assert!((tb - ta).abs() < 1e-9, "mass conserved");
            assert_eq!(count, 150, "bodies conserved");
            assert!(owned, "every body on its owner");
            assert!(consistent);
        }
    }

    #[test]
    fn already_partitioned_data_is_a_fixed_point() {
        let got = World::new(2).run(|comm| {
            let domain = Domain::new(0.0, 2.0, 2);
            let mut mine = BodySet::new();
            let (lo, _) = domain.slab(comm.rank());
            for i in 0..5 {
                body_at(&mut mine, lo + 0.1 + 0.15 * i as f64, i as f64);
            }
            let before = mine.clone();
            let after = repartition(&comm, &domain, mine);
            before == after
        });
        assert!(got.iter().all(|&b| b), "no spurious migration");
    }

    #[test]
    fn single_rank_is_identity() {
        let got = World::new(1).run(|comm| {
            let domain = Domain::new(0.0, 1.0, 1);
            let mut mine = BodySet::new();
            body_at(&mut mine, 5.0, 1.0); // even out-of-range stays put
            repartition(&comm, &domain, mine).len()
        });
        assert_eq!(got[0], 1);
    }
}
