//! Conservation diagnostics: energies and momentum.

use crate::body::BodySet;
use crate::forces::Gravity;

/// Total kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy(b: &BodySet) -> f64 {
    (0..b.len())
        .map(|i| 0.5 * b.m[i] * (b.vx[i] * b.vx[i] + b.vy[i] * b.vy[i] + b.vz[i] * b.vz[i]))
        .sum()
}

/// Total (softened) gravitational potential energy over unique pairs.
pub fn potential_energy(b: &BodySet, grav: &Gravity) -> f64 {
    let mut pe = 0.0;
    for i in 0..b.len() {
        for j in (i + 1)..b.len() {
            let dx = b.x[j] - b.x[i];
            let dy = b.y[j] - b.y[i];
            let dz = b.z[j] - b.z[i];
            let r = (dx * dx + dy * dy + dz * dz + grav.eps * grav.eps).sqrt();
            if r > 0.0 {
                pe -= grav.g * b.m[i] * b.m[j] / r;
            }
        }
    }
    pe
}

/// Total linear momentum `Σ m v`.
pub fn total_momentum(b: &BodySet) -> [f64; 3] {
    let mut p = [0.0; 3];
    for i in 0..b.len() {
        p[0] += b.m[i] * b.vx[i];
        p[1] += b.m[i] * b.vy[i];
        p[2] += b.m[i] * b.vz[i];
    }
    p
}

/// Total angular momentum about the origin `Σ m (r × v)`.
pub fn angular_momentum(b: &BodySet) -> [f64; 3] {
    let mut l = [0.0; 3];
    for i in 0..b.len() {
        l[0] += b.m[i] * (b.y[i] * b.vz[i] - b.z[i] * b.vy[i]);
        l[1] += b.m[i] * (b.z[i] * b.vx[i] - b.x[i] * b.vz[i]);
        l[2] += b.m[i] * (b.x[i] * b.vy[i] - b.y[i] * b.vx[i]);
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> BodySet {
        let mut b = BodySet::new();
        b.push([0.0; 3], [1.0, 0.0, 0.0], 2.0);
        b.push([3.0, 4.0, 0.0], [0.0, -1.0, 0.0], 4.0);
        b
    }

    #[test]
    fn kinetic_energy_of_known_pair() {
        // 0.5*2*1 + 0.5*4*1 = 3
        assert_eq!(kinetic_energy(&pair()), 3.0);
    }

    #[test]
    fn potential_energy_of_known_pair() {
        // r = 5, PE = -G m1 m2 / r = -8/5.
        let pe = potential_energy(&pair(), &Gravity { g: 1.0, eps: 0.0 });
        assert!((pe + 1.6).abs() < 1e-12);
    }

    #[test]
    fn momentum_of_known_pair() {
        let p = total_momentum(&pair());
        assert_eq!(p, [2.0, -4.0, 0.0]);
    }

    #[test]
    fn angular_momentum_of_circular_motion() {
        let mut b = BodySet::new();
        b.push([1.0, 0.0, 0.0], [0.0, 2.0, 0.0], 3.0);
        // L_z = m (x*vy - y*vx) = 3 * 2 = 6.
        assert_eq!(angular_momentum(&b), [0.0, 0.0, 6.0]);
    }

    #[test]
    fn empty_set_has_zero_everything() {
        let b = BodySet::new();
        assert_eq!(kinetic_energy(&b), 0.0);
        assert_eq!(potential_energy(&b, &Gravity::default()), 0.0);
        assert_eq!(total_momentum(&b), [0.0; 3]);
    }
}
