//! The kick-drift-kick leapfrog: second order, symplectic, and time
//! reversible (§4.1). Host reference implementation; [`crate::Newton`]
//! runs the same scheme as device kernels.

use crate::body::BodySet;
use crate::forces::{accelerations_host, Gravity};

/// The KDK leapfrog stepper over a self-gravitating body set.
pub struct Leapfrog {
    /// Time step.
    pub dt: f64,
    /// Gravity parameters.
    pub grav: Gravity,
    acc: Option<Vec<[f64; 3]>>,
}

impl Leapfrog {
    /// A stepper with time step `dt`.
    pub fn new(dt: f64, grav: Gravity) -> Self {
        assert!(dt != 0.0, "time step must be nonzero (negative reverses time)");
        Leapfrog { dt, grav, acc: None }
    }

    /// Advance `bodies` by one step (self-gravity: sources = targets).
    pub fn step(&mut self, bodies: &mut BodySet) {
        let acc = match self.acc.take() {
            Some(a) if a.len() == bodies.len() => a,
            _ => accelerations_host(bodies, bodies, &self.grav),
        };
        let half = 0.5 * self.dt;
        // Kick (half).
        for (i, a) in acc.iter().enumerate() {
            bodies.vx[i] += a[0] * half;
            bodies.vy[i] += a[1] * half;
            bodies.vz[i] += a[2] * half;
        }
        // Drift (full).
        for i in 0..bodies.len() {
            bodies.x[i] += bodies.vx[i] * self.dt;
            bodies.y[i] += bodies.vy[i] * self.dt;
            bodies.z[i] += bodies.vz[i] * self.dt;
        }
        // New accelerations, kick (half).
        let acc = accelerations_host(bodies, bodies, &self.grav);
        for (i, a) in acc.iter().enumerate() {
            bodies.vx[i] += a[0] * half;
            bodies.vy[i] += a[1] * half;
            bodies.vz[i] += a[2] * half;
        }
        self.acc = Some(acc);
    }

    /// Invalidate the cached accelerations (after external mutation of
    /// the body set, e.g. repartitioning).
    pub fn invalidate(&mut self) {
        self.acc = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{kinetic_energy, potential_energy, total_momentum};

    /// A two-body circular orbit: light body around a heavy one.
    fn circular_pair(g: f64) -> (BodySet, f64) {
        let m_big = 1000.0;
        let r = 1.0;
        let v = (g * m_big / r).sqrt();
        let mut b = BodySet::new();
        b.push([0.0; 3], [0.0; 3], m_big);
        b.push([r, 0.0, 0.0], [0.0, v, 0.0], 1e-6);
        let period = std::f64::consts::TAU * r / v;
        (b, period)
    }

    #[test]
    fn circular_orbit_returns_after_one_period() {
        let grav = Gravity { g: 1.0, eps: 0.0 };
        let (mut b, period) = circular_pair(grav.g);
        let steps = 2000;
        let mut lf = Leapfrog::new(period / steps as f64, grav);
        for _ in 0..steps {
            lf.step(&mut b);
        }
        assert!((b.x[1] - 1.0).abs() < 1e-3, "x after period: {}", b.x[1]);
        assert!(b.y[1].abs() < 1e-2, "y after period: {}", b.y[1]);
    }

    #[test]
    fn energy_is_conserved_over_many_steps() {
        let grav = Gravity { g: 1.0, eps: 0.01 };
        let (mut b, period) = circular_pair(grav.g);
        let mut lf = Leapfrog::new(period / 500.0, grav);
        let e0 = kinetic_energy(&b) + potential_energy(&b, &grav);
        for _ in 0..2500 {
            lf.step(&mut b);
        }
        let e1 = kinetic_energy(&b) + potential_energy(&b, &grav);
        let drift = ((e1 - e0) / e0.abs()).abs();
        assert!(drift < 1e-4, "relative energy drift {drift}");
    }

    #[test]
    fn momentum_is_conserved_exactly_ish() {
        let grav = Gravity { g: 1.0, eps: 0.05 };
        let mut b = BodySet::new();
        b.push([0.0, 0.0, 0.0], [0.1, 0.0, 0.0], 5.0);
        b.push([1.0, 0.5, 0.0], [-0.1, 0.2, 0.0], 3.0);
        b.push([-0.5, 1.0, 0.5], [0.0, -0.1, 0.1], 2.0);
        let p0 = total_momentum(&b);
        let mut lf = Leapfrog::new(0.01, grav);
        for _ in 0..500 {
            lf.step(&mut b);
        }
        let p1 = total_momentum(&b);
        for k in 0..3 {
            assert!((p1[k] - p0[k]).abs() < 1e-10, "momentum component {k}");
        }
    }

    #[test]
    fn integration_is_time_reversible() {
        let grav = Gravity { g: 1.0, eps: 0.02 };
        let mut b = BodySet::new();
        b.push([0.0; 3], [0.0; 3], 100.0);
        b.push([1.0, 0.0, 0.0], [0.0, 8.0, 0.0], 1.0);
        b.push([0.0, 1.5, 0.0], [-7.0, 0.0, 0.5], 1.0);
        let initial = b.clone();

        let mut fwd = Leapfrog::new(0.001, grav);
        for _ in 0..200 {
            fwd.step(&mut b);
        }
        // Reverse time and step back.
        let mut bwd = Leapfrog::new(-0.001, grav);
        for _ in 0..200 {
            bwd.step(&mut b);
        }
        for i in 0..b.len() {
            assert!((b.x[i] - initial.x[i]).abs() < 1e-9, "body {i} x");
            assert!((b.y[i] - initial.y[i]).abs() < 1e-9, "body {i} y");
            assert!((b.z[i] - initial.z[i]).abs() < 1e-9, "body {i} z");
            assert!((b.vx[i] - initial.vx[i]).abs() < 1e-9, "body {i} vx");
        }
    }

    #[test]
    fn second_order_convergence() {
        // Halving dt should cut the one-period position error ~4x.
        let grav = Gravity { g: 1.0, eps: 0.0 };
        let err = |steps: usize| {
            let (mut b, period) = circular_pair(grav.g);
            let mut lf = Leapfrog::new(period / steps as f64, grav);
            for _ in 0..steps {
                lf.step(&mut b);
            }
            ((b.x[1] - 1.0).powi(2) + b.y[1].powi(2)).sqrt()
        };
        let e1 = err(400);
        let e2 = err(800);
        let order = (e1 / e2).log2();
        assert!(order > 1.7, "observed order {order} (e1={e1:.2e}, e2={e2:.2e})");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dt_rejected() {
        Leapfrog::new(0.0, Gravity::default());
    }
}
