//! Property tests on the physics: conservation laws and reversibility
//! hold for arbitrary (well-posed) body configurations.

use minimpi::World;
use newtonpp::energy::total_momentum;
use newtonpp::forces::{accelerations_host, Gravity};
use newtonpp::integrator::Leapfrog;
use newtonpp::repartition::repartition;
use newtonpp::{BodySet, Domain};
use proptest::prelude::*;

fn bodies_strategy(max_n: usize) -> impl Strategy<Value = BodySet> {
    proptest::collection::vec(
        (
            (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), // position
            (-0.5f64..0.5, -0.5f64..0.5, -0.5f64..0.5), // velocity
            0.1f64..5.0,                                // mass
        ),
        1..max_n,
    )
    .prop_map(|rows| {
        let mut b = BodySet::new();
        for (p, v, m) in rows {
            b.push([p.0, p.1, p.2], [v.0, v.1, v.2], m);
        }
        b
    })
}

const GRAV: Gravity = Gravity { g: 1.0, eps: 0.1 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Newton's third law: total force over a closed system is zero.
    #[test]
    fn forces_sum_to_zero(bodies in bodies_strategy(12)) {
        let acc = accelerations_host(&bodies, &bodies, &GRAV);
        for k in 0..3 {
            let net: f64 = acc.iter().enumerate().map(|(i, a)| bodies.m[i] * a[k]).sum();
            prop_assert!(net.abs() < 1e-9, "net force component {k} = {net}");
        }
    }

    /// Linear momentum is conserved by the integrator.
    #[test]
    fn momentum_conservation(mut bodies in bodies_strategy(10)) {
        let p0 = total_momentum(&bodies);
        let mut lf = Leapfrog::new(1e-3, GRAV);
        for _ in 0..50 {
            lf.step(&mut bodies);
        }
        let p1 = total_momentum(&bodies);
        for k in 0..3 {
            prop_assert!((p1[k] - p0[k]).abs() < 1e-8, "component {k}");
        }
    }

    /// Time reversibility: stepping forward then backward recovers the
    /// initial state to round-off.
    #[test]
    fn time_reversibility(bodies in bodies_strategy(8), steps in 1usize..40) {
        let initial = bodies.clone();
        let mut state = bodies;
        let mut fwd = Leapfrog::new(1e-3, GRAV);
        for _ in 0..steps {
            fwd.step(&mut state);
        }
        let mut bwd = Leapfrog::new(-1e-3, GRAV);
        for _ in 0..steps {
            bwd.step(&mut state);
        }
        for i in 0..state.len() {
            prop_assert!((state.x[i] - initial.x[i]).abs() < 1e-8, "body {i} x");
            prop_assert!((state.vx[i] - initial.vx[i]).abs() < 1e-8, "body {i} vx");
            prop_assert!((state.vz[i] - initial.vz[i]).abs() < 1e-8, "body {i} vz");
        }
    }
}

proptest! {
    // Spawning worlds is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Repartitioning conserves bodies and mass and establishes ownership
    /// for arbitrary distributions.
    #[test]
    fn repartition_invariants(
        positions in proptest::collection::vec(-3.0f64..3.0, 0..40),
        ranks in 1usize..4,
    ) {
        let p2 = positions.clone();
        let results = World::new(ranks).run(move |comm| {
            let domain = Domain::new(-2.0, 2.0, comm.size());
            // Deal positions round-robin to ranks as the starting state.
            let mut mine = BodySet::new();
            for (i, &x) in p2.iter().enumerate() {
                if i % comm.size() == comm.rank() {
                    mine.push([x, 0.0, 0.0], [0.0; 3], 1.0 + i as f64);
                }
            }
            let after = repartition(&comm, &domain, mine);
            let owned = after.x.iter().all(|&x| domain.owner_of(x) == comm.rank());
            let count = comm.allreduce(after.len(), |a, b| a + b);
            let mass = comm.allreduce(after.total_mass(), |a, b| a + b);
            (owned, count, mass, after.is_consistent())
        });
        let expect_mass: f64 =
            (0..positions.len()).map(|i| 1.0 + i as f64).sum();
        for (owned, count, mass, consistent) in results {
            prop_assert!(owned);
            prop_assert!(consistent);
            prop_assert_eq!(count, positions.len());
            prop_assert!((mass - expect_mass).abs() < 1e-9);
        }
    }
}
