//! Property test: writing a random DOM and re-parsing it is the identity.

use proptest::prelude::*;
use xmlcfg::{Element, Node};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// Attribute/text content; arbitrary printable chars exercise escaping.
/// Leading/trailing whitespace is excluded from text because the parser
/// deliberately trims it (configuration semantics, not document fidelity).
fn attr_value_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_filter("no raw control sequences", |s| !s.contains('\''))
}

fn text_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' .,=/-]{1,16}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("nonempty after trim", |s| !s.is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                if e.attr(&k).is_none() {
                    e.attributes.push((k, v));
                }
            }
            if let Some(t) = text {
                e.children.push(Node::Text(t));
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    if e.attr(&k).is_none() {
                        e.attributes.push((k, v));
                    }
                }
                for c in children {
                    e.children.push(Node::Element(c));
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_then_parse_is_identity(root in element_strategy()) {
        let xml = xmlcfg::write(&root);
        let reparsed = xmlcfg::parse(&xml).unwrap();
        prop_assert_eq!(root, reparsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = xmlcfg::parse(&s);
    }
}
