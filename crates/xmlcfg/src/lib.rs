//! # xmlcfg — minimal XML for SENSEI run-time configuration
//!
//! SENSEI selects and configures its analysis back-ends at run time from
//! an XML file (the paper's Appendix A ships the XML configs used in the
//! evaluation). This crate implements exactly the XML subset those
//! configurations use — elements, attributes, text, comments, an optional
//! declaration, and the five predefined entities — with no external
//! dependencies.
//!
//! ```
//! let doc = xmlcfg::parse(r#"
//!     <sensei>
//!       <analysis type="data_binning" enabled="1" device="2">
//!         <axes>x,y</axes>
//!       </analysis>
//!     </sensei>"#).unwrap();
//! let analysis = doc.find_child("analysis").unwrap();
//! assert_eq!(analysis.attr("type"), Some("data_binning"));
//! assert_eq!(analysis.parse_attr::<i32>("device").unwrap(), Some(2));
//! assert_eq!(analysis.find_child("axes").unwrap().text(), "x,y");
//! ```

mod dom;
mod error;
mod parser;
mod writer;

pub use dom::{Element, Node};
pub use error::{Error, Result};
pub use parser::parse;
pub use writer::write;
