//! Recursive-descent parser for the supported XML subset.

use crate::dom::{Element, Node};
use crate::error::{Error, Result};

/// Parse a document and return its root element.
///
/// Accepts an optional `<?xml ...?>` declaration, comments anywhere
/// between markup, one root element, nested elements with single- or
/// double-quoted attributes, self-closing tags, text with the five
/// predefined entities, and numeric character references.
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser { chars: input.chars().collect(), pos: 0, line: 1, col: 1 };
    p.skip_prolog()?;
    let root = match p.parse_element()? {
        Some(e) => e,
        None => return Err(Error::NoRoot),
    };
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.syntax("content after the root element"));
    }
    Ok(root)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Parser {
    fn at_eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn syntax(&self, message: impl Into<String>) -> Error {
        Error::Syntax { line: self.line, col: self.col, message: message.into() }
    }

    fn eat(&mut self, expected: char) -> Result<()> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.syntax(format!("expected '{expected}', found '{c}'"))),
            None => Err(Error::UnexpectedEof { context: "markup" }),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn skip_literal(&mut self, s: &str) {
        for _ in s.chars() {
            self.bump();
        }
    }

    /// Declaration + leading comments/whitespace.
    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_literal("<?xml");
            loop {
                if self.starts_with("?>") {
                    self.skip_literal("?>");
                    break;
                }
                if self.bump().is_none() {
                    return Err(Error::UnexpectedEof { context: "declaration" });
                }
            }
        }
        self.skip_misc()
    }

    /// Comments and whitespace between markup.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        self.skip_literal("<!--");
        loop {
            if self.starts_with("-->") {
                self.skip_literal("-->");
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(Error::UnexpectedEof { context: "comment" });
            }
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
    }

    fn parse_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {}
            Some(c) => return Err(self.syntax(format!("invalid name start '{c}'"))),
            None => return Err(Error::UnexpectedEof { context: "name" }),
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if Self::is_name_char(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(name)
    }

    /// Parse one element; `None` when the next markup is not an open tag.
    fn parse_element(&mut self) -> Result<Option<Element>> {
        if self.peek() != Some('<') || self.peek_at(1) == Some('/') {
            return Ok(None);
        }
        self.eat('<')?;
        let (open_line, open_col) = (self.line, self.col);
        let name = self.parse_name()?;
        let mut element = Element::new(&name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') | Some('/') => break,
                Some(c) if Parser::is_name_start(c) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.eat('=')?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ ('"' | '\'')) => q,
                        Some(c) => return Err(self.syntax(format!("expected quote, found '{c}'"))),
                        None => return Err(Error::UnexpectedEof { context: "attribute" }),
                    };
                    let mut raw = String::new();
                    loop {
                        match self.bump() {
                            Some(c) if c == quote => break,
                            Some(c) => raw.push(c),
                            None => {
                                return Err(Error::UnexpectedEof { context: "attribute value" })
                            }
                        }
                    }
                    if element.attr(&key).is_some() {
                        return Err(self.syntax(format!("duplicate attribute '{key}'")));
                    }
                    element.attributes.push((key, decode_entities(&raw, self)?));
                }
                Some(c) => return Err(self.syntax(format!("unexpected '{c}' in tag"))),
                None => return Err(Error::UnexpectedEof { context: "tag" }),
            }
        }

        // Self-closing?
        if self.peek() == Some('/') {
            self.bump();
            self.eat('>')?;
            return Ok(Some(element));
        }
        self.eat('>')?;

        // Content.
        loop {
            // Text run up to the next markup.
            let mut text = String::new();
            while let Some(c) = self.peek() {
                if c == '<' {
                    break;
                }
                text.push(c);
                self.bump();
            }
            if !text.trim().is_empty() {
                element.children.push(Node::Text(decode_entities(text.trim(), self)?));
            }
            if self.at_eof() {
                return Err(Error::UnexpectedEof { context: "element content" });
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("</") {
                self.skip_literal("</");
                let close = self.parse_name()?;
                self.skip_ws();
                self.eat('>')?;
                if close != name {
                    return Err(Error::MismatchedTag {
                        line: open_line,
                        col: open_col,
                        open: name,
                        close,
                    });
                }
                return Ok(Some(element));
            }
            match self.parse_element()? {
                Some(child) => element.children.push(Node::Element(child)),
                None => return Err(self.syntax("expected element or closing tag")),
            }
        }
    }
}

/// Decode `&lt; &gt; &amp; &quot; &apos;` and `&#NN;` / `&#xNN;`.
fn decode_entities(s: &str, p: &Parser) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let mut entity = String::new();
        loop {
            match chars.next() {
                Some(';') => break,
                Some(c) if entity.len() < 10 => entity.push(c),
                _ => return Err(p.syntax(format!("bad entity '&{entity}'"))),
            }
        }
        match entity.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = entity
                    .strip_prefix("#x")
                    .map(|h| u32::from_str_radix(h, 16))
                    .or_else(|| entity.strip_prefix('#').map(|d| d.parse::<u32>()))
                    .ok_or_else(|| p.syntax(format!("unknown entity '&{entity};'")))?
                    .map_err(|_| p.syntax(format!("bad character reference '&{entity};'")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| p.syntax(format!("invalid code point {code}")))?,
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let e = parse("<root/>").unwrap();
        assert_eq!(e.name, "root");
        assert!(e.attributes.is_empty());
        assert!(e.children.is_empty());
    }

    #[test]
    fn declaration_and_comments_are_skipped() {
        let e = parse("<?xml version=\"1.0\"?>\n<!-- header -->\n<a/>\n<!-- trailer -->").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some("two"));
    }

    #[test]
    fn nested_elements_and_text() {
        let e = parse("<a><b>hi</b><c><d/></c>tail</a>").unwrap();
        assert_eq!(e.find_child("b").unwrap().text(), "hi");
        assert!(e.find_child("c").unwrap().find_child("d").is_some());
        assert_eq!(e.text(), "tail");
    }

    #[test]
    fn entities_decode() {
        let e = parse("<a t=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(e.attr("t"), Some("<&>"));
        assert_eq!(e.text(), "\"x' AB");
    }

    #[test]
    fn comments_inside_content() {
        let e = parse("<a>one<!-- skip --><b/>two</a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.text(), "onetwo");
    }

    #[test]
    fn mismatched_tag_is_an_error() {
        assert!(matches!(parse("<a><b></a></b>"), Err(Error::MismatchedTag { .. })));
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(matches!(parse("<a>"), Err(Error::UnexpectedEof { .. })));
        assert!(matches!(parse("<a b=\"x/>"), Err(Error::UnexpectedEof { .. })));
        assert!(matches!(
            parse("<!-- never ends"),
            Err(Error::UnexpectedEof { .. }) | Err(Error::NoRoot)
        ));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(matches!(parse("<a x=\"1\" x=\"2\"/>"), Err(Error::Syntax { .. })));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(matches!(parse("<a/><b/>"), Err(Error::Syntax { .. })));
        assert!(matches!(parse("<a/>junk"), Err(Error::Syntax { .. })));
    }

    #[test]
    fn empty_input_has_no_root() {
        assert!(matches!(parse(""), Err(Error::NoRoot)));
        assert!(matches!(parse("   \n <!-- only comment -->"), Err(Error::NoRoot)));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("<a>\n  <b x=1/>\n</a>").unwrap_err();
        match err {
            Error::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn sensei_appendix_shaped_config_parses() {
        let xml = r#"<?xml version="1.0"?>
        <sensei>
          <!-- data binning on a dedicated device -->
          <analysis type="data_binning" enabled="1"
                    mode="asynchronous" device="-2">
            <mesh name="bodies"/>
            <axes>x,y</axes>
            <operations>sum(mass),min(vx),max(vy),avg(vz)</operations>
            <resolution x="256" y="256"/>
          </analysis>
          <analysis type="data_binning" enabled="0">
            <axes>x,z</axes>
          </analysis>
        </sensei>"#;
        let root = parse(xml).unwrap();
        assert_eq!(root.name, "sensei");
        let analyses: Vec<_> = root.find_all("analysis").collect();
        assert_eq!(analyses.len(), 2);
        assert_eq!(analyses[0].parse_attr::<i32>("device").unwrap(), Some(-2));
        assert_eq!(
            analyses[0].find_child("resolution").unwrap().parse_attr::<usize>("x").unwrap(),
            Some(256)
        );
        assert_eq!(analyses[1].attr("enabled"), Some("0"));
    }
}
