//! Parse errors with line/column positions.

use std::fmt;

/// Result alias for xmlcfg operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An XML parse or lookup error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Unexpected input at a position.
    Syntax { line: usize, col: usize, message: String },
    /// A closing tag did not match the open element.
    MismatchedTag { line: usize, col: usize, open: String, close: String },
    /// Input ended inside a construct.
    UnexpectedEof { context: &'static str },
    /// The document contains no root element.
    NoRoot,
    /// A required attribute is missing.
    MissingAttribute { element: String, attribute: String },
    /// An attribute failed to parse as the requested type.
    BadAttribute { element: String, attribute: String, value: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { line, col, message } => write!(f, "{line}:{col}: {message}"),
            Error::MismatchedTag { line, col, open, close } => {
                write!(f, "{line}:{col}: closing tag </{close}> does not match <{open}>")
            }
            Error::UnexpectedEof { context } => write!(f, "unexpected end of input in {context}"),
            Error::NoRoot => write!(f, "document has no root element"),
            Error::MissingAttribute { element, attribute } => {
                write!(f, "element <{element}> is missing required attribute '{attribute}'")
            }
            Error::BadAttribute { element, attribute, value } => {
                write!(f, "element <{element}>: attribute '{attribute}'='{value}' failed to parse")
            }
        }
    }
}

impl std::error::Error for Error {}
