//! Serialize a DOM back to XML text.

use crate::dom::{Element, Node};

/// Write `root` as an indented XML document (no declaration).
pub fn write(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, 0, &mut out);
    out
}

fn write_element(e: &Element, depth: usize, out: &mut String) {
    indent(depth, out);
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape(v, true, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Pure-text elements render inline; mixed/nested content indents.
    if e.children.iter().all(|n| matches!(n, Node::Text(_))) {
        out.push('>');
        for n in &e.children {
            if let Node::Text(t) = n {
                escape(t, false, out);
            }
        }
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for n in &e.children {
        match n {
            Node::Element(child) => write_element(child, depth + 1, out),
            Node::Text(t) => {
                indent(depth + 1, out);
                escape(t, false, out);
                out.push('\n');
            }
        }
    }
    indent(depth, out);
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape(s: &str, in_attr: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn writes_self_closing_and_nested() {
        let e = Element::new("a")
            .with_attr("k", "v")
            .with_child(Element::new("b"))
            .with_child(Element::new("c").with_text("t"));
        let xml = write(&e);
        assert_eq!(xml, "<a k=\"v\">\n  <b/>\n  <c>t</c>\n</a>\n");
    }

    #[test]
    fn escapes_special_characters() {
        let e = Element::new("a").with_attr("q", "a\"<b>").with_text("1 < 2 & 3");
        let xml = write(&e);
        assert!(xml.contains("q=\"a&quot;&lt;b&gt;\""));
        assert!(xml.contains("1 &lt; 2 &amp; 3"));
    }

    #[test]
    fn parse_write_roundtrip_preserves_structure() {
        let src = r#"<sensei><analysis type="binning" device="2"><axes>x,y</axes><res x="64"/></analysis></sensei>"#;
        let doc = parse(src).unwrap();
        let rewritten = write(&doc);
        let reparsed = parse(&rewritten).unwrap();
        assert_eq!(doc, reparsed);
    }
}
