//! The document object model: elements, attributes, and text.

use std::str::FromStr;

use crate::error::{Error, Result};

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A text run (entity-decoded; whitespace-only runs are dropped by the
    /// parser).
    Text(String),
}

/// An XML element: name, ordered attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order (duplicates rejected at parse time).
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// A new element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), ..Default::default() }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Attribute value or a default.
    pub fn attr_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.attr(key).unwrap_or(default)
    }

    /// Required attribute value.
    pub fn req_attr(&self, key: &str) -> Result<&str> {
        self.attr(key).ok_or_else(|| Error::MissingAttribute {
            element: self.name.clone(),
            attribute: key.to_string(),
        })
    }

    /// Parse an attribute as `T`; `None` when absent, `Err` on bad syntax.
    pub fn parse_attr<T: FromStr>(&self, key: &str) -> Result<Option<T>> {
        match self.attr(key) {
            None => Ok(None),
            Some(raw) => raw.trim().parse::<T>().map(Some).map_err(|_| Error::BadAttribute {
                element: self.name.clone(),
                attribute: key.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// Parse an attribute as `T`, falling back to `default` when absent.
    pub fn parse_attr_or<T: FromStr>(&self, key: &str, default: T) -> Result<T> {
        Ok(self.parse_attr(key)?.unwrap_or(default))
    }

    /// Child elements, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element with the given tag name.
    pub fn find_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("analysis")
            .with_attr("type", "data_binning")
            .with_attr("device", "2")
            .with_child(Element::new("axes").with_text("x,y"))
            .with_child(Element::new("axes").with_text("x,z"))
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("type"), Some("data_binning"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.attr_or("missing", "dflt"), "dflt");
        assert_eq!(e.req_attr("type").unwrap(), "data_binning");
        assert!(matches!(e.req_attr("nope"), Err(Error::MissingAttribute { .. })));
    }

    #[test]
    fn typed_attr_parsing() {
        let e = sample();
        assert_eq!(e.parse_attr::<i32>("device").unwrap(), Some(2));
        assert_eq!(e.parse_attr::<i32>("missing").unwrap(), None);
        assert_eq!(e.parse_attr_or::<i32>("missing", 7).unwrap(), 7);
        let bad = Element::new("x").with_attr("n", "abc");
        assert!(matches!(bad.parse_attr::<u32>("n"), Err(Error::BadAttribute { .. })));
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(e.find_child("axes").unwrap().text(), "x,y");
        let all: Vec<_> = e.find_all("axes").map(|a| a.text()).collect();
        assert_eq!(all, vec!["x,y", "x,z"]);
        assert!(e.find_child("nope").is_none());
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = Element::new("t")
            .with_text("  hello ")
            .with_child(Element::new("b"))
            .with_text("world  ");
        assert_eq!(e.text(), "hello world");
    }
}
