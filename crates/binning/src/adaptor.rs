//! The SENSEI analysis back-end wrapping the binning implementations.

use std::path::PathBuf;
use std::sync::Arc;

use hamr::Pm;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, AnalysisCounters, AnalysisRegistry, BackendControls, DataAdaptor,
    DataRequirements, Error, ExecContext, Result,
};
use svtk::FieldAssociation;
use svtk::{DataObject, HamrDataArray, TableData};

use crate::bounds;
use crate::device_impl;
use crate::grid::GridParams;
use crate::host_impl;
use crate::reduce;
use crate::spec::{BinOp, BinningSpec, VarOp};

/// One finalized binning result (global across ranks).
#[derive(Debug, Clone)]
pub struct BinnedResult {
    /// Simulation step the result was computed at.
    pub step: u64,
    /// Simulated time.
    pub time: f64,
    /// The coordinate variables used as axes.
    pub axes: (String, String),
    /// Mesh geometry.
    pub grid: GridParams,
    /// Output arrays: `(output name, finalized per-bin values)`.
    pub arrays: Vec<(String, Vec<f64>)>,
}

impl BinnedResult {
    /// Look up an output array by name.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.arrays.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_slice())
    }

    /// Publish as an `svtk::ImageData` with one cell array per output,
    /// host-resident. Allocations go through the caching host pool.
    pub fn to_image(&self, node: &Arc<devsim::SimNode>) -> Result<svtk::ImageData> {
        self.to_image_on(node, None)
    }

    /// Publish as an `svtk::ImageData` with one cell array per output.
    /// With `device = Some(d)` the arrays are placed on device `d` through
    /// one stream-ordered pooled allocation path: every array's
    /// allocation and upload is enqueued asynchronously on a single
    /// stream and the stream is synchronized **once** — instead of a
    /// synchronous default-stream allocation and blocking upload per
    /// array.
    pub fn to_image_on(
        &self,
        node: &Arc<devsim::SimNode>,
        device: Option<usize>,
    ) -> Result<svtk::ImageData> {
        let mut img = self.grid.to_image();
        match device {
            None => {
                for (name, values) in &self.arrays {
                    // Host arrays come from the caching host pool; no
                    // stream is involved.
                    let arr = HamrDataArray::<f64>::from_slice(
                        name.clone(),
                        node.clone(),
                        values,
                        1,
                        hamr::Allocator::Malloc,
                        None,
                        hamr::HamrStream::default_stream(),
                        hamr::StreamMode::Sync,
                    )?;
                    img.data_mut(svtk::FieldAssociation::Cell).set_array(arr.as_array_ref());
                }
            }
            Some(d) => {
                let stream = node.device(d)?.default_stream();
                let hstream = hamr::HamrStream::new(stream.clone());
                for (name, values) in &self.arrays {
                    let arr = HamrDataArray::<f64>::from_slice(
                        name.clone(),
                        node.clone(),
                        values,
                        1,
                        hamr::Allocator::CudaAsync,
                        Some(d),
                        hstream.clone(),
                        hamr::StreamMode::Async,
                    )?;
                    img.data_mut(svtk::FieldAssociation::Cell).set_array(arr.as_array_ref());
                }
                // All uploads were enqueued in order; one wait covers them.
                stream.synchronize().map_err(Error::Device)?;
            }
        }
        Ok(img)
    }
}

/// Shared sink examples and tests read results from (the analysis may be
/// moved into an in situ worker thread, so results flow out through an
/// `Arc`).
pub type ResultSink = Arc<Mutex<Vec<BinnedResult>>>;

/// The data-binning analysis back-end (§4.2).
///
/// "We provide a CPU implementation that runs on the host as well as a
/// CUDA implementation that runs on an assigned device. Both
/// implementations can run asynchronously in a C++ thread." Placement and
/// execution method come from the embedded [`BackendControls`]; data
/// access and movement go through the HDA access API, so data already
/// resident where the analysis runs is used zero-copy.
pub struct BinningAnalysis {
    controls: BackendControls,
    spec: BinningSpec,
    /// `true` (default): single-pass fused binning, fused bounds, and one
    /// packed allreduce for all grids. `false`: the per-op reference path
    /// (one pass/kernel/download/allreduce per operation), kept for A/B
    /// comparison and as the correctness reference.
    fused: bool,
    sink: Option<ResultSink>,
    keep_results: bool,
    output_dir: Option<PathBuf>,
    last: Option<BinnedResult>,
    executes: u64,
    counters: Arc<AnalysisCounters>,
}

impl BinningAnalysis {
    /// A back-end computing `spec`.
    pub fn new(spec: BinningSpec) -> Self {
        BinningAnalysis {
            controls: BackendControls::default(),
            spec,
            fused: true,
            sink: None,
            keep_results: false,
            output_dir: None,
            last: None,
            executes: 0,
            counters: AnalysisCounters::new(),
        }
    }

    /// Select the fused (`true`, default) or per-op reference (`false`)
    /// execution path.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Send every step's result to `sink`.
    pub fn with_sink(mut self, sink: ResultSink) -> Self {
        self.sink = Some(sink);
        self.keep_results = true;
        self
    }

    /// Write the final result to `dir` (PGM + CSV) at finalize, rank 0 only.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Set the execution-model controls at construction time.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// Number of completed executes (diagnostic).
    pub fn executes(&self) -> u64 {
        self.executes
    }

    /// Fetch every required variable of `table` exactly once into the
    /// execution space (host vectors or device views), batching the
    /// synchronization: all moves are enqueued first and waited for once.
    /// This is the access pattern a well-written HDA consumer uses — data
    /// already in place is granted zero-copy, and re-reads cost nothing.
    fn fetch(
        &self,
        table: &TableData,
        device: Option<usize>,
        ctx: &ExecContext<'_>,
    ) -> Result<Fetched> {
        let vars = self.spec.required_variables();
        self.counters.add_fetches(vars.len() as u64);
        fetch_table(table, &vars, device, ctx.node, &self.counters, true)
    }

    /// Global axis bounds: manual, or min/max computed where the data is.
    ///
    /// Fused: one pass covers **both** axes (host single traversal /
    /// device single kernel + packed download) and one packed allreduce
    /// merges both axes' bounds. Per-op reference: one pass and one
    /// allreduce per axis.
    fn compute_bounds(
        &self,
        fetched: &[Fetched],
        device: Option<usize>,
        ctx: &ExecContext<'_>,
    ) -> Result<([f64; 2], [f64; 2])> {
        if let Some(b) = self.spec.bounds {
            return Ok(b);
        }
        let mut per_axis = [[f64::INFINITY, f64::NEG_INFINITY]; 2];
        if self.fused {
            for f in fetched {
                let pairs = match f {
                    Fetched::Host(data) => {
                        let xs = &data[self.spec.axes.0.as_str()];
                        let ys = &data[self.spec.axes.1.as_str()];
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds_fused",
                            devsim::KernelCost::bytes(((xs.len() + ys.len()) * 8) as f64),
                            || bounds::minmax_multi_host(&[xs, ys]),
                        )
                    }
                    Fetched::HostMapped { cols, layout, .. } => {
                        let xs = &cols[self.spec.axes.0.as_str()];
                        let ys = &cols[self.spec.axes.1.as_str()];
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds_fused",
                            device_impl::fused_bounds_cost(xs.len() + ys.len(), *layout),
                            || bounds::minmax_multi_mapped(&[xs, ys]),
                        )
                    }
                    Fetched::Device { views, .. } => {
                        let d = device.expect("device fetch implies device placement");
                        let stream = ctx.node.device(d)?.default_stream();
                        self.counters.add_kernel_launches(1);
                        self.counters.add_downloads(1);
                        device_impl::minmax_multi_device(
                            ctx.node,
                            d,
                            &stream,
                            &[
                                views[self.spec.axes.0.as_str()].cells(),
                                views[self.spec.axes.1.as_str()].cells(),
                            ],
                        )?
                    }
                };
                for (a, (lo, hi)) in pairs.into_iter().enumerate() {
                    per_axis[a][0] = per_axis[a][0].min(lo);
                    per_axis[a][1] = per_axis[a][1].max(hi);
                }
            }
            let merged = bounds::global_bounds_packed(
                ctx.comm,
                &[(per_axis[0][0], per_axis[0][1]), (per_axis[1][0], per_axis[1][1])],
            )?;
            let (xlo, xhi) = bounds::usable_range(merged[0].0, merged[0].1);
            let (ylo, yhi) = bounds::usable_range(merged[1].0, merged[1].1);
            return Ok(([xlo, xhi], [ylo, yhi]));
        }
        for f in fetched {
            for (a, name) in [&self.spec.axes.0, &self.spec.axes.1].into_iter().enumerate() {
                let (lo, hi) = match f {
                    Fetched::Host(data) => {
                        let vals = &data[name.as_str()];
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds",
                            devsim::KernelCost::bytes((vals.len() * 8) as f64),
                            || bounds::minmax_host(vals),
                        )
                    }
                    Fetched::HostMapped { cols, layout, .. } => {
                        let col = &cols[name.as_str()];
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds",
                            device_impl::fused_bounds_cost(col.len(), *layout),
                            || bounds::minmax_mapped(col),
                        )
                    }
                    Fetched::Device { views, .. } => {
                        let d = device.expect("device fetch implies device placement");
                        let stream = ctx.node.device(d)?.default_stream();
                        self.counters.add_kernel_launches(1);
                        self.counters.add_downloads(1);
                        device_impl::minmax_device(
                            ctx.node,
                            d,
                            &stream,
                            views[name.as_str()].cells(),
                        )?
                    }
                };
                per_axis[a][0] = per_axis[a][0].min(lo);
                per_axis[a][1] = per_axis[a][1].max(hi);
            }
        }
        let (xlo, xhi) = bounds::global_bounds(ctx.comm, (per_axis[0][0], per_axis[0][1]));
        let (ylo, yhi) = bounds::global_bounds(ctx.comm, (per_axis[1][0], per_axis[1][1]));
        let (xlo, xhi) = bounds::usable_range(xlo, xhi);
        let (ylo, yhi) = bounds::usable_range(ylo, yhi);
        Ok(([xlo, xhi], [ylo, yhi]))
    }

    /// Compute the local accumulation grid of every operation (counts
    /// first) over the fetched tables.
    ///
    /// Fused: the bin index of each row is computed **once** and
    /// scattered into every op's grid — one pass per fetched block on the
    /// host, one batched multi-op kernel plus one packed download per
    /// fetched block on a device. Per-op reference: one pass (or kernel
    /// pair + download) per op per block. Device work is enqueued for all
    /// blocks before a single synchronization either way.
    fn bin_all_local(
        &self,
        fetched: &[Fetched],
        grid: GridParams,
        device: Option<usize>,
        ctx: &ExecContext<'_>,
    ) -> Result<Vec<(VarOp, Vec<f64>)>> {
        // counts first (always needed for averages), then the user ops.
        let mut all_ops = vec![VarOp { var: String::new(), op: BinOp::Count }];
        all_ops.extend(self.spec.ops.iter().cloned());

        let mut results: Vec<(VarOp, Vec<f64>)> = all_ops
            .iter()
            .map(|vo| (vo.clone(), vec![host_impl::identity(vo.op); grid.num_bins()]))
            .collect();

        // Packed downloads staged across all device blocks; synchronized
        // once before unpacking.
        let mut staged_packed = Vec::new();
        let mut dev_stream = None;

        for f in fetched {
            match f {
                Fetched::Host(data) => {
                    let xs = &data[self.spec.axes.0.as_str()];
                    let ys = &data[self.spec.axes.1.as_str()];
                    let n = xs.len();
                    if self.fused {
                        let ops: Vec<(BinOp, Option<&[f64]>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals = if vo.op == BinOp::Count {
                                    None
                                } else {
                                    Some(data[vo.var.as_str()].as_slice())
                                };
                                (vo.op, vals)
                            })
                            .collect();
                        self.counters.add_table_passes(1);
                        let parts = ctx.node.host().run(
                            "bin_fused_host",
                            device_impl::fused_bin_cost(n, ops.len()),
                            || host_impl::bin_all_host(xs, ys, &ops, &grid),
                        );
                        for ((vo, acc), part) in results.iter_mut().zip(parts) {
                            *acc = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                        }
                    } else {
                        for (vo, acc) in results.iter_mut() {
                            let empty: Vec<f64> = Vec::new();
                            let vals: &[f64] =
                                if vo.op == BinOp::Count { &empty } else { &data[vo.var.as_str()] };
                            self.counters.add_table_passes(1);
                            let part =
                                ctx.node.host().run("bin_host", device_impl::bin_cost(n), || {
                                    host_impl::bin_host(xs, ys, vals, vo.op, &grid)
                                });
                            let merged = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                            *acc = merged;
                        }
                    }
                }
                Fetched::HostMapped { cols, layout, n } => {
                    let xs = &cols[self.spec.axes.0.as_str()];
                    let ys = &cols[self.spec.axes.1.as_str()];
                    if self.fused {
                        let ops: Vec<(BinOp, Option<&host_impl::MappedCol>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals = if vo.op == BinOp::Count {
                                    None
                                } else {
                                    Some(&cols[vo.var.as_str()])
                                };
                                (vo.op, vals)
                            })
                            .collect();
                        self.counters.add_table_passes(1);
                        let parts = ctx.node.host().run(
                            "bin_fused_host_lanes",
                            device_impl::fused_bin_cost_layout(*n, ops.len(), *layout),
                            || host_impl::bin_all_host_lanes(xs, ys, &ops, &grid),
                        );
                        for ((vo, acc), part) in results.iter_mut().zip(parts) {
                            *acc = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                        }
                    } else {
                        for (vo, acc) in results.iter_mut() {
                            let vals = if vo.op == BinOp::Count {
                                None
                            } else {
                                Some(&cols[vo.var.as_str()])
                            };
                            self.counters.add_table_passes(1);
                            let part =
                                ctx.node.host().run("bin_host", device_impl::bin_cost(*n), || {
                                    host_impl::bin_host_mapped(xs, ys, vals, vo.op, &grid)
                                });
                            let merged = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                            *acc = merged;
                        }
                    }
                }
                Fetched::Device { views, .. } => {
                    let d = device.expect("device fetch implies device placement");
                    let stream = ctx.node.device(d)?.default_stream();
                    let xs = views[self.spec.axes.0.as_str()].cells();
                    let ys = views[self.spec.axes.1.as_str()].cells();
                    if self.fused {
                        // One batched multi-op kernel + one packed
                        // download for this block.
                        let ops: Vec<(BinOp, Option<&devsim::CellBuffer>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals = if vo.op == BinOp::Count {
                                    None
                                } else {
                                    Some(views[vo.var.as_str()].cells())
                                };
                                (vo.op, vals)
                            })
                            .collect();
                        let packed =
                            device_impl::bin_all_device(ctx.node, d, &stream, xs, ys, &ops, grid)?;
                        let host = ctx.node.host_alloc_f64(packed.len());
                        stream.copy(&packed, &host).map_err(Error::Device)?;
                        self.counters.add_kernel_launches(1);
                        self.counters.add_downloads(1);
                        staged_packed.push((true, vec![host]));
                    } else {
                        // Per-op reference: two launches (init + reduce)
                        // and one download per op.
                        let mut staged = Vec::with_capacity(results.len());
                        for (vo, _) in results.iter() {
                            let vals = if vo.op == BinOp::Count {
                                None
                            } else {
                                Some(views[vo.var.as_str()].cells())
                            };
                            let dbins = device_impl::bin_device(
                                ctx.node, d, &stream, xs, ys, vals, vo.op, grid,
                            )?;
                            let host = ctx.node.host_alloc_f64(grid.num_bins());
                            stream.copy(&dbins, &host).map_err(Error::Device)?;
                            self.counters.add_kernel_launches(2);
                            self.counters.add_downloads(1);
                            staged.push(host);
                        }
                        staged_packed.push((false, staged));
                    }
                    dev_stream = Some(stream);
                }
            }
        }

        if let Some(stream) = dev_stream {
            stream.synchronize().map_err(Error::Device)?;
            for (packed, buffers) in staged_packed {
                if packed {
                    let host = &buffers[0];
                    let v = host.host_f64_ro().map_err(Error::Device)?;
                    for (seg, (vo, acc)) in results.iter_mut().enumerate() {
                        let part: Vec<f64> = (0..grid.num_bins())
                            .map(|b| v.get(seg * grid.num_bins() + b))
                            .collect();
                        *acc = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                    }
                } else {
                    for ((vo, acc), host) in results.iter_mut().zip(buffers) {
                        let part = host.host_f64_ro().map_err(Error::Device)?.to_vec();
                        let merged = reduce::merge_grids(vo.op, std::mem::take(acc), part);
                        *acc = merged;
                    }
                }
            }
        }
        Ok(results)
    }
}

/// A table's required variables, resident in the execution space.
pub(crate) enum Fetched {
    /// Host placement: plain vectors.
    Host(std::collections::HashMap<String, Vec<f64>>),
    /// Host placement over a layout-grouped table: zero-copy mapped
    /// columns over the shared interleaved block, consumed by the
    /// lane-blocked host kernels.
    HostMapped {
        cols: std::collections::HashMap<String, host_impl::MappedCol>,
        /// The group's physical layout (drives the lane cost model).
        layout: hamr::Layout,
        /// Logical row count.
        n: usize,
    },
    /// Device placement: access views (zero-copy when already resident).
    Device {
        views: std::collections::HashMap<String, hamr::AccessView<f64>>,
        #[allow(dead_code)]
        n: usize,
    },
}

/// The tables making up the requested mesh (a bare table, or the local
/// blocks of a multiblock).
pub(crate) fn local_tables(obj: &DataObject) -> Result<Vec<TableData>> {
    match obj {
        DataObject::Table(t) => Ok(vec![t.clone()]),
        DataObject::Multi(mb) => {
            let mut out = Vec::new();
            for (_, block) in mb.local_blocks() {
                match block {
                    DataObject::Table(t) => out.push(t.clone()),
                    other => {
                        return Err(Error::Analysis(format!(
                            "data binning needs tabular blocks, got {}",
                            other.class_name()
                        )))
                    }
                }
            }
            Ok(out)
        }
        other => Err(Error::Analysis(format!(
            "data binning needs tabular data, got {}",
            other.class_name()
        ))),
    }
}

pub(crate) fn column<'t>(table: &'t TableData, name: &str) -> Result<&'t HamrDataArray<f64>> {
    let col = table
        .column(name)
        .ok_or_else(|| Error::NoSuchArray { mesh: "table".into(), array: name.to_string() })?;
    svtk::downcast::<f64>(col).ok_or_else(|| {
        Error::Analysis(format!("column '{name}' is {}, binning needs double", col.type_name()))
    })
}

/// Move `vars` of `table` into the execution space (host vectors or
/// device views) with one batched synchronization: all moves are enqueued
/// first and waited for once. Data already in place is granted zero-copy.
///
/// Layout handling is data-driven: a grouped table (columns sharing an
/// interleaved AoS/SoA/AoSoA block) is consumed zero-copy on the host
/// through [`Fetched::HostMapped`] when `mapped` is true, or gathered
/// into dense vectors (a charged relayout, counted in `counters`) when
/// the caller needs plain slices — the DAG engine pins itself to the
/// dense path so stolen kernels keep their plain-column contract. On a
/// device, `hamr` packs grouped blocks dense in flight during upload;
/// the cells the pack moved are charged by the buffer layer and counted
/// into `counters` here, and downstream device code sees ordinary dense
/// views either way.
pub(crate) fn fetch_table(
    table: &TableData,
    vars: &[&str],
    device: Option<usize>,
    node: &Arc<devsim::SimNode>,
    counters: &AnalysisCounters,
    mapped: bool,
) -> Result<Fetched> {
    match device {
        None => {
            let mut views = Vec::with_capacity(vars.len());
            for name in vars {
                let col = column(table, name)?;
                views.push((name.to_string(), col, col.host_accessible()?));
            }
            // One blocking wait; subsequent synchronizes are free.
            for (_, col, _) in &views {
                col.synchronize()?;
            }
            let grouped = views.iter().any(|(_, _, v)| v.layout_map().is_some());
            if mapped && grouped {
                // Zero-copy: lane kernels read straight through the maps.
                let mut cols = std::collections::HashMap::new();
                let mut layout = hamr::Layout::Scalar;
                for (name, col, view) in views {
                    let mc = match view.layout_map() {
                        Some(m) => {
                            if m.layout() != hamr::Layout::Scalar {
                                layout = m.layout();
                            }
                            let v = col.data().host_f64_ro().map_err(Error::Device)?;
                            host_impl::MappedCol::new(v, m)
                        }
                        None => {
                            let len = view.len();
                            let v = view.cells().host_f64_ro().map_err(Error::Device)?;
                            host_impl::MappedCol::dense(v, len)
                        }
                    };
                    cols.insert(name, mc);
                }
                return Ok(Fetched::HostMapped { cols, layout, n: table.num_rows() });
            }
            // Dense path; gathering out of a grouped block is an honest
            // relayout (read mapped + write dense), charged like a pack.
            let gather_cells: usize = views
                .iter()
                .filter(|(_, _, v)| v.layout_map().is_some())
                .map(|(_, _, v)| v.len())
                .sum();
            let build = move || -> Result<std::collections::HashMap<String, Vec<f64>>> {
                let mut data = std::collections::HashMap::new();
                for (name, _, view) in views {
                    data.insert(name, view.to_vec()?);
                }
                Ok(data)
            };
            let data = if gather_cells > 0 {
                counters.add_relayout_bytes((2 * gather_cells * 8) as u64);
                node.host().run(
                    "bin_relayout_gather",
                    devsim::KernelCost::bytes((2 * gather_cells * 8) as f64),
                    build,
                )?
            } else {
                build()?
            };
            Ok(Fetched::Host(data))
        }
        Some(d) => {
            let mut views = std::collections::HashMap::new();
            for name in vars {
                let col = column(table, name)?;
                views.insert(name.to_string(), (col.device_accessible(d, Pm::Cuda)?, ()));
            }
            for name in vars {
                column(table, name)?.synchronize()?;
            }
            // Grouped columns were packed dense in flight during upload;
            // surface the relayout traffic the buffer layer charged.
            let relayout_cells: usize = views.values().map(|(v, ())| v.relayout_cells()).sum();
            if relayout_cells > 0 {
                counters.add_relayout_bytes((2 * relayout_cells * 8) as u64);
            }
            let n = table.num_rows();
            let views = views.into_iter().map(|(k, (v, ()))| (k, v)).collect();
            Ok(Fetched::Device { views, n })
        }
    }
}

/// Hint that the snapshot's CoW shares may be released: every fetched
/// column has been materialized away from the snapshot's own
/// allocations (host fetches always copy into plain vectors, and device
/// fetches alias the snapshot only when access was granted in place).
/// Releasing early lets the producer's subsequent writes skip the fault
/// copy. The snapshot honors the hint only when this analysis is its
/// sole remaining consumer — other engines reading the same shared
/// snapshot keep their pins until the last one finishes.
pub(crate) fn release_if_materialized(data: &dyn DataAdaptor, fetched: &[Fetched]) {
    let detached = fetched.iter().all(|f| match f {
        Fetched::Host(_) => true,
        // Mapped columns alias the snapshot's own grouped block — the
        // zero-copy read is exactly what forbids an early release.
        Fetched::HostMapped { .. } => false,
        Fetched::Device { views, .. } => views.values().all(|v| !v.is_direct()),
    });
    if detached {
        data.release_shared();
    }
}

impl AnalysisAdaptor for BinningAnalysis {
    fn name(&self) -> &str {
        "data_binning"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn required_arrays(&self) -> DataRequirements {
        // Binning reads exactly the axis and operand columns of its mesh,
        // so an asynchronous snapshot need not copy anything else.
        DataRequirements::none().with_arrays(
            &self.spec.mesh,
            FieldAssociation::Point,
            self.spec.required_variables(),
        )
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        let allreduces_before = ctx.comm.allreduce_count();
        let mesh = data.mesh(&self.spec.mesh)?;
        let tables = local_tables(&mesh)?;
        let device = self.controls.resolve_device(ctx.comm.rank(), ctx.node.num_devices());

        // Fetch every required column once per table, then bin locally.
        let fetched: Vec<Fetched> =
            tables.iter().map(|t| self.fetch(t, device, ctx)).collect::<Result<_>>()?;
        release_if_materialized(data, &fetched);
        let (bx, by) = self.compute_bounds(&fetched, device, ctx)?;
        let grid = GridParams::new(
            self.spec.resolution.0,
            self.spec.resolution.1,
            [bx[0], by[0]],
            [bx[1], by[1]],
        );
        let local = self.bin_all_local(&fetched, grid, device, ctx)?;

        let mut arrays = Vec::with_capacity(self.spec.ops.len());
        if self.fused {
            // Cross-rank reduction: every grid (counts + all ops) shares a
            // single packed allreduce with per-segment merge semantics.
            let (ops, packed): (Vec<VarOp>, Vec<(BinOp, Vec<f64>)>) = local
                .into_iter()
                .map(|(vo, g)| {
                    let op = vo.op;
                    (vo, (op, g))
                })
                .unzip();
            let mut globals = reduce::allreduce_grids_packed(ctx.comm, packed)?.into_iter();
            let counts = globals.next().expect("counts are always computed");
            for (vo, mut global) in ops.into_iter().skip(1).zip(globals) {
                let values = if vo.op == BinOp::Count {
                    counts.clone()
                } else {
                    host_impl::finalize(vo.op, &mut global, &counts);
                    global
                };
                arrays.push((vo.output_name(), values));
            }
        } else {
            // Per-op reference: counts first (averages finalize with
            // them), then one allreduce per requested operation.
            let mut iter = local.into_iter();
            let (_, count_local) = iter.next().expect("counts are always computed");
            let counts = reduce::allreduce_grid(ctx.comm, BinOp::Count, count_local);

            for (vo, local_grid) in iter {
                let values = if vo.op == BinOp::Count {
                    counts.clone()
                } else {
                    let mut global = reduce::allreduce_grid(ctx.comm, vo.op, local_grid);
                    host_impl::finalize(vo.op, &mut global, &counts);
                    global
                };
                arrays.push((vo.output_name(), values));
            }
        }
        self.counters.add_allreduces(ctx.comm.allreduce_count() - allreduces_before);

        let result = BinnedResult {
            step: data.time_step(),
            time: data.time(),
            axes: self.spec.axes.clone(),
            grid,
            arrays,
        };
        if let Some(sink) = &self.sink {
            if ctx.comm.rank() == 0 {
                sink.lock().push(result.clone());
            }
        }
        self.last = Some(result);
        self.executes += 1;
        Ok(true)
    }

    fn finalize(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        if let (Some(dir), Some(result)) = (&self.output_dir, &self.last) {
            if ctx.comm.rank() == 0 {
                crate::io::write_result(dir, result)
                    .map_err(|e| Error::Analysis(format!("writing results: {e}")))?;
            }
        }
        Ok(())
    }

    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }
}

/// Register the `data_binning` back-end type with a registry, so XML
/// configurations can instantiate it.
pub fn register(registry: &mut AnalysisRegistry) {
    registry.register("data_binning", |el, _ctx| {
        let spec = BinningSpec::from_element(el)?;
        let mut analysis = BinningAnalysis::new(spec);
        if let Some(dir) = el.attr("output") {
            analysis = analysis.with_output_dir(dir);
        }
        if let Some(fused) = el.attr("fused") {
            analysis = analysis.with_fused(match fused {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                other => {
                    return Err(Error::Config(format!(
                        "data_binning fused attribute must be on/off, got '{other}'"
                    )))
                }
            });
        }
        Ok(Box::new(analysis))
    });
}
