//! The device (accelerator) binning implementation.
//!
//! Binning on a device requires atomic memory updates "to deal with races
//! between GPU threads accessing the same bin" (§4.4) — the kernel here
//! uses the simulated device's CAS-based `atomic_add`/`atomic_min`/
//! `atomic_max`, so concurrent kernels sharing an output buffer stay
//! correct, and the cost of atomic traffic is part of the kernel's
//! modeled service time.

use std::sync::Arc;

use devsim::{CellBuffer, KernelCost, SimNode, Stream};
use sensei::{Error, Result};

use crate::grid::GridParams;
use crate::host_impl::identity;
use crate::spec::BinOp;

/// Modeled cost of binning `n` rows: a few flops of index arithmetic per
/// row plus the reads of the coordinate/value columns and the atomic
/// read-modify-write on the bins.
pub fn bin_cost(n: usize) -> KernelCost {
    KernelCost { flops: 20.0 * n as f64, bytes: 5.0 * 8.0 * n as f64 }
}

/// Modeled cost of the fused pass binning `num_ops` operations over `n`
/// rows: the coordinate reads and index arithmetic are paid **once**,
/// then each op adds its value read and atomic bin update. With
/// `num_ops == 1` this is exactly [`bin_cost`]; for `k` ops it saves
/// `(k-1)` coordinate traversals and index recomputations (plus `k-1`
/// launch overheads, which the time model charges per launch).
pub fn fused_bin_cost(n: usize, num_ops: usize) -> KernelCost {
    let (n, k) = (n as f64, num_ops as f64);
    KernelCost { flops: (12.0 + 8.0 * k) * n, bytes: (16.0 + 24.0 * k) * n }
}

/// Layout-aware cost of the fused host pass. Scalar, AoS, and SoA run
/// the plain row loop and cost exactly [`fused_bin_cost`] — AoS strides
/// defeat the vector units and SoA is what the scalar columns already
/// are. An AoSoA group feeds the lane-blocked kernel whole contiguous
/// lanes: index arithmetic and accumulation vectorize across the lane
/// (flops divided by the effective lane width, capped at the simulated
/// 8-wide vector unit) and the streaming lane loads halve the effective
/// byte cost versus gathered column traversals.
pub fn fused_bin_cost_layout(n: usize, num_ops: usize, layout: hamr::Layout) -> KernelCost {
    let base = fused_bin_cost(n, num_ops);
    match layout {
        hamr::Layout::AoSoA { lane_width } => {
            let w = lane_width.clamp(1, 8) as f64;
            KernelCost { flops: base.flops / w, bytes: base.bytes / 2.0 }
        }
        _ => base,
    }
}

/// Layout-aware cost of the fused host bounds pass over `total` cells
/// (the sum of the traversed columns' lengths): byte-bound either way,
/// with AoSoA lane streaming halving the effective traffic.
pub fn fused_bounds_cost(total: usize, layout: hamr::Layout) -> KernelCost {
    let bytes = (total * 8) as f64;
    match layout {
        hamr::Layout::AoSoA { .. } => KernelCost::bytes(bytes / 2.0),
        _ => KernelCost::bytes(bytes),
    }
}

/// Bin one variable on `device`: allocates the per-bin accumulation
/// buffer on the device, initializes it to the reduction's identity, and
/// runs the binning kernel on `stream`. Returns the device-resident
/// accumulation buffer (synchronize the stream before copying it out).
///
/// `xs`, `ys`, and (for non-count ops) `values` must be resident on
/// `device` — obtain them with the HDA access API, which moves them only
/// if needed.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel-launch shape
pub fn bin_device(
    node: &Arc<SimNode>,
    device: usize,
    stream: &Arc<Stream>,
    xs: &CellBuffer,
    ys: &CellBuffer,
    values: Option<&CellBuffer>,
    op: BinOp,
    grid: GridParams,
) -> Result<CellBuffer> {
    let n = xs.len();
    if ys.len() != n {
        return Err(Error::Analysis("coordinate columns must be co-occurring".into()));
    }
    if op != BinOp::Count {
        match values {
            Some(v) if v.len() == n => {}
            Some(_) => return Err(Error::Analysis("value column must be co-occurring".into())),
            None => {
                return Err(Error::Analysis(format!(
                    "operation {} needs a value column",
                    op.name()
                )))
            }
        }
    }

    let bins = node.device(device)?.alloc_cells(grid.num_bins())?;

    // Initialize the accumulation buffer to the reduction identity.
    let init = identity(op);
    let bins_for_init = bins.clone();
    stream
        .launch("bin_init", KernelCost::bytes((grid.num_bins() * 8) as f64), move |scope| {
            bins_for_init.f64_view(scope)?.fill(init);
            Ok(())
        })
        .map_err(Error::Device)?;

    // The binning kernel proper.
    let xs = xs.clone();
    let ys = ys.clone();
    let values = values.cloned();
    let out = bins.clone();
    stream
        .launch("bin_reduce", bin_cost(n), move |scope| {
            let xv = xs.f64_view_ro(scope)?;
            let yv = ys.f64_view_ro(scope)?;
            let vv = values.as_ref().map(|v| v.f64_view_ro(scope)).transpose()?;
            let bv = out.f64_view(scope)?;
            for i in 0..xv.len() {
                let Some(b) = grid.bin_index(xv.get(i), yv.get(i)) else { continue };
                match op {
                    BinOp::Count => bv.atomic_add(b, 1.0),
                    BinOp::Sum | BinOp::Average => {
                        bv.atomic_add(b, vv.as_ref().expect("validated above").get(i))
                    }
                    BinOp::Min => bv.atomic_min(b, vv.as_ref().expect("validated above").get(i)),
                    BinOp::Max => bv.atomic_max(b, vv.as_ref().expect("validated above").get(i)),
                }
            }
            Ok(())
        })
        .map_err(Error::Device)?;

    Ok(bins)
}

/// Bin **all** of a coordinate system's operations in one batched kernel:
/// the packed accumulation buffer holds `ops.len()` grids back to back
/// (segment `i` belongs to `ops[i]`), the single launch initializes every
/// segment to its reduction identity and then walks the rows once,
/// computing each row's bin index once and scattering it into every
/// segment. Download the whole buffer with one `stream.copy` — one launch
/// plus one packed download per (coordinate system, fetched block),
/// versus two launches and one download *per op* with [`bin_device`].
///
/// The buffer is allocated stream-ordered on `stream`, so the caching
/// pool can recycle the previous step's block without a device-wide sync.
pub fn bin_all_device(
    node: &Arc<SimNode>,
    device: usize,
    stream: &Arc<Stream>,
    xs: &CellBuffer,
    ys: &CellBuffer,
    ops: &[(BinOp, Option<&CellBuffer>)],
    grid: GridParams,
) -> Result<CellBuffer> {
    let n = xs.len();
    if ys.len() != n {
        return Err(Error::Analysis("coordinate columns must be co-occurring".into()));
    }
    for (op, values) in ops {
        if *op != BinOp::Count {
            match values {
                Some(v) if v.len() == n => {}
                Some(_) => return Err(Error::Analysis("value column must be co-occurring".into())),
                None => {
                    return Err(Error::Analysis(format!(
                        "operation {} needs a value column",
                        op.name()
                    )))
                }
            }
        }
    }

    let num_bins = grid.num_bins();
    let packed =
        node.device(device)?.alloc_cells_on_stream(ops.len() * num_bins, stream.as_ref())?;

    let xs = xs.clone();
    let ys = ys.clone();
    let ops_owned: Vec<(BinOp, Option<CellBuffer>)> =
        ops.iter().map(|(op, v)| (*op, v.cloned())).collect();
    let out = packed.clone();
    let cost = fused_bin_cost(n, ops.len()) + KernelCost::bytes((ops.len() * num_bins * 8) as f64);
    stream
        .launch("bin_fused", cost, move |scope| {
            let xv = xs.f64_view_ro(scope)?;
            let yv = ys.f64_view_ro(scope)?;
            let views = ops_owned
                .iter()
                .map(|(_, v)| v.as_ref().map(|v| v.f64_view_ro(scope)).transpose())
                .collect::<std::result::Result<Vec<_>, _>>()?;
            let bv = out.f64_view(scope)?;
            for (seg, (op, _)) in ops_owned.iter().enumerate() {
                let init = identity(*op);
                for b in 0..num_bins {
                    bv.set(seg * num_bins + b, init);
                }
            }
            for i in 0..xv.len() {
                let Some(b) = grid.bin_index(xv.get(i), yv.get(i)) else { continue };
                for (seg, ((op, _), vv)) in ops_owned.iter().zip(&views).enumerate() {
                    let slot = seg * num_bins + b;
                    match op {
                        BinOp::Count => bv.atomic_add(slot, 1.0),
                        BinOp::Sum | BinOp::Average => {
                            bv.atomic_add(slot, vv.as_ref().expect("validated above").get(i))
                        }
                        BinOp::Min => {
                            bv.atomic_min(slot, vv.as_ref().expect("validated above").get(i))
                        }
                        BinOp::Max => {
                            bv.atomic_max(slot, vv.as_ref().expect("validated above").get(i))
                        }
                    }
                }
            }
            Ok(())
        })
        .map_err(Error::Device)?;

    Ok(packed)
}

/// Compute the minimum and maximum of a device-resident column — the
/// on-the-fly bounds computation of §4.2, run where the data lives.
/// Returns host values after synchronizing the reduction.
pub fn minmax_device(
    node: &Arc<SimNode>,
    device: usize,
    stream: &Arc<Stream>,
    col: &CellBuffer,
) -> Result<(f64, f64)> {
    let scratch = node.device(device)?.alloc_cells(2)?;
    let col2 = col.clone();
    let s2 = scratch.clone();
    stream
        .launch(
            "minmax",
            KernelCost { flops: 2.0 * col.len() as f64, bytes: 8.0 * col.len() as f64 },
            move |scope| {
                let c = col2.f64_view_ro(scope)?;
                let s = s2.f64_view(scope)?;
                s.set(0, f64::INFINITY);
                s.set(1, f64::NEG_INFINITY);
                for i in 0..c.len() {
                    let v = c.get(i);
                    if v.is_finite() {
                        s.atomic_min(0, v);
                        s.atomic_max(1, v);
                    }
                }
                Ok(())
            },
        )
        .map_err(Error::Device)?;
    let host = node.host_alloc_f64(2);
    stream.copy(&scratch, &host).map_err(Error::Device)?;
    stream.synchronize().map_err(Error::Device)?;
    let v = host.host_f64_ro().map_err(Error::Device)?;
    Ok((v.get(0), v.get(1)))
}

/// Fused min/max over several device-resident columns: one kernel walks
/// all columns and one packed download returns every `(lo, hi)` pair —
/// instead of one kernel + copy + sync per column. Columns may have
/// different lengths; empty columns return `(+inf, -inf)` like
/// [`crate::bounds::minmax_host`].
pub fn minmax_multi_device(
    node: &Arc<SimNode>,
    device: usize,
    stream: &Arc<Stream>,
    cols: &[&CellBuffer],
) -> Result<Vec<(f64, f64)>> {
    if cols.is_empty() {
        return Ok(Vec::new());
    }
    let scratch = node.device(device)?.alloc_cells_on_stream(2 * cols.len(), stream.as_ref())?;
    let cols_owned: Vec<CellBuffer> = cols.iter().map(|c| (*c).clone()).collect();
    let s2 = scratch.clone();
    let total_len: usize = cols.iter().map(|c| c.len()).sum();
    stream
        .launch(
            "minmax_fused",
            KernelCost { flops: 2.0 * total_len as f64, bytes: 8.0 * total_len as f64 },
            move |scope| {
                let s = s2.f64_view(scope)?;
                for (k, col) in cols_owned.iter().enumerate() {
                    let c = col.f64_view_ro(scope)?;
                    s.set(2 * k, f64::INFINITY);
                    s.set(2 * k + 1, f64::NEG_INFINITY);
                    for i in 0..c.len() {
                        let v = c.get(i);
                        if v.is_finite() {
                            s.atomic_min(2 * k, v);
                            s.atomic_max(2 * k + 1, v);
                        }
                    }
                }
                Ok(())
            },
        )
        .map_err(Error::Device)?;
    let host = node.host_alloc_f64(2 * cols.len());
    stream.copy(&scratch, &host).map_err(Error::Device)?;
    stream.synchronize().map_err(Error::Device)?;
    let v = host.host_f64_ro().map_err(Error::Device)?;
    Ok((0..cols.len()).map(|k| (v.get(2 * k), v.get(2 * k + 1))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_impl::bin_host;
    use devsim::NodeConfig;

    fn upload(
        node: &Arc<SimNode>,
        stream: &Arc<Stream>,
        device: usize,
        data: &[f64],
    ) -> CellBuffer {
        let host = node.host_alloc_f64(data.len());
        host.host_f64().unwrap().copy_from_slice(data);
        let dev = node.device(device).unwrap().alloc_f64(data.len()).unwrap();
        stream.copy(&host, &dev).unwrap();
        dev
    }

    fn download(node: &Arc<SimNode>, stream: &Arc<Stream>, buf: &CellBuffer) -> Vec<f64> {
        let host = node.host_alloc_f64(buf.len());
        stream.copy(buf, &host).unwrap();
        stream.synchronize().unwrap();
        host.host_f64_ro().unwrap().to_vec()
    }

    #[test]
    fn device_binning_matches_host_for_every_op() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let grid = GridParams::new(8, 8, [-1.0, -1.0], [1.0, 1.0]);

        // Pseudo-random but deterministic test data.
        let n = 500;
        let xs: Vec<f64> = (0..n).map(|i| ((i * 37 % 200) as f64 / 100.0) - 1.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 53 % 200) as f64 / 100.0) - 1.0).collect();
        let vs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 30.0).collect();

        let dx = upload(&node, &stream, 0, &xs);
        let dy = upload(&node, &stream, 0, &ys);
        let dv = upload(&node, &stream, 0, &vs);

        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average] {
            let vals = if op == BinOp::Count { None } else { Some(&dv) };
            let dbins = bin_device(&node, 0, &stream, &dx, &dy, vals, op, grid).unwrap();
            let got = download(&node, &stream, &dbins);
            let host_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let expect = bin_host(&xs, &ys, host_vals, op, &grid);
            for (b, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() < 1e-9 || (g.is_infinite() && e.is_infinite()),
                    "op {:?} bin {b}: device {g} vs host {e}",
                    op
                );
            }
        }
    }

    #[test]
    fn fused_device_binning_matches_per_op_device_binning_bitwise() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let grid = GridParams::new(8, 8, [-1.0, -1.0], [1.0, 1.0]);

        let n = 500;
        let xs: Vec<f64> = (0..n).map(|i| ((i * 37 % 200) as f64 / 100.0) - 1.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 53 % 200) as f64 / 100.0) - 1.0).collect();
        let vs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 30.0).collect();

        let dx = upload(&node, &stream, 0, &xs);
        let dy = upload(&node, &stream, 0, &ys);
        let dv = upload(&node, &stream, 0, &vs);

        let all = [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average];
        let ops: Vec<(BinOp, Option<&CellBuffer>)> =
            all.iter().map(|&op| (op, if op == BinOp::Count { None } else { Some(&dv) })).collect();
        let packed = bin_all_device(&node, 0, &stream, &dx, &dy, &ops, grid).unwrap();
        assert_eq!(packed.len(), all.len() * grid.num_bins());
        let fused = download(&node, &stream, &packed);

        for (seg, &op) in all.iter().enumerate() {
            let vals = if op == BinOp::Count { None } else { Some(&dv) };
            let dbins = bin_device(&node, 0, &stream, &dx, &dy, vals, op, grid).unwrap();
            let reference = download(&node, &stream, &dbins);
            let got = &fused[seg * grid.num_bins()..(seg + 1) * grid.num_bins()];
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "op {op:?}"
            );
        }
    }

    #[test]
    fn fused_device_binning_validates_inputs() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let grid = GridParams::new(2, 2, [0.0, 0.0], [1.0, 1.0]);
        let a = node.device(0).unwrap().alloc_f64(4).unwrap();
        let b = node.device(0).unwrap().alloc_f64(3).unwrap();
        let count_only: [(BinOp, Option<&CellBuffer>); 1] = [(BinOp::Count, None)];
        assert!(bin_all_device(&node, 0, &stream, &a, &b, &count_only, grid).is_err());
        let missing: [(BinOp, Option<&CellBuffer>); 1] = [(BinOp::Sum, None)];
        assert!(bin_all_device(&node, 0, &stream, &a, &a, &missing, grid).is_err());
        let short: [(BinOp, Option<&CellBuffer>); 1] = [(BinOp::Sum, Some(&b))];
        assert!(bin_all_device(&node, 0, &stream, &a, &a, &short, grid).is_err());
    }

    #[test]
    fn fused_cost_matches_per_op_cost_for_single_op() {
        assert_eq!(fused_bin_cost(1000, 1), bin_cost(1000));
        let k = 10;
        let fused = fused_bin_cost(1000, k);
        let per_op = bin_cost(1000);
        assert!(fused.flops < k as f64 * per_op.flops);
        assert!(fused.bytes < k as f64 * per_op.bytes);
    }

    #[test]
    fn fused_minmax_matches_per_column_reduction() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let a = upload(&node, &stream, 0, &[3.5, -1.25, 7.0, 0.0, 2.5]);
        let b = upload(&node, &stream, 0, &[10.0, -10.0]);
        let got = minmax_multi_device(&node, 0, &stream, &[&a, &b]).unwrap();
        assert_eq!(got, vec![(-1.25, 7.0), (-10.0, 10.0)]);
        assert!(minmax_multi_device(&node, 0, &stream, &[]).unwrap().is_empty());
    }

    #[test]
    fn minmax_matches_scalar_reduction() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let data = [3.5, -1.25, 7.0, 0.0, 2.5];
        let d = upload(&node, &stream, 0, &data);
        let (lo, hi) = minmax_device(&node, 0, &stream, &d).unwrap();
        assert_eq!(lo, -1.25);
        assert_eq!(hi, 7.0);
    }

    #[test]
    fn validation_errors() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let grid = GridParams::new(2, 2, [0.0, 0.0], [1.0, 1.0]);
        let a = node.device(0).unwrap().alloc_f64(4).unwrap();
        let b = node.device(0).unwrap().alloc_f64(3).unwrap();
        assert!(bin_device(&node, 0, &stream, &a, &b, None, BinOp::Count, grid).is_err());
        assert!(bin_device(&node, 0, &stream, &a, &a, None, BinOp::Sum, grid).is_err());
        assert!(bin_device(&node, 0, &stream, &a, &a, Some(&b), BinOp::Sum, grid).is_err());
    }

    #[test]
    fn wrong_device_surfaces_as_stream_error() {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let stream = node.device(1).unwrap().create_stream();
        let grid = GridParams::new(2, 2, [0.0, 0.0], [1.0, 1.0]);
        // Buffers live on device 0, kernel launched on device 1.
        let a = node.device(0).unwrap().alloc_f64(4).unwrap();
        bin_device(&node, 1, &stream, &a, &a, None, BinOp::Count, grid).unwrap();
        assert!(stream.synchronize().is_err());
    }
}
