//! Output writers: portable graymap (PGM) images and CSV dumps of binned
//! grids — the post hoc artifacts behind the paper's Figure 1 panels.

use std::io::Write;
use std::path::Path;

use crate::adaptor::BinnedResult;

/// Render a grid as an 8-bit PGM, normalizing finite values to 0..255
/// (NaN/empty bins render black). `log_scale` applies `ln(1 + v)` first,
/// which is how the paper's mass-sum panels are typically displayed.
pub fn to_pgm(nx: usize, ny: usize, values: &[f64], log_scale: bool) -> Vec<u8> {
    assert_eq!(values.len(), nx * ny, "grid shape mismatch");
    let xform = |v: f64| if log_scale { (1.0 + v.max(0.0)).ln() } else { v };
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).map(xform).collect();
    let (lo, hi) =
        finite.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
    let span = if hi > lo { hi - lo } else { 1.0 };

    let mut out = Vec::with_capacity(32 + nx * ny);
    out.extend_from_slice(format!("P5\n{nx} {ny}\n255\n").as_bytes());
    // PGM rows go top to bottom; our grids are y-up, so flip.
    for j in (0..ny).rev() {
        for i in 0..nx {
            let v = values[j * nx + i];
            let px = if v.is_finite() {
                (((xform(v) - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8
            } else {
                0
            };
            out.push(px);
        }
    }
    out
}

/// Dump a grid as CSV (one row per y index, x fastest).
pub fn to_csv(nx: usize, ny: usize, values: &[f64]) -> String {
    assert_eq!(values.len(), nx * ny, "grid shape mismatch");
    let mut out = String::new();
    for j in 0..ny {
        for i in 0..nx {
            if i > 0 {
                out.push(',');
            }
            let v = values[j * nx + i];
            if v.is_nan() {
                out.push_str("nan");
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Write every output array of a result into `dir` as
/// `<axes>_<name>.pgm` and `.csv`.
pub fn write_result(dir: &Path, result: &BinnedResult) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let (nx, ny) = (result.grid.nx, result.grid.ny);
    for (name, values) in &result.arrays {
        let stem = format!("{}_{}_{}", result.axes.0, result.axes.1, name);
        let mut pgm = std::fs::File::create(dir.join(format!("{stem}.pgm")))?;
        pgm.write_all(&to_pgm(nx, ny, values, true))?;
        std::fs::write(dir.join(format!("{stem}.csv")), to_csv(nx, ny, values))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_size() {
        let img = to_pgm(4, 2, &[0.0; 8], false);
        assert!(img.starts_with(b"P5\n4 2\n255\n"));
        assert_eq!(img.len(), b"P5\n4 2\n255\n".len() + 8);
    }

    #[test]
    fn pgm_normalizes_range_and_flips_y() {
        // 2x2 grid: bottom row 0, top row 10 -> first output row (top) white.
        let img = to_pgm(2, 2, &[0.0, 0.0, 10.0, 10.0], false);
        let pixels = &img[img.len() - 4..];
        assert_eq!(pixels, &[255, 255, 0, 0]);
    }

    #[test]
    fn pgm_nan_renders_black_and_constant_grid_is_uniform() {
        let img = to_pgm(2, 1, &[f64::NAN, 5.0], false);
        let pixels = &img[img.len() - 2..];
        assert_eq!(pixels[0], 0);
        // Single finite value: span fallback avoids division by zero and
        // maps the value to the bottom of the range.
        assert_eq!(pixels[1], 0);
    }

    #[test]
    fn csv_layout() {
        let csv = to_csv(2, 2, &[1.0, 2.0, 3.0, f64::NAN]);
        assert_eq!(csv, "1,2\n3,nan\n");
    }

    #[test]
    fn write_result_creates_files() {
        let dir = std::env::temp_dir().join(format!("binning_io_test_{}", std::process::id()));
        let result = BinnedResult {
            step: 3,
            time: 1.5,
            axes: ("x".into(), "y".into()),
            grid: crate::GridParams::new(2, 2, [0.0, 0.0], [1.0, 1.0]),
            arrays: vec![("count".into(), vec![1.0, 2.0, 3.0, 4.0])],
        };
        write_result(&dir, &result).unwrap();
        assert!(dir.join("x_y_count.pgm").exists());
        assert!(dir.join("x_y_count.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
