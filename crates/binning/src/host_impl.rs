//! The host (CPU) binning implementation.

use crate::grid::GridParams;
use crate::spec::BinOp;

/// Initial value for a reduction's accumulation buffer.
pub fn identity(op: BinOp) -> f64 {
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => 0.0,
        BinOp::Min => f64::INFINITY,
        BinOp::Max => f64::NEG_INFINITY,
    }
}

/// Fold one value into an accumulator.
#[inline]
pub fn accumulate(op: BinOp, acc: f64, v: f64) -> f64 {
    match op {
        BinOp::Count => acc + 1.0,
        BinOp::Sum | BinOp::Average => acc + v,
        BinOp::Min => acc.min(v),
        BinOp::Max => acc.max(v),
    }
}

/// Bin one variable on the host: returns the per-bin accumulation buffer
/// (average returns the running sum; finalize with the count separately).
///
/// `values` may be empty for [`BinOp::Count`]. Rows outside the mesh are
/// dropped, as in the paper's implementation.
///
/// # Panics
/// Panics when the coordinate arrays' lengths differ, or a non-count
/// reduction's value array length differs from the coordinates.
pub fn bin_host(xs: &[f64], ys: &[f64], values: &[f64], op: BinOp, grid: &GridParams) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    if op != BinOp::Count {
        assert_eq!(values.len(), xs.len(), "value column must be co-occurring");
    }
    let mut bins = vec![identity(op); grid.num_bins()];
    for i in 0..xs.len() {
        if let Some(b) = grid.bin_index(xs[i], ys[i]) {
            let v = if op == BinOp::Count { 0.0 } else { values[i] };
            bins[b] = accumulate(op, bins[b], v);
        }
    }
    bins
}

/// Fused single-pass binning: compute each row's bin index once and
/// scatter it into **every** operation's grid, instead of re-traversing
/// the coordinate columns once per operation. `ops[i]` pairs a reduction
/// with its value column (`None` for [`BinOp::Count`]); the returned
/// grids are index-aligned with `ops`.
///
/// Accumulation visits rows in the same order as [`bin_host`], so each
/// returned grid is bit-identical to the corresponding per-op result.
///
/// # Panics
/// Panics when the coordinate arrays' lengths differ, a non-count
/// reduction's value column is missing, or its length differs from the
/// coordinates.
pub fn bin_all_host(
    xs: &[f64],
    ys: &[f64],
    ops: &[(BinOp, Option<&[f64]>)],
    grid: &GridParams,
) -> Vec<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    for (op, values) in ops {
        if *op != BinOp::Count {
            let v =
                values.unwrap_or_else(|| panic!("operation {} needs a value column", op.name()));
            assert_eq!(v.len(), xs.len(), "value column must be co-occurring");
        }
    }
    let mut grids: Vec<Vec<f64>> =
        ops.iter().map(|(op, _)| vec![identity(*op); grid.num_bins()]).collect();
    for i in 0..xs.len() {
        let Some(b) = grid.bin_index(xs[i], ys[i]) else { continue };
        for ((op, values), bins) in ops.iter().zip(grids.iter_mut()) {
            let v = match values {
                Some(values) if *op != BinOp::Count => values[i],
                _ => 0.0,
            };
            bins[b] = accumulate(*op, bins[b], v);
        }
    }
    grids
}

/// Finalize an accumulation buffer into presentable values:
/// * min/max: bins that never saw a value become NaN;
/// * average: running sum divided by count (NaN where count is zero);
/// * count/sum: unchanged.
pub fn finalize(op: BinOp, bins: &mut [f64], counts: &[f64]) {
    match op {
        BinOp::Count | BinOp::Sum => {}
        BinOp::Min => {
            for b in bins.iter_mut() {
                if *b == f64::INFINITY {
                    *b = f64::NAN;
                }
            }
        }
        BinOp::Max => {
            for b in bins.iter_mut() {
                if *b == f64::NEG_INFINITY {
                    *b = f64::NAN;
                }
            }
        }
        BinOp::Average => {
            assert_eq!(bins.len(), counts.len(), "average needs a matching count buffer");
            for (b, &c) in bins.iter_mut().zip(counts) {
                *b = if c > 0.0 { *b / c } else { f64::NAN };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x2() -> GridParams {
        GridParams::new(2, 2, [0.0, 0.0], [2.0, 2.0])
    }

    // Four points, one per quadrant cell, values 10/20/30/40.
    const XS: [f64; 4] = [0.5, 1.5, 0.5, 1.5];
    const YS: [f64; 4] = [0.5, 0.5, 1.5, 1.5];
    const VS: [f64; 4] = [10.0, 20.0, 30.0, 40.0];

    #[test]
    fn count_histogram() {
        let bins = bin_host(&XS, &YS, &[], BinOp::Count, &grid2x2());
        assert_eq!(bins, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn sum_per_bin() {
        let bins = bin_host(&XS, &YS, &VS, BinOp::Sum, &grid2x2());
        assert_eq!(bins, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn min_max_and_empty_bins() {
        // All four points into cell 0.
        let xs = [0.1, 0.2, 0.3, 0.4];
        let ys = [0.1, 0.2, 0.3, 0.4];
        let g = grid2x2();
        let mut mins = bin_host(&xs, &ys, &VS, BinOp::Min, &g);
        let mut maxs = bin_host(&xs, &ys, &VS, BinOp::Max, &g);
        let counts = bin_host(&xs, &ys, &[], BinOp::Count, &g);
        finalize(BinOp::Min, &mut mins, &counts);
        finalize(BinOp::Max, &mut maxs, &counts);
        assert_eq!(mins[0], 10.0);
        assert_eq!(maxs[0], 40.0);
        for b in 1..4 {
            assert!(mins[b].is_nan(), "empty bin min must be NaN");
            assert!(maxs[b].is_nan(), "empty bin max must be NaN");
        }
    }

    #[test]
    fn average_divides_by_count() {
        let xs = [0.5, 0.6, 1.5];
        let ys = [0.5, 0.6, 1.7];
        let vs = [2.0, 4.0, 9.0];
        let g = grid2x2();
        let counts = bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let mut avg = bin_host(&xs, &ys, &vs, BinOp::Average, &g);
        finalize(BinOp::Average, &mut avg, &counts);
        assert_eq!(avg[0], 3.0);
        assert_eq!(avg[3], 9.0);
        assert!(avg[1].is_nan() && avg[2].is_nan());
    }

    #[test]
    fn out_of_range_rows_are_dropped() {
        let xs = [0.5, 10.0, f64::NAN];
        let ys = [0.5, 0.5, 0.5];
        let vs = [1.0, 2.0, 3.0];
        let bins = bin_host(&xs, &ys, &vs, BinOp::Sum, &grid2x2());
        assert_eq!(bins.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn empty_input_yields_identity_grid() {
        let bins = bin_host(&[], &[], &[], BinOp::Count, &grid2x2());
        assert_eq!(bins, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "co-occurring")]
    fn mismatched_columns_panic() {
        bin_host(&[1.0], &[1.0, 2.0], &[], BinOp::Count, &grid2x2());
    }

    #[test]
    fn fused_pass_matches_per_op_reference_bitwise() {
        let g = grid2x2();
        let ops: Vec<(BinOp, Option<&[f64]>)> = vec![
            (BinOp::Count, None),
            (BinOp::Sum, Some(&VS)),
            (BinOp::Min, Some(&VS)),
            (BinOp::Max, Some(&VS)),
            (BinOp::Average, Some(&VS)),
        ];
        let fused = bin_all_host(&XS, &YS, &ops, &g);
        for ((op, values), fused_grid) in ops.iter().zip(&fused) {
            let reference = bin_host(&XS, &YS, values.unwrap_or(&[]), *op, &g);
            assert_eq!(
                fused_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "op {op:?}"
            );
        }
    }

    #[test]
    fn fused_pass_on_empty_input_yields_identities() {
        let ops: Vec<(BinOp, Option<&[f64]>)> =
            vec![(BinOp::Count, None), (BinOp::Min, Some(&[])), (BinOp::Max, Some(&[]))];
        let fused = bin_all_host(&[], &[], &ops, &grid2x2());
        assert_eq!(fused[0], vec![0.0; 4]);
        assert_eq!(fused[1], vec![f64::INFINITY; 4]);
        assert_eq!(fused[2], vec![f64::NEG_INFINITY; 4]);
    }

    #[test]
    #[should_panic(expected = "needs a value column")]
    fn fused_pass_rejects_missing_value_column() {
        bin_all_host(&XS, &YS, &[(BinOp::Sum, None)], &grid2x2());
    }
}
