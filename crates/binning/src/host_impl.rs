//! The host (CPU) binning implementation.

use hamr::{LayoutMap, Mapping};

use crate::grid::GridParams;
use crate::spec::BinOp;

/// A column for the layout-polymorphic host kernels: a shared backing
/// block read through a [`LayoutMap`] (identity-mapped for plain dense
/// columns). Reads go through the host view's atomic cells, so a kernel
/// can consume a layout group's interleaved block zero-copy.
pub struct MappedCol {
    view: devsim::HostF64View,
    map: LayoutMap,
}

impl MappedCol {
    /// A column over `view` read through `map`.
    pub fn new(view: devsim::HostF64View, map: LayoutMap) -> Self {
        MappedCol { view, map }
    }

    /// A plain dense column of `len` elements (identity mapping).
    pub fn dense(view: devsim::HostF64View, len: usize) -> Self {
        MappedCol { view, map: LayoutMap::new(hamr::Layout::Scalar, len, 1, 0) }
    }

    /// The layout mapping the column reads through.
    pub fn map(&self) -> &LayoutMap {
        &self.map
    }

    /// Logical element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.view.get(self.map.index(i))
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Initial value for a reduction's accumulation buffer.
pub fn identity(op: BinOp) -> f64 {
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => 0.0,
        BinOp::Min => f64::INFINITY,
        BinOp::Max => f64::NEG_INFINITY,
    }
}

/// Fold one value into an accumulator.
#[inline]
pub fn accumulate(op: BinOp, acc: f64, v: f64) -> f64 {
    match op {
        BinOp::Count => acc + 1.0,
        BinOp::Sum | BinOp::Average => acc + v,
        BinOp::Min => acc.min(v),
        BinOp::Max => acc.max(v),
    }
}

/// Bin one variable on the host: returns the per-bin accumulation buffer
/// (average returns the running sum; finalize with the count separately).
///
/// `values` may be empty for [`BinOp::Count`]. Rows outside the mesh are
/// dropped, as in the paper's implementation.
///
/// # Panics
/// Panics when the coordinate arrays' lengths differ, or a non-count
/// reduction's value array length differs from the coordinates.
pub fn bin_host(xs: &[f64], ys: &[f64], values: &[f64], op: BinOp, grid: &GridParams) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    if op != BinOp::Count {
        assert_eq!(values.len(), xs.len(), "value column must be co-occurring");
    }
    let mut bins = vec![identity(op); grid.num_bins()];
    for i in 0..xs.len() {
        if let Some(b) = grid.bin_index(xs[i], ys[i]) {
            let v = if op == BinOp::Count { 0.0 } else { values[i] };
            bins[b] = accumulate(op, bins[b], v);
        }
    }
    bins
}

/// Fused single-pass binning: compute each row's bin index once and
/// scatter it into **every** operation's grid, instead of re-traversing
/// the coordinate columns once per operation. `ops[i]` pairs a reduction
/// with its value column (`None` for [`BinOp::Count`]); the returned
/// grids are index-aligned with `ops`.
///
/// Accumulation visits rows in the same order as [`bin_host`], so each
/// returned grid is bit-identical to the corresponding per-op result.
///
/// # Panics
/// Panics when the coordinate arrays' lengths differ, a non-count
/// reduction's value column is missing, or its length differs from the
/// coordinates.
pub fn bin_all_host(
    xs: &[f64],
    ys: &[f64],
    ops: &[(BinOp, Option<&[f64]>)],
    grid: &GridParams,
) -> Vec<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    for (op, values) in ops {
        if *op != BinOp::Count {
            let v =
                values.unwrap_or_else(|| panic!("operation {} needs a value column", op.name()));
            assert_eq!(v.len(), xs.len(), "value column must be co-occurring");
        }
    }
    let mut grids: Vec<Vec<f64>> =
        ops.iter().map(|(op, _)| vec![identity(*op); grid.num_bins()]).collect();
    for i in 0..xs.len() {
        let Some(b) = grid.bin_index(xs[i], ys[i]) else { continue };
        for ((op, values), bins) in ops.iter().zip(grids.iter_mut()) {
            let v = match values {
                Some(values) if *op != BinOp::Count => values[i],
                _ => 0.0,
            };
            bins[b] = accumulate(*op, bins[b], v);
        }
    }
    grids
}

/// [`bin_host`] over layout-mapped columns: the per-op reference kernel
/// for grouped tables. Row order (and therefore every accumulation) is
/// identical to the dense kernel, so the result is bit-identical to
/// [`bin_host`] over the same logical values.
///
/// # Panics
/// Panics when the coordinate columns' lengths differ, or a non-count
/// reduction's value column length differs from the coordinates.
pub fn bin_host_mapped(
    xs: &MappedCol,
    ys: &MappedCol,
    values: Option<&MappedCol>,
    op: BinOp,
    grid: &GridParams,
) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    if op != BinOp::Count {
        let v = values.unwrap_or_else(|| panic!("operation {} needs a value column", op.name()));
        assert_eq!(v.len(), xs.len(), "value column must be co-occurring");
    }
    let mut bins = vec![identity(op); grid.num_bins()];
    for i in 0..xs.len() {
        if let Some(b) = grid.bin_index(xs.get(i), ys.get(i)) {
            let v = match values {
                Some(values) if op != BinOp::Count => values.get(i),
                _ => 0.0,
            };
            bins[b] = accumulate(op, bins[b], v);
        }
    }
    bins
}

/// Fused single-pass binning over layout-mapped columns with an explicit
/// lane-blocked inner loop — the vectorized path for AoSoA groups.
///
/// Rows are processed in lane-width blocks: one lane pass computes the
/// block's bin indices (the vectorizable part — for an AoSoA group the
/// lane's coordinates are contiguous in the backing block), then each
/// op scatters the block's rows in ascending order. Because every
/// `(op, bin)` accumulator still sees its rows in ascending global row
/// order, each returned grid is **bit-identical** to [`bin_all_host`]
/// over the same logical values — including the ragged final block when
/// the row count is not a lane multiple. The lane width comes from the
/// coordinate column's layout (1 for scalar/AoS/SoA, i.e. a plain loop).
///
/// # Panics
/// Panics when the coordinate columns' lengths differ, a non-count
/// reduction's value column is missing, or its length differs from the
/// coordinates.
pub fn bin_all_host_lanes(
    xs: &MappedCol,
    ys: &MappedCol,
    ops: &[(BinOp, Option<&MappedCol>)],
    grid: &GridParams,
) -> Vec<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "coordinate columns must be co-occurring");
    for (op, values) in ops {
        if *op != BinOp::Count {
            let v =
                values.unwrap_or_else(|| panic!("operation {} needs a value column", op.name()));
            assert_eq!(v.len(), xs.len(), "value column must be co-occurring");
        }
    }
    let n = xs.len();
    let lane = xs.map().layout().lane_width().max(1);
    let mut grids: Vec<Vec<f64>> =
        ops.iter().map(|(op, _)| vec![identity(*op); grid.num_bins()]).collect();
    // Per-lane scratch: the block's bin indices, None for dropped rows.
    let mut bidx: Vec<Option<usize>> = vec![None; lane];
    let mut start = 0;
    while start < n {
        let m = lane.min(n - start);
        // Lane pass 1: bin indices for the whole block.
        for (l, slot) in bidx.iter_mut().take(m).enumerate() {
            let i = start + l;
            *slot = grid.bin_index(xs.get(i), ys.get(i));
        }
        // Lane pass 2: per op, scatter the block's rows in ascending
        // order (each (op, bin) accumulator folds rows in global row
        // order, which is what keeps the grids bit-identical).
        for ((op, values), bins) in ops.iter().zip(grids.iter_mut()) {
            for (l, slot) in bidx.iter().take(m).enumerate() {
                let Some(b) = *slot else { continue };
                let v = match values {
                    Some(values) if *op != BinOp::Count => values.get(start + l),
                    _ => 0.0,
                };
                bins[b] = accumulate(*op, bins[b], v);
            }
        }
        start += m;
    }
    grids
}

/// Finalize an accumulation buffer into presentable values:
/// * min/max: bins that never saw a value become NaN;
/// * average: running sum divided by count (NaN where count is zero);
/// * count/sum: unchanged.
pub fn finalize(op: BinOp, bins: &mut [f64], counts: &[f64]) {
    match op {
        BinOp::Count | BinOp::Sum => {}
        BinOp::Min => {
            for b in bins.iter_mut() {
                if *b == f64::INFINITY {
                    *b = f64::NAN;
                }
            }
        }
        BinOp::Max => {
            for b in bins.iter_mut() {
                if *b == f64::NEG_INFINITY {
                    *b = f64::NAN;
                }
            }
        }
        BinOp::Average => {
            assert_eq!(bins.len(), counts.len(), "average needs a matching count buffer");
            for (b, &c) in bins.iter_mut().zip(counts) {
                *b = if c > 0.0 { *b / c } else { f64::NAN };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x2() -> GridParams {
        GridParams::new(2, 2, [0.0, 0.0], [2.0, 2.0])
    }

    // Four points, one per quadrant cell, values 10/20/30/40.
    const XS: [f64; 4] = [0.5, 1.5, 0.5, 1.5];
    const YS: [f64; 4] = [0.5, 0.5, 1.5, 1.5];
    const VS: [f64; 4] = [10.0, 20.0, 30.0, 40.0];

    #[test]
    fn count_histogram() {
        let bins = bin_host(&XS, &YS, &[], BinOp::Count, &grid2x2());
        assert_eq!(bins, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn sum_per_bin() {
        let bins = bin_host(&XS, &YS, &VS, BinOp::Sum, &grid2x2());
        assert_eq!(bins, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn min_max_and_empty_bins() {
        // All four points into cell 0.
        let xs = [0.1, 0.2, 0.3, 0.4];
        let ys = [0.1, 0.2, 0.3, 0.4];
        let g = grid2x2();
        let mut mins = bin_host(&xs, &ys, &VS, BinOp::Min, &g);
        let mut maxs = bin_host(&xs, &ys, &VS, BinOp::Max, &g);
        let counts = bin_host(&xs, &ys, &[], BinOp::Count, &g);
        finalize(BinOp::Min, &mut mins, &counts);
        finalize(BinOp::Max, &mut maxs, &counts);
        assert_eq!(mins[0], 10.0);
        assert_eq!(maxs[0], 40.0);
        for b in 1..4 {
            assert!(mins[b].is_nan(), "empty bin min must be NaN");
            assert!(maxs[b].is_nan(), "empty bin max must be NaN");
        }
    }

    #[test]
    fn average_divides_by_count() {
        let xs = [0.5, 0.6, 1.5];
        let ys = [0.5, 0.6, 1.7];
        let vs = [2.0, 4.0, 9.0];
        let g = grid2x2();
        let counts = bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let mut avg = bin_host(&xs, &ys, &vs, BinOp::Average, &g);
        finalize(BinOp::Average, &mut avg, &counts);
        assert_eq!(avg[0], 3.0);
        assert_eq!(avg[3], 9.0);
        assert!(avg[1].is_nan() && avg[2].is_nan());
    }

    #[test]
    fn out_of_range_rows_are_dropped() {
        let xs = [0.5, 10.0, f64::NAN];
        let ys = [0.5, 0.5, 0.5];
        let vs = [1.0, 2.0, 3.0];
        let bins = bin_host(&xs, &ys, &vs, BinOp::Sum, &grid2x2());
        assert_eq!(bins.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn empty_input_yields_identity_grid() {
        let bins = bin_host(&[], &[], &[], BinOp::Count, &grid2x2());
        assert_eq!(bins, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "co-occurring")]
    fn mismatched_columns_panic() {
        bin_host(&[1.0], &[1.0, 2.0], &[], BinOp::Count, &grid2x2());
    }

    #[test]
    fn fused_pass_matches_per_op_reference_bitwise() {
        let g = grid2x2();
        let ops: Vec<(BinOp, Option<&[f64]>)> = vec![
            (BinOp::Count, None),
            (BinOp::Sum, Some(&VS)),
            (BinOp::Min, Some(&VS)),
            (BinOp::Max, Some(&VS)),
            (BinOp::Average, Some(&VS)),
        ];
        let fused = bin_all_host(&XS, &YS, &ops, &g);
        for ((op, values), fused_grid) in ops.iter().zip(&fused) {
            let reference = bin_host(&XS, &YS, values.unwrap_or(&[]), *op, &g);
            assert_eq!(
                fused_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "op {op:?}"
            );
        }
    }

    #[test]
    fn fused_pass_on_empty_input_yields_identities() {
        let ops: Vec<(BinOp, Option<&[f64]>)> =
            vec![(BinOp::Count, None), (BinOp::Min, Some(&[])), (BinOp::Max, Some(&[]))];
        let fused = bin_all_host(&[], &[], &ops, &grid2x2());
        assert_eq!(fused[0], vec![0.0; 4]);
        assert_eq!(fused[1], vec![f64::INFINITY; 4]);
        assert_eq!(fused[2], vec![f64::NEG_INFINITY; 4]);
    }

    #[test]
    #[should_panic(expected = "needs a value column")]
    fn fused_pass_rejects_missing_value_column() {
        bin_all_host(&XS, &YS, &[(BinOp::Sum, None)], &grid2x2());
    }

    /// Pack `fields` (all the same length) into one backing block laid
    /// out by `layout`, returning one mapped column per field.
    fn group(
        node: &std::sync::Arc<devsim::SimNode>,
        layout: hamr::Layout,
        fields: &[&[f64]],
    ) -> Vec<MappedCol> {
        let n = fields[0].len();
        let block = node.host_alloc_f64(layout.block_cells(n, fields.len()));
        let view = block.host_f64().unwrap();
        let mut cols = Vec::with_capacity(fields.len());
        for (f, vals) in fields.iter().enumerate() {
            let map = LayoutMap::new(layout, n, fields.len(), f);
            for (i, &v) in vals.iter().enumerate() {
                view.set(map.index(i), v);
            }
            cols.push(MappedCol::new(block.host_f64().unwrap(), map));
        }
        cols
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_scalar_across_layouts() {
        let node = devsim::SimNode::new(devsim::NodeConfig::fast_test(1));
        // n = 7: not a multiple of lane 4 or 8, forcing a ragged tail.
        let xs: Vec<f64> = vec![0.5, 1.5, 0.5, 1.5, 0.5, 10.0, f64::NAN];
        let ys: Vec<f64> = vec![0.5, 0.5, 1.5, 1.5, 0.7, 0.5, 0.5];
        let vs: Vec<f64> = vec![10.0, 20.0, 30.0, -40.0, 5.5, 7.0, 8.0];
        let g = grid2x2();
        let ops: Vec<(BinOp, Option<&[f64]>)> = vec![
            (BinOp::Count, None),
            (BinOp::Sum, Some(&vs)),
            (BinOp::Min, Some(&vs)),
            (BinOp::Max, Some(&vs)),
            (BinOp::Average, Some(&vs)),
        ];
        let reference = bin_all_host(&xs, &ys, &ops, &g);

        // Scalar is exercised through the dense (identity-mapped) path;
        // a multi-field group needs an interleaving layout.
        let dense_cols: Vec<MappedCol> = [&xs, &ys, &vs]
            .iter()
            .map(|vals| {
                let buf = node.host_alloc_f64(vals.len());
                let view = buf.host_f64().unwrap();
                for (i, &v) in vals.iter().enumerate() {
                    view.set(i, v);
                }
                MappedCol::dense(buf.host_f64().unwrap(), vals.len())
            })
            .collect();
        let dense_ops: Vec<(BinOp, Option<&MappedCol>)> =
            ops.iter().map(|(op, v)| (*op, v.map(|_| &dense_cols[2]))).collect();
        let dense = bin_all_host_lanes(&dense_cols[0], &dense_cols[1], &dense_ops, &g);
        for (lane_grid, ref_grid) in dense.iter().zip(&reference) {
            assert_eq!(
                lane_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "dense identity mapping"
            );
        }

        for layout in [
            hamr::Layout::AoS,
            hamr::Layout::SoA,
            hamr::Layout::AoSoA { lane_width: 1 },
            hamr::Layout::AoSoA { lane_width: 4 },
            hamr::Layout::AoSoA { lane_width: 8 },
        ] {
            let cols = group(&node, layout, &[&xs, &ys, &vs]);
            let mops: Vec<(BinOp, Option<&MappedCol>)> =
                ops.iter().map(|(op, v)| (*op, v.map(|_| &cols[2]))).collect();
            let lanes = bin_all_host_lanes(&cols[0], &cols[1], &mops, &g);
            for ((op, _), (lane_grid, ref_grid)) in ops.iter().zip(lanes.iter().zip(&reference)) {
                assert_eq!(
                    lane_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ref_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} under {}",
                    op.name(),
                    layout.name()
                );
                // The per-op mapped reference agrees too.
                let per_op = bin_host_mapped(
                    &cols[0],
                    &cols[1],
                    (*op != BinOp::Count).then_some(&cols[2]),
                    *op,
                    &g,
                );
                assert_eq!(
                    per_op.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ref_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "per-op {} under {}",
                    op.name(),
                    layout.name()
                );
            }
        }
    }

    #[test]
    fn mapped_bounds_match_dense_bounds_bitwise() {
        let node = devsim::SimNode::new(devsim::NodeConfig::fast_test(1));
        let a: Vec<f64> = vec![1.0, f64::NAN, -2.0, 3.0, 0.25, -7.5, 9.0];
        let b: Vec<f64> = vec![9.0, -9.0, 0.0, f64::INFINITY, 1.0, 2.0, 3.0];
        let dense = crate::bounds::minmax_multi_host(&[&a, &b]);
        for layout in [hamr::Layout::AoS, hamr::Layout::SoA, hamr::Layout::AoSoA { lane_width: 4 }]
        {
            let cols = group(&node, layout, &[&a, &b]);
            let mapped = crate::bounds::minmax_multi_mapped(&[&cols[0], &cols[1]]);
            assert_eq!(mapped, dense, "bounds under {}", layout.name());
            assert_eq!(crate::bounds::minmax_mapped(&cols[0]), dense[0]);
            assert_eq!(crate::bounds::minmax_mapped(&cols[1]), dense[1]);
        }
    }
}
