//! The binning mesh geometry and bin arithmetic shared by the host and
//! device implementations.

/// Geometry of the 2-D binning mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridParams {
    /// Cells along the first axis.
    pub nx: usize,
    /// Cells along the second axis.
    pub ny: usize,
    /// Lower bounds per axis.
    pub lo: [f64; 2],
    /// Upper bounds per axis.
    pub hi: [f64; 2],
}

impl GridParams {
    /// Construct; panics on degenerate configuration.
    pub fn new(nx: usize, ny: usize, lo: [f64; 2], hi: [f64; 2]) -> Self {
        assert!(nx > 0 && ny > 0, "binning mesh needs at least one cell per axis");
        assert!(hi[0] > lo[0] && hi[1] > lo[1], "binning bounds are degenerate: {lo:?}..{hi:?}");
        GridParams { nx, ny, lo, hi }
    }

    /// Total number of bins.
    pub fn num_bins(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat bin index for a coordinate pair; `None` when outside the mesh.
    /// Values exactly on the upper bound land in the last cell, so on-the-
    /// fly bounds (min/max of the coordinates) keep every row in range.
    #[inline]
    pub fn bin_index(&self, x: f64, y: f64) -> Option<usize> {
        let i = Self::axis_index(x, self.lo[0], self.hi[0], self.nx)?;
        let j = Self::axis_index(y, self.lo[1], self.hi[1], self.ny)?;
        Some(j * self.nx + i)
    }

    #[inline]
    fn axis_index(v: f64, lo: f64, hi: f64, n: usize) -> Option<usize> {
        if !v.is_finite() || v < lo || v > hi {
            return None;
        }
        let t = (v - lo) / (hi - lo) * n as f64;
        Some((t as usize).min(n - 1))
    }

    /// The equivalent `svtk::ImageData` skeleton for result publication.
    pub fn to_image(&self) -> svtk::ImageData {
        svtk::ImageData::from_bounds(
            [self.nx, self.ny, 1],
            [self.lo[0], self.lo[1], 0.0],
            [self.hi[0], self.hi[1], 1.0],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridParams {
        GridParams::new(4, 2, [0.0, 0.0], [4.0, 2.0])
    }

    #[test]
    fn bin_index_interior() {
        let g = grid();
        assert_eq!(g.bin_index(0.5, 0.5), Some(0));
        assert_eq!(g.bin_index(3.5, 0.5), Some(3));
        assert_eq!(g.bin_index(0.5, 1.5), Some(4));
        assert_eq!(g.bin_index(3.5, 1.5), Some(7));
    }

    #[test]
    fn upper_bound_is_inclusive() {
        let g = grid();
        assert_eq!(g.bin_index(4.0, 2.0), Some(7));
        assert_eq!(g.bin_index(0.0, 0.0), Some(0));
    }

    #[test]
    fn outside_and_nonfinite_are_rejected() {
        let g = grid();
        assert_eq!(g.bin_index(-0.01, 1.0), None);
        assert_eq!(g.bin_index(4.01, 1.0), None);
        assert_eq!(g.bin_index(1.0, 2.5), None);
        assert_eq!(g.bin_index(f64::NAN, 1.0), None);
        assert_eq!(g.bin_index(1.0, f64::INFINITY), None);
    }

    #[test]
    fn agrees_with_image_data_locate() {
        let g = grid();
        let img = g.to_image();
        for (x, y) in [(0.1, 0.1), (3.9, 1.9), (2.0, 1.0), (4.0, 2.0)] {
            let ijk = img.locate([x, y, 0.5]).unwrap();
            assert_eq!(g.bin_index(x, y), Some(img.cell_index(ijk)), "at ({x},{y})");
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_bounds_panic() {
        GridParams::new(2, 2, [1.0, 0.0], [1.0, 1.0]);
    }
}
