//! A suite of binning specs sharing one fetch per step.
//!
//! The paper's asynchronous workload runs many binning instances over the
//! same particle table (nine coordinate systems, ten operations each).
//! Run as independent [`crate::BinningAnalysis`] back-ends, every
//! instance fetches its columns, computes its bounds, and reduces its
//! grids on its own — nine fetches, nine (or eighteen) bounds
//! collectives, and ninety grid allreduces per step.
//!
//! [`BinningSuite`] executes the same specs as one back-end on the fused
//! path end to end:
//!
//! * the union of every spec's required variables is fetched/moved
//!   **once per table per step** and shared across all specs;
//! * on a device, each spec's fused multi-op kernel and packed download
//!   are routed to the least-loaded of a small pool of streams (by
//!   accumulated modeled kernel cost), so the coordinate systems overlap
//!   instead of serializing on one stream and skewed specs don't pile up
//!   the way position-based round-robin lets them;
//! * auto-computed axis bounds for **all** specs share one fused min/max
//!   pass per table and one packed bounds allreduce;
//! * every spec's grids (counts + ops) are packed into a single segmented
//!   buffer and reduced with **one** allreduce per step.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use devsim::{CellBuffer, Event};
use minimpi::Segment;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, AnalysisCounters, AnalysisRegistry, BackendControls, DagOutcome, DagScheduler,
    DataAdaptor, DataRequirements, Error, ExecContext, Result, TaskGraph, TaskKind, TaskSite,
};
use svtk::FieldAssociation;

use crate::adaptor::{fetch_table, local_tables, BinnedResult, Fetched, ResultSink};
use crate::bounds;
use crate::device_impl;
use crate::grid::GridParams;
use crate::host_impl;
use crate::reduce;
use crate::spec::{BinOp, BinningSpec, VarOp};

/// Streams the suite spreads device work across; more specs than this
/// share streams, routed least-loaded by accumulated kernel cost.
const MAX_STREAMS: usize = 4;

/// Index of the stream with the smallest accumulated relative kernel
/// cost. Ties break to the lowest index, so a uniform-cost spec set
/// degenerates to the old round-robin rotation — the policies only
/// diverge when costs are skewed, which is exactly when round-robin
/// piles heavy kernels onto one stream.
pub(crate) fn least_loaded_stream(loads: &[f64]) -> usize {
    let mut best = 0;
    for (i, load) in loads.iter().enumerate().skip(1) {
        if *load < loads[best] {
            best = i;
        }
    }
    best
}

/// Layout of a step's flat accumulation buffer: every spec's grids
/// (counts first) laid back to back. The flat buffer doubles as the
/// packed-collective payload, so local accumulation, the allreduce, and
/// the unpack all work on one allocation with no repacking.
struct StepLayout {
    /// Per spec, its ops with the implicit count grid first.
    ops: Vec<Vec<VarOp>>,
    /// Start of each spec's grids in the flat buffer.
    offsets: Vec<usize>,
    /// One segment per (spec, op), in buffer order.
    segments: Vec<Segment>,
    total: usize,
}

/// Merge a downloaded packed segment straight into the flat accumulator
/// (no intermediate owned grid).
fn merge_segment_from_view(op: BinOp, acc: &mut [f64], v: &devsim::HostF64View, base: usize) {
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += v.get(base + j);
            }
        }
        BinOp::Min => {
            for (j, a) in acc.iter_mut().enumerate() {
                *a = a.min(v.get(base + j));
            }
        }
        BinOp::Max => {
            for (j, a) in acc.iter_mut().enumerate() {
                *a = a.max(v.get(base + j));
            }
        }
    }
}

/// Where one (table, spec) kernel's partial grids live between the
/// kernel, download and reduce nodes of the step's task graph.
enum StagedPart {
    /// Host placement: the per-op grids of one fused host table pass.
    Host(Vec<Vec<f64>>),
    /// Device kernel enqueued on `device`: the packed grids plus the
    /// event its compute stream records after the launch (the download
    /// node's cross-stream ordering point).
    Device { device: usize, packed: CellBuffer, ready: Event },
    /// Download enqueued: the packed host buffer, valid once the download
    /// node's event fires.
    Downloaded(CellBuffer),
}

/// Shared mutable state of one step's task graph. Worker-task bodies may
/// only capture `Send` state, so everything the fetch node produces and
/// the kernel/download/reduce nodes consume crosses through here.
struct DagState {
    /// Resolved grid of every spec (fetch node output).
    grids: Mutex<Vec<GridParams>>,
    /// Host placement: per table, the union columns as plain vectors.
    #[allow(clippy::type_complexity)]
    host_tables: Mutex<Vec<Arc<HashMap<String, Vec<f64>>>>>,
    /// Device placement: `(table, device)` -> resident union columns.
    /// Seeded on the primary device by the fetch node; stolen kernels
    /// replicate a table's columns to their own device on first use.
    #[allow(clippy::type_complexity)]
    dev_cols: Mutex<HashMap<(usize, usize), Arc<HashMap<String, CellBuffer>>>>,
    /// One slot per `(table, spec)`, indexed `table * nspecs + spec`.
    staged: Vec<Mutex<Option<StagedPart>>>,
    /// Globally reduced flat buffer (reduce node output).
    merged: Mutex<Option<Vec<f64>>>,
    /// Finished step results (publish node output).
    results: Mutex<Vec<BinnedResult>>,
}

impl DagState {
    /// The union columns of table `ti` resident on device `dw`,
    /// replicating from the primary copy on first use. The replication
    /// copies are enqueued on `stream` (the thief's compute stream), so
    /// the kernel launched right after them is stream-ordered behind the
    /// data with no blocking synchronize.
    fn cols_on(
        &self,
        node: &Arc<devsim::SimNode>,
        ti: usize,
        dw: usize,
        primary: usize,
        stream: &Arc<devsim::Stream>,
    ) -> Result<Arc<HashMap<String, CellBuffer>>> {
        let mut cache = self.dev_cols.lock();
        if let Some(cols) = cache.get(&(ti, dw)) {
            return Ok(cols.clone());
        }
        let src = cache
            .get(&(ti, primary))
            .cloned()
            .ok_or_else(|| Error::Analysis(format!("dag kernel: table {ti} was not fetched")))?;
        let mut out = HashMap::with_capacity(src.len());
        for (name, buf) in src.iter() {
            let dst = node.device(dw)?.alloc_cells_on_stream(buf.len(), stream.as_ref())?;
            stream.copy(buf, &dst).map_err(Error::Device)?;
            out.insert(name.clone(), dst);
        }
        let cols = Arc::new(out);
        cache.insert((ti, dw), cols.clone());
        Ok(cols)
    }
}

/// Many binning specs over one mesh, executed as a single fused back-end.
pub struct BinningSuite {
    controls: BackendControls,
    mesh: String,
    specs: Vec<BinningSpec>,
    sink: Option<ResultSink>,
    output_dir: Option<PathBuf>,
    last: Vec<BinnedResult>,
    executes: u64,
    counters: Arc<AnalysisCounters>,
    /// Device stream pool, created lazily on the first device execute.
    streams: Vec<Arc<devsim::Stream>>,
}

impl BinningSuite {
    /// A suite over `specs`, which must all consume the same mesh.
    pub fn new(specs: Vec<BinningSpec>) -> Result<Self> {
        let mesh = match specs.first() {
            None => return Err(Error::Config("binning suite needs at least one spec".into())),
            Some(s) => s.mesh.clone(),
        };
        if let Some(other) = specs.iter().find(|s| s.mesh != mesh) {
            return Err(Error::Config(format!(
                "binning suite specs must share one mesh: '{}' vs '{}'",
                mesh, other.mesh
            )));
        }
        Ok(BinningSuite {
            controls: BackendControls::default(),
            mesh,
            specs,
            sink: None,
            output_dir: None,
            last: Vec::new(),
            executes: 0,
            counters: AnalysisCounters::new(),
            streams: Vec::new(),
        })
    }

    /// Send every step's results (one per spec, in spec order) to `sink`.
    pub fn with_sink(mut self, sink: ResultSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Write each spec's final result to `dir/spec<i>` at finalize,
    /// rank 0 only.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Set the execution-model controls at construction time.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// Number of completed executes (diagnostic).
    pub fn executes(&self) -> u64 {
        self.executes
    }

    /// The specs the suite computes.
    pub fn specs(&self) -> &[BinningSpec] {
        &self.specs
    }

    /// Union of every spec's required variables, deduped in first-seen
    /// order (the shared per-step fetch list).
    fn union_variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        for spec in &self.specs {
            for v in spec.required_variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Resolve every spec's grid. Manual bounds come straight from the
    /// spec; automatic bounds share one fused min/max pass per table over
    /// the union of auto-bounded axis columns and a single packed
    /// allreduce across all of them.
    fn resolve_grids(
        &self,
        fetched: &[Fetched],
        device: Option<usize>,
        ctx: &ExecContext<'_>,
    ) -> Result<Vec<GridParams>> {
        // Unique axis columns of specs whose bounds are computed on the
        // fly (specs share axes across coordinate systems).
        let mut auto_cols: Vec<&str> = Vec::new();
        for spec in self.specs.iter().filter(|s| s.bounds.is_none()) {
            for ax in [spec.axes.0.as_str(), spec.axes.1.as_str()] {
                if !auto_cols.contains(&ax) {
                    auto_cols.push(ax);
                }
            }
        }

        let mut merged: HashMap<&str, (f64, f64)> = HashMap::new();
        if !auto_cols.is_empty() {
            let mut local = vec![(f64::INFINITY, f64::NEG_INFINITY); auto_cols.len()];
            for f in fetched {
                let pairs = match f {
                    Fetched::Host(data) => {
                        let cols: Vec<&[f64]> =
                            auto_cols.iter().map(|c| data[*c].as_slice()).collect();
                        let total: usize = cols.iter().map(|c| c.len()).sum();
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds_fused",
                            devsim::KernelCost::bytes((total * 8) as f64),
                            || bounds::minmax_multi_host(&cols),
                        )
                    }
                    Fetched::HostMapped { cols, layout, .. } => {
                        let cols: Vec<&host_impl::MappedCol> =
                            auto_cols.iter().map(|c| &cols[*c]).collect();
                        let total: usize = cols.iter().map(|c| c.len()).sum();
                        self.counters.add_table_passes(1);
                        ctx.node.host().run(
                            "bin_bounds_fused",
                            device_impl::fused_bounds_cost(total, *layout),
                            || bounds::minmax_multi_mapped(&cols),
                        )
                    }
                    Fetched::Device { views, .. } => {
                        let d = device.expect("device fetch implies device placement");
                        let stream = ctx.node.device(d)?.default_stream();
                        let cols: Vec<&devsim::CellBuffer> =
                            auto_cols.iter().map(|c| views[*c].cells()).collect();
                        self.counters.add_kernel_launches(1);
                        self.counters.add_downloads(1);
                        device_impl::minmax_multi_device(ctx.node, d, &stream, &cols)?
                    }
                };
                for (acc, (lo, hi)) in local.iter_mut().zip(pairs) {
                    acc.0 = acc.0.min(lo);
                    acc.1 = acc.1.max(hi);
                }
            }
            let global = bounds::global_bounds_packed(ctx.comm, &local)?;
            for (col, pair) in auto_cols.iter().zip(global) {
                merged.insert(col, pair);
            }
        }

        self.specs
            .iter()
            .map(|spec| {
                let (bx, by) = match spec.bounds {
                    Some(b) => b,
                    None => {
                        let (xlo, xhi) = merged[spec.axes.0.as_str()];
                        let (ylo, yhi) = merged[spec.axes.1.as_str()];
                        let x = bounds::usable_range(xlo, xhi);
                        let y = bounds::usable_range(ylo, yhi);
                        ([x.0, x.1], [y.0, y.1])
                    }
                };
                Ok(GridParams::new(
                    spec.resolution.0,
                    spec.resolution.1,
                    [bx[0], by[0]],
                    [bx[1], by[1]],
                ))
            })
            .collect()
    }

    /// The ops of `spec`, counts first (the layout of its grids
    /// everywhere downstream).
    fn spec_ops(spec: &BinningSpec) -> Vec<VarOp> {
        let mut ops = vec![VarOp { var: String::new(), op: BinOp::Count }];
        ops.extend(spec.ops.iter().cloned());
        ops
    }

    /// The step's flat-buffer layout over the resolved grids.
    fn layout(&self, grids: &[GridParams]) -> StepLayout {
        let mut ops = Vec::with_capacity(self.specs.len());
        let mut offsets = Vec::with_capacity(self.specs.len());
        let mut segments = Vec::new();
        let mut total = 0;
        for (spec, grid) in self.specs.iter().zip(grids) {
            offsets.push(total);
            let spec_ops = Self::spec_ops(spec);
            for vo in &spec_ops {
                segments.push(Segment::new(reduce::segment_op(vo.op), grid.num_bins()));
                total += grid.num_bins();
            }
            ops.push(spec_ops);
        }
        StepLayout { ops, offsets, segments, total }
    }

    /// Local fused binning of every spec over every fetched table,
    /// accumulated into one flat buffer laid out by `layout` — the exact
    /// payload of the step's packed allreduce. Each device kernel goes to
    /// the stream with the least accumulated modeled cost; all streams
    /// are synchronized once at the end, then merged straight from the
    /// downloaded views.
    fn bin_all_specs(
        &mut self,
        fetched: &[Fetched],
        grids: &[GridParams],
        layout: &StepLayout,
        device: Option<usize>,
        ctx: &ExecContext<'_>,
    ) -> Result<Vec<f64>> {
        let mut flat = Vec::with_capacity(layout.total);
        for (spec_ops, grid) in layout.ops.iter().zip(grids) {
            for vo in spec_ops {
                flat.resize(flat.len() + grid.num_bins(), host_impl::identity(vo.op));
            }
        }

        // (spec index, packed host buffer) downloads awaiting the sync.
        let mut staged: Vec<(usize, devsim::CellBuffer)> = Vec::new();
        let mut used_streams = false;
        // Accumulated relative cost routed to each stream this step (the
        // streams drain fully at the step's closing synchronize, so loads
        // reset per call).
        let mut stream_loads: Vec<f64> = Vec::new();

        for f in fetched {
            match f {
                Fetched::Host(data) => {
                    for (si, (spec, grid)) in self.specs.iter().zip(grids).enumerate() {
                        let xs = &data[spec.axes.0.as_str()];
                        let ys = &data[spec.axes.1.as_str()];
                        let all_ops = &layout.ops[si];
                        let ops: Vec<(BinOp, Option<&[f64]>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals = (vo.op != BinOp::Count)
                                    .then(|| data[vo.var.as_str()].as_slice());
                                (vo.op, vals)
                            })
                            .collect();
                        self.counters.add_table_passes(1);
                        let parts = ctx.node.host().run(
                            "bin_fused_host",
                            device_impl::fused_bin_cost(xs.len(), ops.len()),
                            || host_impl::bin_all_host(xs, ys, &ops, grid),
                        );
                        let (off, nb) = (layout.offsets[si], grid.num_bins());
                        for ((k, vo), part) in all_ops.iter().enumerate().zip(parts) {
                            let seg = &mut flat[off + k * nb..off + (k + 1) * nb];
                            reduce::merge_into(vo.op, seg, &part);
                        }
                    }
                }
                Fetched::HostMapped { cols, layout: blk_layout, n } => {
                    for (si, (spec, grid)) in self.specs.iter().zip(grids).enumerate() {
                        let xs = &cols[spec.axes.0.as_str()];
                        let ys = &cols[spec.axes.1.as_str()];
                        let all_ops = &layout.ops[si];
                        let ops: Vec<(BinOp, Option<&host_impl::MappedCol>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals = (vo.op != BinOp::Count).then(|| &cols[vo.var.as_str()]);
                                (vo.op, vals)
                            })
                            .collect();
                        self.counters.add_table_passes(1);
                        let parts = ctx.node.host().run(
                            "bin_fused_host_lanes",
                            device_impl::fused_bin_cost_layout(*n, ops.len(), *blk_layout),
                            || host_impl::bin_all_host_lanes(xs, ys, &ops, grid),
                        );
                        let (off, nb) = (layout.offsets[si], grid.num_bins());
                        for ((k, vo), part) in all_ops.iter().enumerate().zip(parts) {
                            let seg = &mut flat[off + k * nb..off + (k + 1) * nb];
                            reduce::merge_into(vo.op, seg, &part);
                        }
                    }
                }
                Fetched::Device { views, .. } => {
                    let d = device.expect("device fetch implies device placement");
                    if self.streams.is_empty() {
                        let n = MAX_STREAMS.min(self.specs.len().max(1));
                        let dev = ctx.node.device(d)?;
                        self.streams = (0..n).map(|_| dev.create_stream()).collect();
                    }
                    used_streams = true;
                    if stream_loads.len() != self.streams.len() {
                        stream_loads = vec![0.0; self.streams.len()];
                    }
                    for (si, (spec, grid)) in self.specs.iter().zip(grids).enumerate() {
                        let xs = views[spec.axes.0.as_str()].cells();
                        let ys = views[spec.axes.1.as_str()].cells();
                        let all_ops = &layout.ops[si];
                        let ops: Vec<(BinOp, Option<&devsim::CellBuffer>)> = all_ops
                            .iter()
                            .map(|vo| {
                                let vals =
                                    (vo.op != BinOp::Count).then(|| views[vo.var.as_str()].cells());
                                (vo.op, vals)
                            })
                            .collect();
                        let kc = device_impl::fused_bin_cost(xs.len(), all_ops.len());
                        let sidx = least_loaded_stream(&stream_loads);
                        stream_loads[sidx] += kc.flops + kc.bytes;
                        let stream = &self.streams[sidx];
                        let packed =
                            device_impl::bin_all_device(ctx.node, d, stream, xs, ys, &ops, *grid)?;
                        let host = ctx.node.host_alloc_f64(packed.len());
                        stream.copy(&packed, &host).map_err(Error::Device)?;
                        self.counters.add_kernel_launches(1);
                        self.counters.add_downloads(1);
                        staged.push((si, host));
                    }
                }
            }
        }

        if used_streams {
            for stream in &self.streams {
                stream.synchronize().map_err(Error::Device)?;
            }
            for (si, host) in staged {
                let v = host.host_f64_ro().map_err(Error::Device)?;
                let (off, nb) = (layout.offsets[si], grids[si].num_bins());
                for (k, vo) in layout.ops[si].iter().enumerate() {
                    let seg = &mut flat[off + k * nb..off + (k + 1) * nb];
                    merge_segment_from_view(vo.op, seg, &v, k * nb);
                }
            }
        }
        Ok(flat)
    }
}

impl AnalysisAdaptor for BinningSuite {
    fn name(&self) -> &str {
        "binning_suite"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn required_arrays(&self) -> DataRequirements {
        DataRequirements::none().with_arrays(
            &self.mesh,
            FieldAssociation::Point,
            self.union_variables(),
        )
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        let allreduces_before = ctx.comm.allreduce_count();
        let tiers_before = ctx.comm.tier_stats();
        let mesh = data.mesh(&self.mesh)?;
        let tables = local_tables(&mesh)?;
        let device = self.controls.resolve_device(ctx.comm.rank(), ctx.node.num_devices());

        // One fetch of the union of every spec's variables per table.
        let vars = self.union_variables();
        self.counters.add_fetches(vars.len() as u64 * tables.len() as u64);
        let fetched: Vec<Fetched> = tables
            .iter()
            .map(|t| fetch_table(t, &vars, device, ctx.node, &self.counters, true))
            .collect::<Result<_>>()?;
        crate::adaptor::release_if_materialized(data, &fetched);

        let grids = self.resolve_grids(&fetched, device, ctx)?;
        let layout = self.layout(&grids);
        let flat = self.bin_all_specs(&fetched, &grids, &layout, device, ctx)?;

        // The flat accumulator IS the packed-collective payload: one
        // allreduce covers every spec's grids, with no repacking.
        let merged = ctx
            .comm
            .allreduce_packed(flat, &layout.segments)
            .map_err(|e| Error::Analysis(format!("packed grid allreduce: {e}")))?;

        let mut step_results = Vec::with_capacity(self.specs.len());
        for (si, (spec, grid)) in self.specs.iter().zip(&grids).enumerate() {
            let (off, nb) = (layout.offsets[si], grid.num_bins());
            let counts = merged[off..off + nb].to_vec();
            let mut arrays = Vec::with_capacity(spec.ops.len());
            for (k, vo) in layout.ops[si].iter().enumerate().skip(1) {
                let values = if vo.op == BinOp::Count {
                    counts.clone()
                } else {
                    let mut global = merged[off + k * nb..off + (k + 1) * nb].to_vec();
                    host_impl::finalize(vo.op, &mut global, &counts);
                    global
                };
                arrays.push((vo.output_name(), values));
            }
            step_results.push(BinnedResult {
                step: data.time_step(),
                time: data.time(),
                axes: spec.axes.clone(),
                grid: *grid,
                arrays,
            });
        }
        self.counters.add_allreduces(ctx.comm.allreduce_count() - allreduces_before);
        self.counters.add_comm(&ctx.comm.tier_stats().delta_since(&tiers_before));

        if let Some(sink) = &self.sink {
            if ctx.comm.rank() == 0 {
                sink.lock().extend(step_results.iter().cloned());
            }
        }
        self.last = step_results;
        self.executes += 1;
        Ok(true)
    }

    fn supports_dag(&self) -> bool {
        true
    }

    /// The step as a task graph: one coordinator `Fetch` node (data
    /// movement, fused bounds, the bounds collective), one `Kernel` and
    /// one `Download` node per `(table, spec)` — stealable across device
    /// workers, with downloads on per-device copy streams ordered by
    /// events — one coordinator `Reduce` node merging every partial in
    /// the inline engine's exact order before the single packed
    /// allreduce, and one `Publish` node. Results are bit-identical to
    /// [`BinningSuite::execute`]: the merge order is fixed table-major
    /// and the same kernels run whatever worker executes them.
    fn execute_dag(
        &mut self,
        data: &dyn DataAdaptor,
        ctx: &ExecContext<'_>,
        sched: &mut DagScheduler,
    ) -> Result<bool> {
        let allreduces_before = ctx.comm.allreduce_count();
        let tiers_before = ctx.comm.tier_stats();
        let mesh = data.mesh(&self.mesh)?;
        let tables = local_tables(&mesh)?;
        let device = self.controls.resolve_device(ctx.comm.rank(), ctx.node.num_devices());
        let policy = self.controls.recovery;
        let nspecs = self.specs.len();
        let ntables = tables.len();
        let row_counts: Vec<usize> = tables.iter().map(|t| t.num_rows()).collect();

        let state = Arc::new(DagState {
            grids: Mutex::new(Vec::new()),
            host_tables: Mutex::new(Vec::new()),
            dev_cols: Mutex::new(HashMap::new()),
            staged: (0..ntables * nspecs).map(|_| Mutex::new(None)).collect(),
            merged: Mutex::new(None),
            results: Mutex::new(Vec::new()),
        });
        let this = &*self;
        let node = ctx.node.clone();

        let mut g = TaskGraph::new(this.name(), this.counters.clone(), policy);

        // Fetch: the union of every spec's variables, once per table, plus
        // the fused bounds pass and its packed collective — coordinator
        // because of the collective and the data-adaptor borrow.
        let fetch = {
            let state = state.clone();
            let vars: Vec<&str> = this.union_variables();
            g.add_coordinator_task(TaskKind::Fetch, "tables+bounds", move |_| {
                // Idempotent under retry: the step's staging is rebuilt
                // from scratch on every attempt.
                state.host_tables.lock().clear();
                state.dev_cols.lock().clear();
                this.counters.add_fetches(vars.len() as u64 * tables.len() as u64);
                // The DAG engine keeps its plain-column contract: grouped
                // tables are gathered dense here (a charged relayout), so
                // stolen kernels never see a mapped block.
                let fetched: Vec<Fetched> = tables
                    .iter()
                    .map(|t| fetch_table(t, &vars, device, ctx.node, &this.counters, false))
                    .collect::<Result<_>>()?;
                crate::adaptor::release_if_materialized(data, &fetched);
                *state.grids.lock() = this.resolve_grids(&fetched, device, ctx)?;
                for (ti, f) in fetched.into_iter().enumerate() {
                    match f {
                        Fetched::Host(cols) => state.host_tables.lock().push(Arc::new(cols)),
                        Fetched::HostMapped { .. } => {
                            return Err(Error::Analysis("dag fetch expects dense columns".into()))
                        }
                        Fetched::Device { views, .. } => {
                            let p = device.expect("device fetch implies device placement");
                            let cols: HashMap<String, CellBuffer> =
                                views.iter().map(|(k, v)| (k.clone(), v.cells().clone())).collect();
                            state.dev_cols.lock().insert((ti, p), Arc::new(cols));
                        }
                    }
                }
                Ok(())
            })
        };

        // One kernel + download pair per (table, spec). Kernel tasks are
        // homed on the resolved device but stealable by any idle device
        // worker; the download node enqueues the packed D2H copy on the
        // copy stream of whichever device actually ran the kernel.
        let mut download_events = Vec::with_capacity(ntables * nspecs);
        let mut downloads = Vec::with_capacity(ntables * nspecs);
        for (ti, &rows) in row_counts.iter().enumerate() {
            for (si, spec) in this.specs.iter().enumerate() {
                let idx = ti * nspecs + si;
                let all_ops = Self::spec_ops(spec);
                let nbins = spec.resolution.0 * spec.resolution.1;
                let kc = device_impl::fused_bin_cost(rows, all_ops.len());
                let dl_event = Event::new();

                let kernel = match device {
                    Some(primary) => {
                        let state = state.clone();
                        let node = node.clone();
                        let counters = this.counters.clone();
                        let axes = spec.axes.clone();
                        let ops = all_ops.clone();
                        let k = g.add_worker_task(
                            TaskKind::Kernel,
                            format!("t{ti}s{si}"),
                            TaskSite::AnyDevice,
                            move |tctx| {
                                let dw = tctx.device().ok_or_else(|| {
                                    Error::Analysis("binning kernel needs a device worker".into())
                                })?;
                                let stream = tctx
                                    .stream()
                                    .ok_or_else(|| {
                                        Error::Analysis(format!("no compute stream on device {dw}"))
                                    })?
                                    .clone();
                                let grid = state.grids.lock()[si];
                                let cols = state.cols_on(&node, ti, dw, primary, &stream)?;
                                let xs = &cols[axes.0.as_str()];
                                let ys = &cols[axes.1.as_str()];
                                let kops: Vec<(BinOp, Option<&CellBuffer>)> = ops
                                    .iter()
                                    .map(|vo| {
                                        let vals =
                                            (vo.op != BinOp::Count).then(|| &cols[vo.var.as_str()]);
                                        (vo.op, vals)
                                    })
                                    .collect();
                                let packed = device_impl::bin_all_device(
                                    &node, dw, &stream, xs, ys, &kops, grid,
                                )?;
                                counters.add_kernel_launches(1);
                                let ready = Event::new();
                                stream.record(&ready).map_err(Error::Device)?;
                                *state.staged[idx].lock() =
                                    Some(StagedPart::Device { device: dw, packed, ready });
                                Ok(())
                            },
                        );
                        g.set_home(k, primary);
                        k
                    }
                    None => {
                        let state = state.clone();
                        let node = node.clone();
                        let counters = this.counters.clone();
                        let axes = spec.axes.clone();
                        let ops = all_ops.clone();
                        g.add_worker_task(
                            TaskKind::Kernel,
                            format!("t{ti}s{si}"),
                            TaskSite::Host,
                            move |_| {
                                let grid = state.grids.lock()[si];
                                let cols = state.host_tables.lock()[ti].clone();
                                counters.add_table_passes(1);
                                let parts = node.host().run(
                                    "bin_fused_host",
                                    device_impl::fused_bin_cost(
                                        cols[axes.0.as_str()].len(),
                                        ops.len(),
                                    ),
                                    || {
                                        let hops: Vec<(BinOp, Option<&[f64]>)> = ops
                                            .iter()
                                            .map(|vo| {
                                                let vals = (vo.op != BinOp::Count)
                                                    .then(|| cols[vo.var.as_str()].as_slice());
                                                (vo.op, vals)
                                            })
                                            .collect();
                                        host_impl::bin_all_host(
                                            &cols[axes.0.as_str()],
                                            &cols[axes.1.as_str()],
                                            &hops,
                                            &grid,
                                        )
                                    },
                                );
                                *state.staged[idx].lock() = Some(StagedPart::Host(parts));
                                Ok(())
                            },
                        )
                    }
                };
                g.set_cost(kernel, kc.flops + kc.bytes);
                g.add_dep(kernel, fetch);

                let download = match device {
                    Some(primary) => {
                        let state = state.clone();
                        let node = node.clone();
                        let counters = this.counters.clone();
                        let ev = dl_event.clone();
                        let d = g.add_worker_task(
                            TaskKind::Download,
                            format!("t{ti}s{si}"),
                            TaskSite::AnyDevice,
                            move |tctx| {
                                let part = match state.staged[idx].lock().as_ref() {
                                    Some(StagedPart::Device { device, packed, ready }) => {
                                        Some((*device, packed.clone(), ready.clone()))
                                    }
                                    // A retried submission already landed.
                                    Some(StagedPart::Downloaded(_)) => None,
                                    _ => {
                                        return Err(Error::Analysis(format!(
                                            "dag download: kernel partial {idx} missing"
                                        )))
                                    }
                                };
                                if let Some((dev, packed, ready)) = part {
                                    let cp = tctx
                                        .copy_stream(dev)
                                        .ok_or_else(|| {
                                            Error::Analysis(format!(
                                                "no copy stream on device {dev}"
                                            ))
                                        })?
                                        .clone();
                                    let host = node.host_alloc_f64(packed.len());
                                    cp.wait_event(&ready).map_err(Error::Device)?;
                                    cp.copy(&packed, &host).map_err(Error::Device)?;
                                    cp.record(&ev).map_err(Error::Device)?;
                                    counters.add_downloads(1);
                                    *state.staged[idx].lock() = Some(StagedPart::Downloaded(host));
                                }
                                Ok(())
                            },
                        );
                        g.set_home(d, primary);
                        g.set_cost(d, (all_ops.len() * nbins * 8) as f64);
                        d
                    }
                    None => {
                        // Host partials are already in place; the node
                        // exists to keep the graph shape uniform and to
                        // release the reduce gate.
                        let ev = dl_event.clone();
                        g.add_worker_task(
                            TaskKind::Download,
                            format!("t{ti}s{si}"),
                            TaskSite::Host,
                            move |_| {
                                ev.signal();
                                Ok(())
                            },
                        )
                    }
                };
                g.add_dep(download, kernel);
                download_events.push(dl_event);
                downloads.push(download);
            }
        }

        // Reduce: merge every staged partial into the flat accumulator in
        // ascending (table, spec) order — exactly the inline engine's
        // merge order, so the grids stay bit-identical — then the step's
        // single packed allreduce. Gated on the download events so the
        // host buffers are complete without any blocking synchronize.
        let reduce = {
            let state = state.clone();
            g.add_coordinator_task(TaskKind::Reduce, "packed-allreduce", move |_| {
                let grids = state.grids.lock().clone();
                let layout = this.layout(&grids);
                let mut flat = Vec::with_capacity(layout.total);
                for (spec_ops, grid) in layout.ops.iter().zip(&grids) {
                    for vo in spec_ops {
                        flat.resize(flat.len() + grid.num_bins(), host_impl::identity(vo.op));
                    }
                }
                for (idx, slot) in state.staged.iter().enumerate() {
                    let si = idx % grids.len().max(1);
                    let (off, nb) = (layout.offsets[si], grids[si].num_bins());
                    match slot.lock().as_ref() {
                        Some(StagedPart::Host(parts)) => {
                            for (k, vo) in layout.ops[si].iter().enumerate() {
                                let seg = &mut flat[off + k * nb..off + (k + 1) * nb];
                                reduce::merge_into(vo.op, seg, &parts[k]);
                            }
                        }
                        Some(StagedPart::Downloaded(host)) => {
                            let v = host.host_f64_ro().map_err(Error::Device)?;
                            for (k, vo) in layout.ops[si].iter().enumerate() {
                                let seg = &mut flat[off + k * nb..off + (k + 1) * nb];
                                merge_segment_from_view(vo.op, seg, &v, k * nb);
                            }
                        }
                        _ => {
                            return Err(Error::Analysis(format!(
                                "dag reduce: partial {idx} missing"
                            )))
                        }
                    }
                }
                let merged = ctx
                    .comm
                    .allreduce_packed(flat, &layout.segments)
                    .map_err(|e| Error::Analysis(format!("packed grid allreduce: {e}")))?;
                *state.merged.lock() = Some(merged);
                Ok(())
            })
        };
        for d in downloads {
            g.add_dep(reduce, d);
        }
        for ev in download_events {
            g.gate_on_event(reduce, ev);
        }

        // Publish: unpack the reduced buffer into per-spec results.
        let publish = {
            let state = state.clone();
            g.add_coordinator_task(TaskKind::Publish, "results", move |_| {
                let merged =
                    state.merged.lock().take().ok_or_else(|| {
                        Error::Analysis("dag publish: reduced grids missing".into())
                    })?;
                let grids = state.grids.lock().clone();
                let layout = this.layout(&grids);
                let mut step_results = Vec::with_capacity(this.specs.len());
                for (si, (spec, grid)) in this.specs.iter().zip(&grids).enumerate() {
                    let (off, nb) = (layout.offsets[si], grid.num_bins());
                    let counts = merged[off..off + nb].to_vec();
                    let mut arrays = Vec::with_capacity(spec.ops.len());
                    for (k, vo) in layout.ops[si].iter().enumerate().skip(1) {
                        let values = if vo.op == BinOp::Count {
                            counts.clone()
                        } else {
                            let mut global = merged[off + k * nb..off + (k + 1) * nb].to_vec();
                            host_impl::finalize(vo.op, &mut global, &counts);
                            global
                        };
                        arrays.push((vo.output_name(), values));
                    }
                    step_results.push(BinnedResult {
                        step: data.time_step(),
                        time: data.time(),
                        axes: spec.axes.clone(),
                        grid: *grid,
                        arrays,
                    });
                }
                if let Some(sink) = &this.sink {
                    if ctx.comm.rank() == 0 {
                        sink.lock().extend(step_results.iter().cloned());
                    }
                }
                *state.results.lock() = step_results;
                Ok(())
            })
        };
        g.add_dep(publish, reduce);

        let outcome = sched.run(g)?;
        self.counters.add_allreduces(ctx.comm.allreduce_count() - allreduces_before);
        self.counters.add_comm(&ctx.comm.tier_stats().delta_since(&tiers_before));
        if outcome == DagOutcome::Skipped {
            return Ok(true);
        }
        self.last = std::mem::take(&mut *state.results.lock());
        self.executes += 1;
        Ok(true)
    }

    fn finalize(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        if let Some(dir) = &self.output_dir {
            if ctx.comm.rank() == 0 {
                for (i, result) in self.last.iter().enumerate() {
                    crate::io::write_result(&dir.join(format!("spec{i}")), result)
                        .map_err(|e| Error::Analysis(format!("writing results: {e}")))?;
                }
            }
        }
        Ok(())
    }

    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        Some(self.counters.clone())
    }
}

/// Register the `binning_suite` back-end type: one `<analysis>` element
/// holding one `<instance>` child per spec, each with the same content as
/// a `data_binning` element.
pub fn register_suite(registry: &mut AnalysisRegistry) {
    registry.register("binning_suite", |el, _ctx| {
        let specs: Vec<BinningSpec> =
            el.find_all("instance").map(BinningSpec::from_element).collect::<Result<_>>()?;
        let mut suite = BinningSuite::new(specs)?;
        if let Some(dir) = el.attr("output") {
            suite = suite.with_output_dir(dir);
        }
        Ok(Box::new(suite))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate routing a sequence of kernel costs over `n` streams and
    /// return each kernel's stream index.
    fn route(costs: &[f64], n: usize) -> Vec<usize> {
        let mut loads = vec![0.0; n];
        costs
            .iter()
            .map(|c| {
                let i = least_loaded_stream(&loads);
                loads[i] += c;
                i
            })
            .collect()
    }

    #[test]
    fn skewed_costs_split_heavy_kernels_across_streams() {
        // Heavy/light alternation over two streams: round-robin by
        // position would put both heavy kernels on stream 0; least-loaded
        // routing pairs each heavy kernel with a light one.
        let (heavy, light) = (1000.0, 1.0);
        let picks = route(&[heavy, light, heavy, light], 2);
        assert_eq!(picks, vec![0, 1, 1, 0]);
        let mut per_stream = [0.0f64; 2];
        for (pick, cost) in picks.iter().zip([heavy, light, heavy, light]) {
            per_stream[*pick] += cost;
        }
        assert_eq!(per_stream[0], per_stream[1], "loads must balance");
    }

    #[test]
    fn uniform_costs_degenerate_to_round_robin() {
        let picks = route(&[5.0; 8], 4);
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn ties_break_to_the_lowest_index() {
        assert_eq!(least_loaded_stream(&[2.0, 1.0, 1.0]), 1);
        assert_eq!(least_loaded_stream(&[0.0]), 0);
    }
}
