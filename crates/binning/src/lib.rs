//! # binning — the in situ data-binning analysis
//!
//! The analysis technique the paper uses to exercise its data- and
//! execution-model extensions (§4.2): given tabular data, pick two
//! variables as the coordinate axes of a uniform Cartesian mesh, locate
//! each row's bin, and reduce the remaining variables into the bins.
//! Supported reductions: count (histogram), summation, minimum, maximum,
//! and average.
//!
//! Two implementations are provided, as in the paper:
//!
//! * [`host_impl`] — runs on the host CPU;
//! * [`device_impl`] — runs as a kernel on an assigned device, using
//!   atomic memory updates "to deal with races between GPU threads
//!   accessing the same bin" (§4.4).
//!
//! Cross-rank reduction merges per-rank grids with MPI-style collectives
//! ([`reduce`]). [`BinningAnalysis`] packages everything as a SENSEI
//! analysis back-end registered under the XML type `data_binning`.

pub mod bounds;
pub mod device_impl;
pub mod host_impl;
pub mod io;
pub mod reduce;

mod adaptor;
mod grid;
mod spec;
mod suite;

pub use adaptor::{register, BinnedResult, BinningAnalysis, ResultSink};
pub use grid::GridParams;
pub use spec::{BinOp, BinningSpec, VarOp};
pub use suite::{register_suite, BinningSuite};
