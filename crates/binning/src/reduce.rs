//! Cross-rank reduction of per-rank binning grids.
//!
//! Each rank bins its local rows; the global result is the element-wise
//! combination of all per-rank grids under the operation's own semantics
//! (sums add, minima take min, ...). Averages are reduced as
//! (sum, count) pairs and finalized after the reduction — reducing
//! per-rank averages would weight ranks, not rows.

use minimpi::Comm;

use crate::spec::BinOp;

/// Element-wise combination of two accumulation grids under `op`.
pub fn merge_grids(op: BinOp, mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "grids must have identical shape");
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
        }
        BinOp::Min => {
            for (x, y) in a.iter_mut().zip(&b) {
                *x = x.min(*y);
            }
        }
        BinOp::Max => {
            for (x, y) in a.iter_mut().zip(&b) {
                *x = x.max(*y);
            }
        }
    }
    a
}

/// Allreduce a per-rank accumulation grid into the global grid.
pub fn allreduce_grid(comm: &Comm, op: BinOp, local: Vec<f64>) -> Vec<f64> {
    comm.allreduce(local, move |a, b| merge_grids(op, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridParams;
    use crate::host_impl::{bin_host, finalize};
    use minimpi::World;

    #[test]
    fn merge_semantics_per_op() {
        let a = vec![1.0, f64::INFINITY, 5.0];
        let b = vec![2.0, 3.0, f64::NEG_INFINITY];
        assert_eq!(
            merge_grids(BinOp::Sum, a.clone(), b.clone()),
            vec![3.0, f64::INFINITY, f64::NEG_INFINITY]
        );
        assert_eq!(
            merge_grids(BinOp::Min, a.clone(), b.clone()),
            vec![1.0, 3.0, f64::NEG_INFINITY]
        );
        assert_eq!(merge_grids(BinOp::Max, a, b), vec![2.0, f64::INFINITY, 5.0]);
    }

    #[test]
    fn distributed_binning_equals_serial_binning() {
        // 4 ranks each bin a slice of a global dataset; the reduced grid
        // must equal binning the whole dataset serially.
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|i| (i * 29 % 100) as f64 / 100.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i * 31 % 100) as f64 / 100.0).collect();
        let vs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 100.0).collect();
        let grid = GridParams::new(5, 5, [0.0, 0.0], [1.0, 1.0]);

        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average] {
            let serial_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let mut serial = bin_host(&xs, &ys, serial_vals, op, &grid);
            let serial_counts = bin_host(&xs, &ys, &[], BinOp::Count, &grid);
            finalize(op, &mut serial, &serial_counts);

            let (xs2, ys2, vs2, g2) = (xs.clone(), ys.clone(), vs.clone(), grid);
            let got = World::new(4).run(move |comm| {
                let chunk = n / comm.size();
                let s = comm.rank() * chunk;
                let e = if comm.rank() + 1 == comm.size() { n } else { s + chunk };
                let local_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs2[s..e] };
                let local = bin_host(&xs2[s..e], &ys2[s..e], local_vals, op, &g2);
                let mut global = allreduce_grid(&comm, op, local);
                let counts = allreduce_grid(
                    &comm,
                    BinOp::Count,
                    bin_host(&xs2[s..e], &ys2[s..e], &[], BinOp::Count, &g2),
                );
                finalize(op, &mut global, &counts);
                global
            });
            for rank_grid in got {
                for (i, (g, e)) in rank_grid.iter().zip(&serial).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-9 || (g.is_nan() && e.is_nan()),
                        "op {op:?} bin {i}: {g} vs {e}"
                    );
                }
            }
        }
    }
}
