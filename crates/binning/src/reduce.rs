//! Cross-rank reduction of per-rank binning grids.
//!
//! Each rank bins its local rows; the global result is the element-wise
//! combination of all per-rank grids under the operation's own semantics
//! (sums add, minima take min, ...). Averages are reduced as
//! (sum, count) pairs and finalized after the reduction — reducing
//! per-rank averages would weight ranks, not rows.

use minimpi::{Comm, Segment, SegmentOp};
use sensei::{Error, Result};

use crate::spec::BinOp;

/// The packed-collective merge semantics of one accumulation grid:
/// counts, sums, and average running-sums add; minima take min; maxima
/// take max — identical to [`merge_grids`], expressed per segment.
pub fn segment_op(op: BinOp) -> SegmentOp {
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => SegmentOp::Sum,
        BinOp::Min => SegmentOp::Min,
        BinOp::Max => SegmentOp::Max,
    }
}

/// Element-wise in-place combination of `part` into `acc` under `op`.
pub fn merge_into(op: BinOp, acc: &mut [f64], part: &[f64]) {
    assert_eq!(acc.len(), part.len(), "grids must have identical shape");
    match op {
        BinOp::Count | BinOp::Sum | BinOp::Average => {
            for (x, y) in acc.iter_mut().zip(part) {
                *x += *y;
            }
        }
        BinOp::Min => {
            for (x, y) in acc.iter_mut().zip(part) {
                *x = x.min(*y);
            }
        }
        BinOp::Max => {
            for (x, y) in acc.iter_mut().zip(part) {
                *x = x.max(*y);
            }
        }
    }
}

/// Element-wise combination of two accumulation grids under `op`.
pub fn merge_grids(op: BinOp, mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    merge_into(op, &mut a, &b);
    a
}

/// Allreduce a per-rank accumulation grid into the global grid.
pub fn allreduce_grid(comm: &Comm, op: BinOp, local: Vec<f64>) -> Vec<f64> {
    comm.allreduce(local, move |a, b| merge_grids(op, a, b))
}

/// Allreduce **all** per-rank accumulation grids in one packed collective:
/// the grids are laid back to back into a single buffer, each segment
/// merged under its own operation's semantics, and unpacked afterwards —
/// one communication round per step instead of one per grid. The grid
/// layout (count and shape) must be identical on every rank.
pub fn allreduce_grids_packed(comm: &Comm, grids: Vec<(BinOp, Vec<f64>)>) -> Result<Vec<Vec<f64>>> {
    let mut data = Vec::with_capacity(grids.iter().map(|(_, g)| g.len()).sum());
    let mut segments = Vec::with_capacity(grids.len());
    let mut lens = Vec::with_capacity(grids.len());
    for (op, grid) in grids {
        segments.push(Segment::new(segment_op(op), grid.len()));
        lens.push(grid.len());
        data.extend_from_slice(&grid);
    }
    let merged = comm
        .allreduce_packed(data, &segments)
        .map_err(|e| Error::Analysis(format!("packed grid allreduce: {e}")))?;
    let mut out = Vec::with_capacity(lens.len());
    let mut base = 0;
    for len in lens {
        out.push(merged[base..base + len].to_vec());
        base += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridParams;
    use crate::host_impl::{bin_host, finalize};
    use minimpi::World;

    #[test]
    fn merge_semantics_per_op() {
        let a = vec![1.0, f64::INFINITY, 5.0];
        let b = vec![2.0, 3.0, f64::NEG_INFINITY];
        assert_eq!(
            merge_grids(BinOp::Sum, a.clone(), b.clone()),
            vec![3.0, f64::INFINITY, f64::NEG_INFINITY]
        );
        assert_eq!(
            merge_grids(BinOp::Min, a.clone(), b.clone()),
            vec![1.0, 3.0, f64::NEG_INFINITY]
        );
        assert_eq!(merge_grids(BinOp::Max, a, b), vec![2.0, f64::INFINITY, 5.0]);
    }

    #[test]
    fn packed_reduction_matches_per_grid_reduction_in_one_round() {
        let ops = [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average];
        let got = World::new(3).run(move |comm| {
            let r = comm.rank() as f64;
            let local: Vec<(BinOp, Vec<f64>)> =
                ops.iter().map(|&op| (op, vec![r, 10.0 - r, r * r, -r])).collect();
            let reference: Vec<Vec<f64>> =
                local.iter().map(|(op, g)| allreduce_grid(&comm, *op, g.clone())).collect();
            let before = comm.allreduce_count();
            let packed = allreduce_grids_packed(&comm, local).unwrap();
            let rounds = comm.allreduce_count() - before;
            (packed, reference, rounds)
        });
        for (packed, reference, rounds) in got {
            assert_eq!(packed, reference);
            assert_eq!(rounds, 1, "all grids must share one allreduce round");
        }
    }

    #[test]
    fn distributed_binning_equals_serial_binning() {
        // 4 ranks each bin a slice of a global dataset; the reduced grid
        // must equal binning the whole dataset serially.
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|i| (i * 29 % 100) as f64 / 100.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i * 31 % 100) as f64 / 100.0).collect();
        let vs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 100.0).collect();
        let grid = GridParams::new(5, 5, [0.0, 0.0], [1.0, 1.0]);

        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average] {
            let serial_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let mut serial = bin_host(&xs, &ys, serial_vals, op, &grid);
            let serial_counts = bin_host(&xs, &ys, &[], BinOp::Count, &grid);
            finalize(op, &mut serial, &serial_counts);

            let (xs2, ys2, vs2, g2) = (xs.clone(), ys.clone(), vs.clone(), grid);
            let got = World::new(4).run(move |comm| {
                let chunk = n / comm.size();
                let s = comm.rank() * chunk;
                let e = if comm.rank() + 1 == comm.size() { n } else { s + chunk };
                let local_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs2[s..e] };
                let local = bin_host(&xs2[s..e], &ys2[s..e], local_vals, op, &g2);
                let mut global = allreduce_grid(&comm, op, local);
                let counts = allreduce_grid(
                    &comm,
                    BinOp::Count,
                    bin_host(&xs2[s..e], &ys2[s..e], &[], BinOp::Count, &g2),
                );
                finalize(op, &mut global, &counts);
                global
            });
            for rank_grid in got {
                for (i, (g, e)) in rank_grid.iter().zip(&serial).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-9 || (g.is_nan() && e.is_nan()),
                        "op {op:?} bin {i}: {g} vs {e}"
                    );
                }
            }
        }
    }
}
