//! Binning specifications: what to bin, onto what mesh, with which
//! reductions.

use sensei::{Error, Result};
use xmlcfg::Element;

/// A reduction incorporating a variable into a bin (§4.2: "The reduction
/// operations we support are summation, minimum, maximum, and average"),
/// plus the bare histogram count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Per-bin row count (the histogram).
    Count,
    /// Sum of the variable over the bin.
    Sum,
    /// Minimum of the variable over the bin (NaN for empty bins).
    Min,
    /// Maximum of the variable over the bin (NaN for empty bins).
    Max,
    /// Mean of the variable over the bin (NaN for empty bins).
    Average,
}

impl BinOp {
    /// The spelling used in XML (`sum`, `min`, `max`, `avg`, `count`).
    pub fn name(&self) -> &'static str {
        match self {
            BinOp::Count => "count",
            BinOp::Sum => "sum",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Average => "avg",
        }
    }

    /// Parse the XML spelling.
    pub fn parse(s: &str) -> Option<BinOp> {
        match s.trim().to_ascii_lowercase().as_str() {
            "count" => Some(BinOp::Count),
            "sum" => Some(BinOp::Sum),
            "min" => Some(BinOp::Min),
            "max" => Some(BinOp::Max),
            "avg" | "average" | "mean" => Some(BinOp::Average),
            _ => None,
        }
    }
}

/// One output: a reduction of a named variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOp {
    /// The table column to reduce (empty for [`BinOp::Count`]).
    pub var: String,
    /// The reduction.
    pub op: BinOp,
}

impl VarOp {
    /// The output array's name, e.g. `sum_mass` or `count`.
    pub fn output_name(&self) -> String {
        if self.op == BinOp::Count {
            "count".to_string()
        } else {
            format!("{}_{}", self.op.name(), self.var)
        }
    }

    /// Parse `op(var)` (or bare `count()` / `count`).
    pub fn parse(s: &str) -> Result<VarOp> {
        let s = s.trim();
        let (op_str, var) = match s.find('(') {
            Some(i) => {
                let close = s
                    .rfind(')')
                    .ok_or_else(|| Error::Config(format!("missing ')' in operation '{s}'")))?;
                (&s[..i], s[i + 1..close].trim().to_string())
            }
            None => (s, String::new()),
        };
        let op = BinOp::parse(op_str)
            .ok_or_else(|| Error::Config(format!("unknown binning operation '{op_str}'")))?;
        if op != BinOp::Count && var.is_empty() {
            return Err(Error::Config(format!("operation '{s}' needs a variable")));
        }
        Ok(VarOp { var, op })
    }
}

/// A complete binning configuration — one "data binning operator
/// instance" in the paper's terms (the evaluation runs 9 of these, each
/// reducing 10 variables, for 90 binning operations per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct BinningSpec {
    /// The mesh (table) to consume.
    pub mesh: String,
    /// The two coordinate variables (the mesh's axes).
    pub axes: (String, String),
    /// Mesh resolution (cells per axis).
    pub resolution: (usize, usize),
    /// Reductions to compute.
    pub ops: Vec<VarOp>,
    /// Manual axis bounds `[lo, hi]` per axis; `None` = compute min/max
    /// on the fly (§4.2).
    pub bounds: Option<([f64; 2], [f64; 2])>,
}

impl BinningSpec {
    /// A spec binning `ops` over `(x, y)` on a square mesh.
    pub fn new(
        mesh: impl Into<String>,
        axes: (impl Into<String>, impl Into<String>),
        resolution: usize,
        ops: Vec<VarOp>,
    ) -> Self {
        BinningSpec {
            mesh: mesh.into(),
            axes: (axes.0.into(), axes.1.into()),
            resolution: (resolution, resolution),
            ops,
            bounds: None,
        }
    }

    /// Parse the back-end specific XML content:
    ///
    /// ```xml
    /// <analysis type="data_binning" ...>
    ///   <mesh name="bodies"/>
    ///   <axes>x,y</axes>
    ///   <operations>count(),sum(mass),avg(vx)</operations>
    ///   <resolution x="256" y="256"/>
    ///   <bounds xlo="-1" xhi="1" ylo="-1" yhi="1"/>  <!-- optional -->
    /// </analysis>
    /// ```
    pub fn from_element(el: &Element) -> Result<BinningSpec> {
        let mesh =
            el.find_child("mesh").and_then(|m| m.attr("name")).unwrap_or("bodies").to_string();
        let axes_el =
            el.find_child("axes").ok_or_else(|| Error::Config("missing <axes>".into()))?;
        let axes_txt = axes_el.text();
        let mut parts = axes_txt.split(',').map(str::trim);
        let ax = parts.next().filter(|s| !s.is_empty());
        let ay = parts.next().filter(|s| !s.is_empty());
        let (ax, ay) = match (ax, ay, parts.next()) {
            (Some(a), Some(b), None) => (a.to_string(), b.to_string()),
            _ => {
                return Err(Error::Config(format!(
                    "<axes> must name two variables, got '{axes_txt}'"
                )))
            }
        };

        let ops_el = el
            .find_child("operations")
            .ok_or_else(|| Error::Config("missing <operations>".into()))?;
        let ops: Vec<VarOp> = ops_el
            .text()
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(VarOp::parse)
            .collect::<Result<_>>()?;
        if ops.is_empty() {
            return Err(Error::Config("<operations> lists no operations".into()));
        }

        let (rx, ry) = match el.find_child("resolution") {
            None => (256, 256),
            Some(r) => (
                r.parse_attr_or::<usize>("x", 256).map_err(Error::Xml)?,
                r.parse_attr_or::<usize>("y", 256).map_err(Error::Xml)?,
            ),
        };
        if rx == 0 || ry == 0 {
            return Err(Error::Config("resolution must be positive".into()));
        }

        let bounds = match el.find_child("bounds") {
            None => None,
            Some(b) => {
                let xlo = b.parse_attr::<f64>("xlo").map_err(Error::Xml)?;
                let xhi = b.parse_attr::<f64>("xhi").map_err(Error::Xml)?;
                let ylo = b.parse_attr::<f64>("ylo").map_err(Error::Xml)?;
                let yhi = b.parse_attr::<f64>("yhi").map_err(Error::Xml)?;
                match (xlo, xhi, ylo, yhi) {
                    (Some(a), Some(b_), Some(c), Some(d)) => Some(([a, b_], [c, d])),
                    _ => return Err(Error::Config("<bounds> needs xlo/xhi/ylo/yhi".into())),
                }
            }
        };

        Ok(BinningSpec { mesh, axes: (ax, ay), resolution: (rx, ry), ops, bounds })
    }

    /// Every variable the spec reads (axes + reduced variables, deduped).
    pub fn required_variables(&self) -> Vec<&str> {
        let mut vars = vec![self.axes.0.as_str(), self.axes.1.as_str()];
        for vo in &self.ops {
            if vo.op != BinOp::Count {
                vars.push(vo.var.as_str());
            }
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varop_parsing() {
        assert_eq!(
            VarOp::parse("sum(mass)").unwrap(),
            VarOp { var: "mass".into(), op: BinOp::Sum }
        );
        assert_eq!(
            VarOp::parse(" avg( vx ) ").unwrap(),
            VarOp { var: "vx".into(), op: BinOp::Average }
        );
        assert_eq!(VarOp::parse("count()").unwrap(), VarOp { var: "".into(), op: BinOp::Count });
        assert_eq!(VarOp::parse("count").unwrap().op, BinOp::Count);
        assert!(VarOp::parse("frobnicate(x)").is_err());
        assert!(VarOp::parse("sum()").is_err());
        assert!(VarOp::parse("sum(x").is_err());
    }

    #[test]
    fn output_names() {
        assert_eq!(VarOp::parse("sum(mass)").unwrap().output_name(), "sum_mass");
        assert_eq!(VarOp::parse("count()").unwrap().output_name(), "count");
    }

    #[test]
    fn binop_names_roundtrip() {
        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average] {
            assert_eq!(BinOp::parse(op.name()), Some(op));
        }
    }

    #[test]
    fn spec_from_xml() {
        let xml = r#"
            <analysis type="data_binning">
              <mesh name="particles"/>
              <axes>x, z</axes>
              <operations>count(), sum(mass), min(vx)</operations>
              <resolution x="64" y="32"/>
              <bounds xlo="-2" xhi="2" ylo="-1" yhi="1"/>
            </analysis>"#;
        let el = xmlcfg::parse(xml).unwrap();
        let spec = BinningSpec::from_element(&el).unwrap();
        assert_eq!(spec.mesh, "particles");
        assert_eq!(spec.axes, ("x".to_string(), "z".to_string()));
        assert_eq!(spec.resolution, (64, 32));
        assert_eq!(spec.ops.len(), 3);
        assert_eq!(spec.bounds, Some(([-2.0, 2.0], [-1.0, 1.0])));
        assert_eq!(spec.required_variables(), vec!["mass", "vx", "x", "z"]);
    }

    #[test]
    fn spec_defaults() {
        let xml = r#"<analysis><axes>x,y</axes><operations>count()</operations></analysis>"#;
        let el = xmlcfg::parse(xml).unwrap();
        let spec = BinningSpec::from_element(&el).unwrap();
        assert_eq!(spec.mesh, "bodies");
        assert_eq!(spec.resolution, (256, 256));
        assert_eq!(spec.bounds, None);
    }

    #[test]
    fn spec_rejects_bad_configs() {
        for xml in [
            r#"<a><operations>count()</operations></a>"#,
            r#"<a><axes>x</axes><operations>count()</operations></a>"#,
            r#"<a><axes>x,y,z</axes><operations>count()</operations></a>"#,
            r#"<a><axes>x,y</axes></a>"#,
            r#"<a><axes>x,y</axes><operations></operations></a>"#,
            r#"<a><axes>x,y</axes><operations>count()</operations><resolution x="0"/></a>"#,
            r#"<a><axes>x,y</axes><operations>count()</operations><bounds xlo="0"/></a>"#,
        ] {
            let el = xmlcfg::parse(xml).unwrap();
            assert!(BinningSpec::from_element(&el).is_err(), "should reject: {xml}");
        }
    }
}
