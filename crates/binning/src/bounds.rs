//! On-the-fly axis bounds: local min/max of the coordinate columns,
//! combined across MPI ranks.

use minimpi::{Comm, Segment, SegmentOp};
use sensei::{Error, Result};

/// Min/max of a host-resident column, skipping non-finite values.
pub fn minmax_host(col: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in col {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// Combine per-rank `(lo, hi)` pairs into the global bounds with an
/// allreduce (§4.2: bounds "obtained on the fly by calculating the
/// minimum and maximum of the respective coordinate variables").
pub fn global_bounds(comm: &Comm, local: (f64, f64)) -> (f64, f64) {
    comm.allreduce(local, |a, b| (a.0.min(b.0), a.1.max(b.1)))
}

/// Fused min/max over several host-resident columns in one traversal:
/// each row touches every column once, instead of one full pass per
/// column. Returns `(lo, hi)` per column, skipping non-finite values
/// exactly like [`minmax_host`].
pub fn minmax_multi_host(cols: &[&[f64]]) -> Vec<(f64, f64)> {
    let mut out = vec![(f64::INFINITY, f64::NEG_INFINITY); cols.len()];
    let rows = cols.iter().map(|c| c.len()).max().unwrap_or(0);
    for i in 0..rows {
        for (k, col) in cols.iter().enumerate() {
            let Some(&v) = col.get(i) else { continue };
            if v.is_finite() {
                out[k].0 = out[k].0.min(v);
                out[k].1 = out[k].1.max(v);
            }
        }
    }
    out
}

/// [`minmax_host`] over a layout-mapped column (the per-op reference
/// path for grouped tables).
pub fn minmax_mapped(col: &crate::host_impl::MappedCol) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..col.len() {
        let v = col.get(i);
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// Fused min/max over several layout-mapped columns with a lane-blocked
/// inner loop: each lane block of every column is reduced before moving
/// on (for an AoSoA group the block's values are contiguous, which is
/// what the simulated vector units reward). Min/max folds commute over
/// finite values and non-finite rows are skipped exactly like
/// [`minmax_host`], so the result equals [`minmax_multi_host`] over the
/// same logical values bit for bit.
pub fn minmax_multi_mapped(cols: &[&crate::host_impl::MappedCol]) -> Vec<(f64, f64)> {
    let mut out = vec![(f64::INFINITY, f64::NEG_INFINITY); cols.len()];
    let lane = cols.iter().map(|c| c.map().layout().lane_width().max(1)).max().unwrap_or(1);
    for (k, col) in cols.iter().enumerate() {
        let n = col.len();
        let mut start = 0;
        while start < n {
            let m = lane.min(n - start);
            for l in 0..m {
                let v = col.get(start + l);
                if v.is_finite() {
                    out[k].0 = out[k].0.min(v);
                    out[k].1 = out[k].1.max(v);
                }
            }
            start += m;
        }
    }
    out
}

/// Combine per-rank `(lo, hi)` pairs for **several** axes in a single
/// packed allreduce (alternating min/max segments), instead of one
/// allreduce per axis.
pub fn global_bounds_packed(comm: &Comm, local: &[(f64, f64)]) -> Result<Vec<(f64, f64)>> {
    let mut data = Vec::with_capacity(2 * local.len());
    let mut segments = Vec::with_capacity(2 * local.len());
    for &(lo, hi) in local {
        data.push(lo);
        data.push(hi);
        segments.push(Segment::new(SegmentOp::Min, 1));
        segments.push(Segment::new(SegmentOp::Max, 1));
    }
    let merged = comm
        .allreduce_packed(data, &segments)
        .map_err(|e| Error::Analysis(format!("packed bounds allreduce: {e}")))?;
    Ok(merged.chunks_exact(2).map(|p| (p[0], p[1])).collect())
}

/// Widen possibly degenerate bounds into a usable bin range: empty data
/// becomes the unit interval, a single point gets a symmetric margin.
pub fn usable_range(lo: f64, hi: f64) -> (f64, f64) {
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if hi > lo {
        return (lo, hi);
    }
    // All values identical: center a unit-ish interval on them.
    let pad = if lo == 0.0 { 0.5 } else { lo.abs() * 0.5 };
    (lo - pad, hi + pad)
}

/// Full pipeline for one axis: local min/max → allreduce → usable range.
pub fn axis_bounds(comm: &Comm, local_col: &[f64]) -> Result<(f64, f64)> {
    let local = minmax_host(local_col);
    let (lo, hi) = global_bounds(comm, local);
    Ok(usable_range(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;

    #[test]
    fn host_minmax_skips_nonfinite() {
        let (lo, hi) = minmax_host(&[1.0, f64::NAN, -2.0, f64::INFINITY, 3.0]);
        assert_eq!((lo, hi), (-2.0, 3.0));
    }

    #[test]
    fn empty_column_gives_unit_interval() {
        let (lo, hi) = minmax_host(&[]);
        assert_eq!(usable_range(lo, hi), (0.0, 1.0));
    }

    #[test]
    fn degenerate_column_is_padded() {
        let (lo, hi) = usable_range(4.0, 4.0);
        assert!(lo < 4.0 && hi > 4.0);
        let (lo, hi) = usable_range(0.0, 0.0);
        assert_eq!((lo, hi), (-0.5, 0.5));
        let (lo, hi) = usable_range(-3.0, -3.0);
        assert!(lo < -3.0 && hi > -3.0);
    }

    #[test]
    fn multi_column_minmax_matches_per_column() {
        let a = [1.0, f64::NAN, -2.0, 3.0];
        let b = [9.0, -9.0];
        let got = minmax_multi_host(&[&a, &b, &[]]);
        assert_eq!(got[0], minmax_host(&a));
        assert_eq!(got[1], minmax_host(&b));
        assert_eq!(got[2], (f64::INFINITY, f64::NEG_INFINITY));
        assert!(minmax_multi_host(&[]).is_empty());
    }

    #[test]
    fn packed_bounds_match_per_axis_bounds_with_one_allreduce() {
        let got = World::new(4).run(|c| {
            let r = c.rank() as f64;
            let local = vec![(r, r + 5.0), (-r, r * 10.0)];
            let before = c.allreduce_count();
            let packed = global_bounds_packed(&c, &local).unwrap();
            let rounds = c.allreduce_count() - before;
            (packed, rounds)
        });
        for (packed, rounds) in got {
            assert_eq!(packed, vec![(0.0, 8.0), (-3.0, 30.0)]);
            assert_eq!(rounds, 1, "both axes must share one allreduce round");
        }
    }

    #[test]
    fn bounds_reduce_across_ranks() {
        let got = World::new(4).run(|c| {
            // rank r holds values around r*10.
            let col: Vec<f64> = vec![c.rank() as f64 * 10.0, c.rank() as f64 * 10.0 + 5.0];
            axis_bounds(&c, &col).unwrap()
        });
        for (lo, hi) in got {
            assert_eq!((lo, hi), (0.0, 35.0));
        }
    }
}
