//! On-the-fly axis bounds: local min/max of the coordinate columns,
//! combined across MPI ranks.

use minimpi::Comm;
use sensei::Result;

/// Min/max of a host-resident column, skipping non-finite values.
pub fn minmax_host(col: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in col {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// Combine per-rank `(lo, hi)` pairs into the global bounds with an
/// allreduce (§4.2: bounds "obtained on the fly by calculating the
/// minimum and maximum of the respective coordinate variables").
pub fn global_bounds(comm: &Comm, local: (f64, f64)) -> (f64, f64) {
    comm.allreduce(local, |a, b| (a.0.min(b.0), a.1.max(b.1)))
}

/// Widen possibly degenerate bounds into a usable bin range: empty data
/// becomes the unit interval, a single point gets a symmetric margin.
pub fn usable_range(lo: f64, hi: f64) -> (f64, f64) {
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if hi > lo {
        return (lo, hi);
    }
    // All values identical: center a unit-ish interval on them.
    let pad = if lo == 0.0 { 0.5 } else { lo.abs() * 0.5 };
    (lo - pad, hi + pad)
}

/// Full pipeline for one axis: local min/max → allreduce → usable range.
pub fn axis_bounds(comm: &Comm, local_col: &[f64]) -> Result<(f64, f64)> {
    let local = minmax_host(local_col);
    let (lo, hi) = global_bounds(comm, local);
    Ok(usable_range(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::World;

    #[test]
    fn host_minmax_skips_nonfinite() {
        let (lo, hi) = minmax_host(&[1.0, f64::NAN, -2.0, f64::INFINITY, 3.0]);
        assert_eq!((lo, hi), (-2.0, 3.0));
    }

    #[test]
    fn empty_column_gives_unit_interval() {
        let (lo, hi) = minmax_host(&[]);
        assert_eq!(usable_range(lo, hi), (0.0, 1.0));
    }

    #[test]
    fn degenerate_column_is_padded() {
        let (lo, hi) = usable_range(4.0, 4.0);
        assert!(lo < 4.0 && hi > 4.0);
        let (lo, hi) = usable_range(0.0, 0.0);
        assert_eq!((lo, hi), (-0.5, 0.5));
        let (lo, hi) = usable_range(-3.0, -3.0);
        assert!(lo < -3.0 && hi > -3.0);
    }

    #[test]
    fn bounds_reduce_across_ranks() {
        let got = World::new(4).run(|c| {
            // rank r holds values around r*10.
            let col: Vec<f64> = vec![c.rank() as f64 * 10.0, c.rank() as f64 * 10.0 + 5.0];
            axis_bounds(&c, &col).unwrap()
        });
        for (lo, hi) in got {
            assert_eq!((lo, hi), (0.0, 35.0));
        }
    }
}
