//! End-to-end tests: the data-binning back-end coupled through the SENSEI
//! bridge, across ranks, placements, and execution methods.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    AnalysisRegistry, BackendControls, Bridge, ConfigurableAnalysis, CreateContext, DataAdaptor,
    DeviceSpec, ExecutionMethod, MeshMetadata, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};

/// Simulation adaptor publishing a fixed particle table, optionally
/// device-resident. The table (with its uploads) is built once at
/// construction; `mesh()` hands out zero-copy handles, as a real
/// simulation adaptor would.
struct Particles {
    table: TableData,
    step: u64,
}

impl Particles {
    fn new(
        node: Arc<SimNode>,
        device: Option<usize>,
        xs: Vec<f64>,
        ys: Vec<f64>,
        mass: Vec<f64>,
    ) -> Self {
        let alloc = if device.is_some() { Allocator::OpenMp } else { Allocator::Malloc };
        let mut table = TableData::new();
        for (name, data) in [("x", &xs), ("y", &ys), ("mass", &mass)] {
            let col = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                data,
                1,
                alloc,
                device,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(col.as_array_ref());
        }
        Particles { table, step: 0 }
    }
}

impl DataAdaptor for Particles {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64 * 0.1
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

fn spec() -> BinningSpec {
    let mut s = BinningSpec::new(
        "bodies",
        ("x", "y"),
        2,
        vec![
            VarOp { var: String::new(), op: BinOp::Count },
            VarOp { var: "mass".into(), op: BinOp::Sum },
            VarOp { var: "mass".into(), op: BinOp::Average },
        ],
    );
    s.bounds = Some(([0.0, 2.0], [0.0, 2.0]));
    s
}

/// Each rank owns one point in cell (rank % 4) with mass rank+1.
fn rank_particles(node: Arc<SimNode>, device: Option<usize>, rank: usize) -> Particles {
    let cell = rank % 4;
    let (cx, cy) = ((cell % 2) as f64 + 0.5, (cell / 2) as f64 + 0.5);
    Particles::new(node, device, vec![cx], vec![cy], vec![rank as f64 + 1.0])
}

fn run_case(
    ranks: usize,
    device_spec: DeviceSpec,
    execution: ExecutionMethod,
) -> Vec<binning::BinnedResult> {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let analysis =
            BinningAnalysis::new(spec()).with_sink(sink2.clone()).with_controls(BackendControls {
                execution,
                device: device_spec,
                ..Default::default()
            });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let device = match device_spec {
            DeviceSpec::Host => None,
            DeviceSpec::Explicit(d) => Some(d),
            DeviceSpec::Auto => Some(comm.rank() % 2),
        };
        let mut sim = rank_particles(node, device, comm.rank());
        for step in 0..3 {
            sim.step = step;
            bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock().clone();
    results
}

fn check_global_result(results: &[binning::BinnedResult], ranks: usize) {
    assert_eq!(results.len(), 3, "one result per step");
    for r in results {
        let count = r.array("count").unwrap();
        let sum = r.array("sum_mass").unwrap();
        let avg = r.array("avg_mass").unwrap();
        // With 4 ranks: one particle per cell, masses 1..=4.
        let total: f64 = count.iter().sum();
        assert_eq!(total as usize, ranks);
        let mass_total: f64 = sum.iter().sum();
        assert_eq!(mass_total, (ranks * (ranks + 1)) as f64 / 2.0);
        for b in 0..4 {
            if count[b] > 0.0 {
                assert!((avg[b] - sum[b] / count[b]).abs() < 1e-12);
            } else {
                assert!(avg[b].is_nan());
            }
        }
    }
}

#[test]
fn lockstep_on_host() {
    let results = run_case(4, DeviceSpec::Host, ExecutionMethod::Lockstep);
    check_global_result(&results, 4);
}

#[test]
fn lockstep_on_devices() {
    let results = run_case(4, DeviceSpec::Auto, ExecutionMethod::Lockstep);
    check_global_result(&results, 4);
}

#[test]
fn asynchronous_on_host() {
    let results = run_case(4, DeviceSpec::Host, ExecutionMethod::Asynchronous);
    check_global_result(&results, 4);
}

#[test]
fn asynchronous_on_devices() {
    let results = run_case(4, DeviceSpec::Auto, ExecutionMethod::Asynchronous);
    check_global_result(&results, 4);
}

#[test]
fn host_and_device_binning_agree_bitwise_on_sums() {
    let host = run_case(2, DeviceSpec::Host, ExecutionMethod::Lockstep);
    let dev = run_case(2, DeviceSpec::Explicit(1), ExecutionMethod::Lockstep);
    for (h, d) in host.iter().zip(&dev) {
        assert_eq!(h.array("count").unwrap(), d.array("count").unwrap());
        assert_eq!(h.array("sum_mass").unwrap(), d.array("sum_mass").unwrap());
    }
}

#[test]
fn same_device_access_is_zero_copy() {
    // Data on device 0, binning on device 0: access views must be direct
    // — no h2d/d2h/d2d traffic beyond the result download.
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let analysis = BinningAnalysis::new(spec()).with_controls(BackendControls {
            device: DeviceSpec::Explicit(0),
            ..Default::default()
        });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let mut sim = rank_particles(node.clone(), Some(0), 0);
        let before = node.stats();
        sim.step = 1;
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        let after = node.stats();
        assert_eq!(after.copies_h2d, before.copies_h2d, "inputs are accessed in place");
        assert_eq!(after.copies_d2d, before.copies_d2d, "no inter-device movement");
        // Result download (one d2h per binning kernel + bounds) is expected.
        assert!(after.copies_d2h > before.copies_d2h);
        bridge.finalize(&comm).unwrap();
    });
}

#[test]
fn host_placement_moves_data_off_device() {
    // Data on device, binning on host: columns must be moved d2h.
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let analysis = BinningAnalysis::new(spec())
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let mut sim = rank_particles(node.clone(), Some(0), 0);
        let before = node.stats();
        sim.step = 1;
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        let after = node.stats();
        assert!(after.copies_d2h > before.copies_d2h, "device data must move to the host");
        bridge.finalize(&comm).unwrap();
    });
}

#[test]
fn xml_configured_binning_runs_through_registry() {
    const XML: &str = r#"
      <sensei>
        <analysis type="data_binning" mode="lockstep" device="-1">
          <axes>x,y</axes>
          <operations>count(),sum(mass)</operations>
          <resolution x="2" y="2"/>
          <bounds xlo="0" xhi="2" ylo="0" yhi="2"/>
        </analysis>
      </sensei>"#;
    World::new(2).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut registry = AnalysisRegistry::new();
        binning::register(&mut registry);
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let ctx = CreateContext { node: node.clone(), rank: comm.rank(), size: comm.size() };
        let backends = cfg.instantiate(&registry, &ctx).unwrap();
        assert_eq!(backends.len(), 1);

        let mut bridge = Bridge::new(node.clone());
        for b in backends {
            bridge.add_analysis(b, &comm).unwrap();
        }
        let mut sim = rank_particles(node, None, comm.rank());
        sim.step = 0;
        assert!(bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap());
        bridge.finalize(&comm).unwrap();
    });
}

#[test]
fn auto_bounds_cover_all_ranks_data() {
    // No manual bounds: the analysis computes global min/max on the fly.
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(3).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut s = spec();
        s.bounds = None;
        let analysis = BinningAnalysis::new(s).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        // rank r's particle sits at (r, r) with mass 1.
        let mut sim = Particles::new(
            node,
            Some(0),
            vec![comm.rank() as f64],
            vec![comm.rank() as f64],
            vec![1.0],
        );
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        sim.step = 1;
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    for r in results.iter() {
        // Every particle is inside the auto bounds: total count = 3.
        assert_eq!(r.array("count").unwrap().iter().sum::<f64>(), 3.0);
        assert_eq!(r.grid.lo[0], 0.0);
        assert_eq!(r.grid.hi[0], 2.0);
    }
}

#[test]
fn multiblock_tables_are_binned_per_block() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let analysis = BinningAnalysis::new(spec()).with_sink(sink.clone());
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();

        struct MultiSim {
            node: Arc<SimNode>,
        }
        impl DataAdaptor for MultiSim {
            fn num_meshes(&self) -> usize {
                1
            }
            fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
                Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
            }
            fn mesh(&self, _name: &str) -> Result<DataObject> {
                let mk = |xs: &[f64], m: &[f64]| {
                    let mut t = TableData::new();
                    for (name, d) in [("x", xs), ("y", xs), ("mass", m)] {
                        let a = HamrDataArray::<f64>::from_slice(
                            name,
                            self.node.clone(),
                            d,
                            1,
                            Allocator::Malloc,
                            None,
                            HamrStream::default_stream(),
                            StreamMode::Sync,
                        )
                        .unwrap();
                        t.set_column(a.as_array_ref());
                    }
                    DataObject::Table(t)
                };
                let mut mb = svtk::MultiBlock::new(3);
                mb.set_block(0, mk(&[0.5], &[2.0]));
                mb.set_block(2, mk(&[1.5, 1.6], &[3.0, 4.0]));
                Ok(DataObject::Multi(mb))
            }
            fn time(&self) -> f64 {
                0.0
            }
            fn time_step(&self) -> u64 {
                0
            }
        }

        let sim = MultiSim { node };
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        bridge.finalize(&comm).unwrap();
        let results = sink.lock();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.array("count").unwrap().iter().sum::<f64>(), 3.0);
        assert_eq!(r.array("sum_mass").unwrap().iter().sum::<f64>(), 9.0);
    });
}

/// Read an image's cell arrays back through the accessor path: every
/// array is materialized with `to_vec` (host-accessible view), whatever
/// its placement, and keyed by name.
fn image_cell_arrays(img: &svtk::ImageData) -> Vec<(String, Vec<u64>)> {
    img.data(svtk::FieldAssociation::Cell)
        .arrays()
        .iter()
        .map(|a| {
            let vals = svtk::downcast::<f64>(a).unwrap().to_vec().unwrap();
            (a.name().to_string(), vals.iter().map(|v| v.to_bits()).collect())
        })
        .collect()
}

#[test]
fn to_image_is_layout_agnostic() {
    // `BinnedResult::to_image` publication must be independent of the
    // physical layout of the source table: results flow to it through
    // the accessor path, so a grouped AoS/SoA/AoSoA backing (including a
    // ragged AoSoA tail — 13 rows is not a lane multiple) produces
    // images bit-identical to the scalar-column reference, for both the
    // host and the device publication paths.
    let n = 13;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 2.0).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73) % 2.0).collect();
    let ms: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();

    type Published = (Vec<(String, Vec<u64>)>, Vec<(String, Vec<u64>)>);
    let publish = |layout: hamr::Layout| -> Published {
        let (xs, ys, ms) = (xs.clone(), ys.clone(), ms.clone());
        let out: Arc<Mutex<Published>> = Arc::new(Mutex::new((Vec::new(), Vec::new())));
        let out2 = out.clone();
        World::new(1).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
            let analysis = BinningAnalysis::new(spec()).with_sink(sink.clone());
            let mut bridge = Bridge::new(node.clone());
            bridge.add_analysis(Box::new(analysis), &comm).unwrap();
            let mut sim = Particles::new(node.clone(), None, xs.clone(), ys.clone(), ms.clone());
            sim.table.group_columns(&["x", "y", "mass"], layout, &node).unwrap();
            bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
            bridge.finalize(&comm).unwrap();
            let result = sink.lock().last().cloned().unwrap();
            let host_img = result.to_image(&node).unwrap();
            let dev_img = result.to_image_on(&node, Some(0)).unwrap();
            *out2.lock() = (image_cell_arrays(&host_img), image_cell_arrays(&dev_img));
        });
        let guard = out.lock();
        guard.clone()
    };

    let (ref_host, ref_dev) = publish(hamr::Layout::Scalar);
    assert_eq!(ref_host.len(), 3, "count, sum_mass, avg_mass");
    assert_eq!(ref_host, ref_dev, "device publication reads back identical to host");
    for layout in [
        hamr::Layout::AoS,
        hamr::Layout::SoA,
        hamr::Layout::AoSoA { lane_width: 4 },
        hamr::Layout::AoSoA { lane_width: 8 },
    ] {
        let (host, dev) = publish(layout);
        assert_eq!(host, ref_host, "{} host image differs from scalar", layout.name());
        assert_eq!(dev, ref_dev, "{} device image differs from scalar", layout.name());
    }
}
