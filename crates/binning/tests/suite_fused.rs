//! Fused-suite equivalence: a [`binning::BinningSuite`] (shared per-step
//! fetch, batched kernels, one packed allreduce) must produce grids
//! bit-identical to independent per-op [`binning::BinningAnalysis`]
//! instances, while doing provably less work per step.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, BackendControls, Bridge, DataAdaptor, DeviceSpec, MeshMetadata, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinOp, BinnedResult, BinningAnalysis, BinningSpec, BinningSuite, ResultSink, VarOp};

/// Particle table with four columns; each rank owns a deterministic
/// pseudo-random slice.
struct Particles {
    table: TableData,
    step: u64,
}

impl Particles {
    fn new(node: Arc<SimNode>, device: Option<usize>, rank: usize) -> Self {
        let n = 200;
        let col = |seed: usize| -> Vec<f64> {
            (0..n).map(|i| (((i * seed + rank * 7919) % 1000) as f64) / 500.0 - 1.0).collect()
        };
        let alloc = if device.is_some() { Allocator::OpenMp } else { Allocator::Malloc };
        let mut table = TableData::new();
        for (name, seed) in [("x", 37), ("y", 53), ("z", 71), ("m", 97)] {
            let arr = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &col(seed),
                1,
                alloc,
                device,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(arr.as_array_ref());
        }
        Particles { table, step: 0 }
    }
}

impl DataAdaptor for Particles {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64 * 0.1
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// Three coordinate systems, five ops each, prescribed bounds.
fn specs() -> Vec<BinningSpec> {
    [("x", "y"), ("x", "z"), ("y", "z")]
        .iter()
        .map(|(a, b)| {
            let mut s = BinningSpec::new(
                "bodies",
                (*a, *b),
                4,
                vec![
                    VarOp { var: String::new(), op: BinOp::Count },
                    VarOp { var: "m".into(), op: BinOp::Sum },
                    VarOp { var: "m".into(), op: BinOp::Min },
                    VarOp { var: "m".into(), op: BinOp::Max },
                    VarOp { var: "m".into(), op: BinOp::Average },
                ],
            );
            s.bounds = Some(([-1.0, 1.0], [-1.0, 1.0]));
            s
        })
        .collect()
}

fn run_suite(
    ranks: usize,
    device_spec: DeviceSpec,
    steps: u64,
    auto_bounds: bool,
) -> (Vec<BinnedResult>, sensei::CounterSnapshot) {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    let snaps = World::new(ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut specs = specs();
        if auto_bounds {
            for s in &mut specs {
                s.bounds = None;
            }
        }
        let suite = BinningSuite::new(specs)
            .unwrap()
            .with_sink(sink2.clone())
            .with_controls(BackendControls { device: device_spec, ..Default::default() });
        let counters = suite.counters().unwrap();
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(suite), &comm).unwrap();
        let device = match device_spec {
            DeviceSpec::Host => None,
            DeviceSpec::Explicit(d) => Some(d),
            DeviceSpec::Auto => Some(comm.rank() % 2),
        };
        let mut sim = Particles::new(node, device, comm.rank());
        for step in 0..steps {
            sim.step = step;
            bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        }
        bridge.finalize(&comm).unwrap();
        counters.snapshot()
    });
    let results = sink.lock().clone();
    (results, snaps[0])
}

fn run_per_op_reference(
    ranks: usize,
    device_spec: DeviceSpec,
    steps: u64,
    auto_bounds: bool,
) -> Vec<Vec<BinnedResult>> {
    let mut specs = specs();
    if auto_bounds {
        for s in &mut specs {
            s.bounds = None;
        }
    }
    let sinks: Vec<ResultSink> = specs.iter().map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let sinks2 = sinks.clone();
    World::new(ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut bridge = Bridge::new(node.clone());
        for (spec, sink) in specs.clone().into_iter().zip(&sinks2) {
            let analysis = BinningAnalysis::new(spec)
                .with_fused(false)
                .with_sink(sink.clone())
                .with_controls(BackendControls { device: device_spec, ..Default::default() });
            bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        }
        let device = match device_spec {
            DeviceSpec::Host => None,
            DeviceSpec::Explicit(d) => Some(d),
            DeviceSpec::Auto => Some(comm.rank() % 2),
        };
        let mut sim = Particles::new(node, device, comm.rank());
        for step in 0..steps {
            sim.step = step;
            bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    sinks.iter().map(|s| s.lock().clone()).collect()
}

fn assert_bit_identical(suite: &[BinnedResult], reference: &[Vec<BinnedResult>], steps: usize) {
    let num_specs = reference.len();
    assert_eq!(suite.len(), num_specs * steps, "one suite result per spec per step");
    for step in 0..steps {
        for (si, per_spec) in reference.iter().enumerate() {
            let s = &suite[step * num_specs + si];
            let r = &per_spec[step];
            assert_eq!(s.axes, r.axes);
            assert_eq!(s.arrays.len(), r.arrays.len());
            for ((sn, sv), (rn, rv)) in s.arrays.iter().zip(&r.arrays) {
                assert_eq!(sn, rn);
                assert_eq!(
                    sv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    rv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "spec {si} step {step} array {sn}"
                );
            }
        }
    }
}

#[test]
fn suite_matches_per_op_instances_on_host() {
    let (suite, _) = run_suite(2, DeviceSpec::Host, 3, false);
    let reference = run_per_op_reference(2, DeviceSpec::Host, 3, false);
    assert_bit_identical(&suite, &reference, 3);
}

#[test]
fn suite_matches_per_op_instances_on_device() {
    let (suite, _) = run_suite(2, DeviceSpec::Explicit(0), 3, false);
    let reference = run_per_op_reference(2, DeviceSpec::Explicit(0), 3, false);
    assert_bit_identical(&suite, &reference, 3);
}

#[test]
fn suite_matches_per_op_instances_with_auto_bounds() {
    let (suite, _) = run_suite(2, DeviceSpec::Host, 2, true);
    let reference = run_per_op_reference(2, DeviceSpec::Host, 2, true);
    assert_bit_identical(&suite, &reference, 2);
}

#[test]
fn suite_issues_one_allreduce_per_step() {
    // Prescribed bounds: the only collective is the packed grid
    // reduction — exactly one allreduce round per step for all 3 specs
    // x 6 grids.
    let steps = 4;
    let (_, counters) = run_suite(2, DeviceSpec::Host, steps, false);
    assert_eq!(counters.allreduces, steps, "one packed allreduce per step");
}

#[test]
fn suite_launches_one_kernel_and_download_per_spec_per_step() {
    let steps = 3;
    let num_specs = 3;
    let (_, counters) = run_suite(1, DeviceSpec::Explicit(0), steps, false);
    // Prescribed bounds: no bounds kernels; one fused kernel and one
    // packed download per (coordinate system, fetched block).
    assert_eq!(counters.kernel_launches, num_specs * steps);
    assert_eq!(counters.downloads, num_specs * steps);
    assert_eq!(counters.allreduces, steps);
}

#[test]
fn xml_configured_suite_runs_through_registry() {
    const XML: &str = r#"
      <sensei>
        <analysis type="binning_suite" mode="lockstep" device="-1">
          <instance>
            <mesh name="bodies"/>
            <axes>x,y</axes>
            <operations>count(),sum(m)</operations>
            <resolution x="2" y="2"/>
            <bounds xlo="-1" xhi="1" ylo="-1" yhi="1"/>
          </instance>
          <instance>
            <mesh name="bodies"/>
            <axes>x,z</axes>
            <operations>count(),max(m)</operations>
            <resolution x="2" y="2"/>
            <bounds xlo="-1" xhi="1" ylo="-1" yhi="1"/>
          </instance>
        </analysis>
      </sensei>"#;
    use sensei::{AnalysisRegistry, ConfigurableAnalysis, CreateContext};
    World::new(2).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut registry = AnalysisRegistry::new();
        binning::register_suite(&mut registry);
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let ctx = CreateContext { node: node.clone(), rank: comm.rank(), size: comm.size() };
        let backends = cfg.instantiate(&registry, &ctx).unwrap();
        assert_eq!(backends.len(), 1, "two instances collapse into one suite back-end");

        let mut bridge = Bridge::new(node.clone());
        for b in backends {
            bridge.add_analysis(b, &comm).unwrap();
        }
        let mut sim = Particles::new(node, None, comm.rank());
        sim.step = 0;
        assert!(bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap());
        bridge.finalize(&comm).unwrap();
    });
}

#[test]
fn suite_fetches_union_once_per_step() {
    let steps = 2;
    let (_, counters) = run_suite(1, DeviceSpec::Host, steps, false);
    // Union of variables across all specs: x, y, z, m — not the 9
    // per-spec fetches (3 specs x 3 variables).
    assert_eq!(counters.fetches, 4 * steps);
}
