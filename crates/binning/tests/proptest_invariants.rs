//! Property tests on the binning invariants: conservation, ordering, and
//! host/device agreement over arbitrary data.

use std::sync::Arc;

use binning::{device_impl, host_impl, reduce, BinOp, GridParams};
use devsim::{CellBuffer, NodeConfig, SimNode, Stream};
use proptest::prelude::*;

fn rows() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec(
        (
            -1.5f64..1.5,   // x (grid covers [-1, 1]: some rows fall outside)
            -1.5f64..1.5,   // y
            -10.0f64..10.0, // value
        ),
        0..200,
    )
}

fn grid() -> GridParams {
    GridParams::new(7, 5, [-1.0, -1.0], [1.0, 1.0])
}

fn split3(v: &[(f64, f64, f64)]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let xs = v.iter().map(|r| r.0).collect();
    let ys = v.iter().map(|r| r.1).collect();
    let vs = v.iter().map(|r| r.2).collect();
    (xs, ys, vs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total count equals the number of in-range rows; total sum equals
    /// the sum of in-range values.
    #[test]
    fn conservation(data in rows()) {
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let counts = host_impl::bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let sums = host_impl::bin_host(&xs, &ys, &vs, BinOp::Sum, &g);
        let in_range: Vec<&(f64, f64, f64)> =
            data.iter().filter(|r| g.bin_index(r.0, r.1).is_some()).collect();
        prop_assert_eq!(counts.iter().sum::<f64>() as usize, in_range.len());
        let expect: f64 = in_range.iter().map(|r| r.2).sum();
        prop_assert!((sums.iter().sum::<f64>() - expect).abs() < 1e-9);
    }

    /// Per bin: min <= avg <= max, and empty bins are NaN after finalize.
    #[test]
    fn per_bin_ordering(data in rows()) {
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let counts = host_impl::bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let mut mins = host_impl::bin_host(&xs, &ys, &vs, BinOp::Min, &g);
        let mut maxs = host_impl::bin_host(&xs, &ys, &vs, BinOp::Max, &g);
        let mut avgs = host_impl::bin_host(&xs, &ys, &vs, BinOp::Average, &g);
        host_impl::finalize(BinOp::Min, &mut mins, &counts);
        host_impl::finalize(BinOp::Max, &mut maxs, &counts);
        host_impl::finalize(BinOp::Average, &mut avgs, &counts);
        for b in 0..g.num_bins() {
            if counts[b] == 0.0 {
                prop_assert!(mins[b].is_nan() && maxs[b].is_nan() && avgs[b].is_nan());
            } else {
                prop_assert!(mins[b] <= avgs[b] + 1e-12, "bin {b}");
                prop_assert!(avgs[b] <= maxs[b] + 1e-12, "bin {b}");
            }
        }
    }

    /// Binning is partition-invariant: splitting the rows arbitrarily and
    /// merging the partial grids equals binning everything at once.
    #[test]
    fn partition_invariance(data in rows(), split_at in 0usize..200) {
        let g = grid();
        let k = split_at.min(data.len());
        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max] {
            let (xs, ys, vs) = split3(&data);
            let vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let whole = host_impl::bin_host(&xs, &ys, vals, op, &g);

            let (xa, ya, va) = split3(&data[..k]);
            let (xb, yb, vb) = split3(&data[k..]);
            let pa = host_impl::bin_host(&xa, &ya, if op == BinOp::Count { &[] } else { &va }, op, &g);
            let pb = host_impl::bin_host(&xb, &yb, if op == BinOp::Count { &[] } else { &vb }, op, &g);
            let merged = reduce::merge_grids(op, pa, pb);
            for (m, w) in merged.iter().zip(&whole) {
                prop_assert!((m - w).abs() < 1e-9 || (m.is_infinite() && w.is_infinite()));
            }
        }
    }
}

fn upload(node: &Arc<SimNode>, stream: &Arc<Stream>, data: &[f64]) -> CellBuffer {
    let host = node.host_alloc_f64(data.len());
    host.host_f64().unwrap().copy_from_slice(data);
    let dev = node.device(0).unwrap().alloc_f64(data.len()).unwrap();
    stream.copy(&host, &dev).unwrap();
    dev
}

proptest! {
    // Device runs spin up threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The device kernel agrees with the host implementation exactly.
    #[test]
    fn device_matches_host(data in rows()) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let dx = upload(&node, &stream, &xs);
        let dy = upload(&node, &stream, &ys);
        let dv = upload(&node, &stream, &vs);
        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max] {
            let vals = if op == BinOp::Count { None } else { Some(&dv) };
            let dbins = device_impl::bin_device(&node, 0, &stream, &dx, &dy, vals, op, g).unwrap();
            let host_out = node.host_alloc_f64(g.num_bins());
            stream.copy(&dbins, &host_out).unwrap();
            stream.synchronize().unwrap();
            let got = host_out.host_f64().unwrap().to_vec();
            let host_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let expect = host_impl::bin_host(&xs, &ys, host_vals, op, &g);
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                    "op {:?} bin {i}: {a} vs {b}", op
                );
            }
        }
    }
}
