//! Property tests on the binning invariants: conservation, ordering, and
//! host/device agreement over arbitrary data.

use std::sync::Arc;

use binning::{bounds, device_impl, host_impl, reduce, BinOp, GridParams};
use devsim::{CellBuffer, NodeConfig, SimNode, Stream};
use hamr::{Layout, LayoutMap, Mapping};
use proptest::prelude::*;

fn rows() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec(
        (
            -1.5f64..1.5,   // x (grid covers [-1, 1]: some rows fall outside)
            -1.5f64..1.5,   // y
            -10.0f64..10.0, // value
        ),
        0..200,
    )
}

fn grid() -> GridParams {
    GridParams::new(7, 5, [-1.0, -1.0], [1.0, 1.0])
}

fn split3(v: &[(f64, f64, f64)]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let xs = v.iter().map(|r| r.0).collect();
    let ys = v.iter().map(|r| r.1).collect();
    let vs = v.iter().map(|r| r.2).collect();
    (xs, ys, vs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total count equals the number of in-range rows; total sum equals
    /// the sum of in-range values.
    #[test]
    fn conservation(data in rows()) {
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let counts = host_impl::bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let sums = host_impl::bin_host(&xs, &ys, &vs, BinOp::Sum, &g);
        let in_range: Vec<&(f64, f64, f64)> =
            data.iter().filter(|r| g.bin_index(r.0, r.1).is_some()).collect();
        prop_assert_eq!(counts.iter().sum::<f64>() as usize, in_range.len());
        let expect: f64 = in_range.iter().map(|r| r.2).sum();
        prop_assert!((sums.iter().sum::<f64>() - expect).abs() < 1e-9);
    }

    /// Per bin: min <= avg <= max, and empty bins are NaN after finalize.
    #[test]
    fn per_bin_ordering(data in rows()) {
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let counts = host_impl::bin_host(&xs, &ys, &[], BinOp::Count, &g);
        let mut mins = host_impl::bin_host(&xs, &ys, &vs, BinOp::Min, &g);
        let mut maxs = host_impl::bin_host(&xs, &ys, &vs, BinOp::Max, &g);
        let mut avgs = host_impl::bin_host(&xs, &ys, &vs, BinOp::Average, &g);
        host_impl::finalize(BinOp::Min, &mut mins, &counts);
        host_impl::finalize(BinOp::Max, &mut maxs, &counts);
        host_impl::finalize(BinOp::Average, &mut avgs, &counts);
        for b in 0..g.num_bins() {
            if counts[b] == 0.0 {
                prop_assert!(mins[b].is_nan() && maxs[b].is_nan() && avgs[b].is_nan());
            } else {
                prop_assert!(mins[b] <= avgs[b] + 1e-12, "bin {b}");
                prop_assert!(avgs[b] <= maxs[b] + 1e-12, "bin {b}");
            }
        }
    }

    /// The fused single-pass scatter is bit-identical to the per-op
    /// reference for **every** operation, over arbitrary data (including
    /// empty inputs and empty bins — Min/Max identities survive intact).
    #[test]
    fn fused_host_pass_is_bit_identical_per_op(data in rows()) {
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let ops: Vec<(BinOp, Option<&[f64]>)> = vec![
            (BinOp::Count, None),
            (BinOp::Sum, Some(&vs)),
            (BinOp::Min, Some(&vs)),
            (BinOp::Max, Some(&vs)),
            (BinOp::Average, Some(&vs)),
        ];
        let fused = host_impl::bin_all_host(&xs, &ys, &ops, &g);
        let counts = fused[0].clone();
        for ((op, vals), fused_grid) in ops.iter().zip(&fused) {
            let reference = host_impl::bin_host(&xs, &ys, vals.unwrap_or(&[]), *op, &g);
            prop_assert_eq!(
                fused_grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "op {:?}", op
            );
            // Finalized grids are NaN-free except where the bin is empty.
            let mut fin = fused_grid.clone();
            host_impl::finalize(*op, &mut fin, &counts);
            for (b, v) in fin.iter().enumerate() {
                if counts[b] > 0.0 {
                    prop_assert!(!v.is_nan(), "op {:?} bin {b} has data but is NaN", op);
                } else if matches!(op, BinOp::Min | BinOp::Max | BinOp::Average) {
                    prop_assert!(v.is_nan(), "op {:?} empty bin {b} must finalize to NaN", op);
                }
            }
        }
    }

    /// Binning is partition-invariant: splitting the rows arbitrarily and
    /// merging the partial grids equals binning everything at once.
    #[test]
    fn partition_invariance(data in rows(), split_at in 0usize..200) {
        let g = grid();
        let k = split_at.min(data.len());
        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max] {
            let (xs, ys, vs) = split3(&data);
            let vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let whole = host_impl::bin_host(&xs, &ys, vals, op, &g);

            let (xa, ya, va) = split3(&data[..k]);
            let (xb, yb, vb) = split3(&data[k..]);
            let pa = host_impl::bin_host(&xa, &ya, if op == BinOp::Count { &[] } else { &va }, op, &g);
            let pb = host_impl::bin_host(&xb, &yb, if op == BinOp::Count { &[] } else { &vb }, op, &g);
            let merged = reduce::merge_grids(op, pa, pb);
            for (m, w) in merged.iter().zip(&whole) {
                prop_assert!((m - w).abs() < 1e-9 || (m.is_infinite() && w.is_infinite()));
            }
        }
    }
}

/// Scatter `fields` into one interleaved backing block arranged as
/// `layout` and wrap each field as a map-translated column — the shape
/// a grouped table's columns reach the binning kernels in.
fn group(
    node: &Arc<SimNode>,
    layout: Layout,
    fields: &[&[f64]],
) -> (CellBuffer, Vec<host_impl::MappedCol>) {
    let n = fields[0].len();
    let block = node.host_alloc_f64(layout.block_cells(n, fields.len()));
    let view = block.host_f64().unwrap();
    let mut cols = Vec::with_capacity(fields.len());
    for (f, vals) in fields.iter().enumerate() {
        let map = LayoutMap::new(layout, n, fields.len(), f);
        for (i, &v) in vals.iter().enumerate() {
            view.set(map.index(i), v);
        }
        cols.push(host_impl::MappedCol::new(block.host_f64().unwrap(), map));
    }
    (block, cols)
}

proptest! {
    // Each case builds small node-backed buffers; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The lane-vectorized kernels over every grouped layout — AoS, SoA,
    /// and AoSoA at lane widths 1, 4, and 8 (arbitrary row counts, so
    /// ragged tails are routine) — are bit-identical to the dense scalar
    /// baseline for **every** operation, and so are the map-translated
    /// per-op and bounds paths.
    #[test]
    fn grouped_layouts_are_bit_identical_to_scalar(data in rows()) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let g = grid();
        let (xs, ys, vs) = split3(&data);

        // Dense scalar references.
        let all = [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average];
        let dense_ops: Vec<(BinOp, Option<&[f64]>)> =
            all.iter().map(|&op| (op, (op != BinOp::Count).then_some(&vs[..]))).collect();
        let reference = host_impl::bin_all_host(&xs, &ys, &dense_ops, &g);
        let ref_bounds = bounds::minmax_multi_host(&[&xs, &ys]);

        for layout in [
            Layout::AoS,
            Layout::SoA,
            Layout::AoSoA { lane_width: 1 },
            Layout::AoSoA { lane_width: 4 },
            Layout::AoSoA { lane_width: 8 },
        ] {
            let (_block, cols) = group(&node, layout, &[&xs, &ys, &vs]);
            let (cx, cy, cv) = (&cols[0], &cols[1], &cols[2]);

            let ops: Vec<(BinOp, Option<&host_impl::MappedCol>)> =
                all.iter().map(|&op| (op, (op != BinOp::Count).then_some(cv))).collect();
            let fused = host_impl::bin_all_host_lanes(cx, cy, &ops, &g);
            for ((op, _), (got, want)) in all.iter().zip(&ops).zip(fused.iter().zip(&reference)) {
                prop_assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} fused op {:?}", layout.name(), op
                );
            }

            for &op in &all {
                let vals = (op != BinOp::Count).then_some(cv);
                let per_op = host_impl::bin_host_mapped(cx, cy, vals, op, &g);
                let want = host_impl::bin_host(
                    &xs, &ys, if op == BinOp::Count { &[] } else { &vs }, op, &g,
                );
                prop_assert_eq!(
                    per_op.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} per-op {:?}", layout.name(), op
                );
            }

            let mapped_bounds = bounds::minmax_multi_mapped(&[cx, cy]);
            for (axis, ((lo, hi), (rlo, rhi))) in
                mapped_bounds.iter().zip(&ref_bounds).enumerate()
            {
                prop_assert_eq!(lo.to_bits(), rlo.to_bits(), "{} axis {axis} lo", layout.name());
                prop_assert_eq!(hi.to_bits(), rhi.to_bits(), "{} axis {axis} hi", layout.name());
            }
        }
    }
}

fn upload(node: &Arc<SimNode>, stream: &Arc<Stream>, data: &[f64]) -> CellBuffer {
    let host = node.host_alloc_f64(data.len());
    host.host_f64().unwrap().copy_from_slice(data);
    let dev = node.device(0).unwrap().alloc_f64(data.len()).unwrap();
    stream.copy(&host, &dev).unwrap();
    dev
}

proptest! {
    // Device runs spin up threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The device kernel agrees with the host implementation exactly.
    #[test]
    fn device_matches_host(data in rows()) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let dx = upload(&node, &stream, &xs);
        let dy = upload(&node, &stream, &ys);
        let dv = upload(&node, &stream, &vs);
        for op in [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max] {
            let vals = if op == BinOp::Count { None } else { Some(&dv) };
            let dbins = device_impl::bin_device(&node, 0, &stream, &dx, &dy, vals, op, g).unwrap();
            let host_out = node.host_alloc_f64(g.num_bins());
            stream.copy(&dbins, &host_out).unwrap();
            stream.synchronize().unwrap();
            let got = host_out.host_f64().unwrap().to_vec();
            let host_vals: &[f64] = if op == BinOp::Count { &[] } else { &vs };
            let expect = host_impl::bin_host(&xs, &ys, host_vals, op, &g);
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                    "op {:?} bin {i}: {a} vs {b}", op
                );
            }
        }
    }

    /// The fused multi-op device kernel is bit-identical to the per-op
    /// device kernels for every operation over arbitrary data.
    #[test]
    fn fused_device_pass_is_bit_identical_per_op(data in rows()) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let g = grid();
        let (xs, ys, vs) = split3(&data);
        let dx = upload(&node, &stream, &xs);
        let dy = upload(&node, &stream, &ys);
        let dv = upload(&node, &stream, &vs);
        let all = [BinOp::Count, BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average];
        let ops: Vec<(BinOp, Option<&CellBuffer>)> = all
            .iter()
            .map(|&op| (op, if op == BinOp::Count { None } else { Some(&dv) }))
            .collect();
        let packed = device_impl::bin_all_device(&node, 0, &stream, &dx, &dy, &ops, g).unwrap();
        let host_out = node.host_alloc_f64(packed.len());
        stream.copy(&packed, &host_out).unwrap();
        stream.synchronize().unwrap();
        let fused = host_out.host_f64().unwrap().to_vec();
        for (seg, &op) in all.iter().enumerate() {
            let vals = if op == BinOp::Count { None } else { Some(&dv) };
            let dbins = device_impl::bin_device(&node, 0, &stream, &dx, &dy, vals, op, g).unwrap();
            let ref_out = node.host_alloc_f64(g.num_bins());
            stream.copy(&dbins, &ref_out).unwrap();
            stream.synchronize().unwrap();
            let reference = ref_out.host_f64().unwrap().to_vec();
            let got = &fused[seg * g.num_bins()..(seg + 1) * g.num_bins()];
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "op {:?}", op
            );
        }
    }
}
