//! DAG-engine equivalence: running the [`binning::BinningSuite`] through
//! the dataflow task-graph engine (`ExecutionMethod::Dag`) must produce
//! results bit-identical to the inline lockstep engine — across spec
//! sets, device placements, snapshot modes, and under injected
//! `stream.launch` faults recovered per task node by the retry policy.

use std::sync::Arc;

use devsim::fault::{site, FaultConfig, FaultRule};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use proptest::prelude::*;
use proptest::sample;
use sensei::{
    AnalysisAdaptor, BackendControls, Bridge, DeviceSpec, ExecutionMethod, MeshMetadata,
    RecoveryPolicy, Result, SnapshotMode,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinOp, BinnedResult, BinningSpec, BinningSuite, ResultSink, VarOp};

/// Particle table with four columns; each rank owns a deterministic
/// pseudo-random slice (same fixture as the fused-suite tests).
struct Particles {
    table: TableData,
    step: u64,
}

impl Particles {
    fn new(node: Arc<SimNode>, device: Option<usize>, rank: usize) -> Self {
        let n = 200;
        let col = |seed: usize| -> Vec<f64> {
            (0..n).map(|i| (((i * seed + rank * 7919) % 1000) as f64) / 500.0 - 1.0).collect()
        };
        let alloc = if device.is_some() { Allocator::OpenMp } else { Allocator::Malloc };
        let mut table = TableData::new();
        for (name, seed) in [("x", 37), ("y", 53), ("z", 71), ("m", 97)] {
            let arr = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &col(seed),
                1,
                alloc,
                device,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(arr.as_array_ref());
        }
        Particles { table, step: 0 }
    }
}

impl sensei::DataAdaptor for Particles {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64 * 0.1
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// Up to four coordinate systems, five ops each, optionally auto-bounded.
fn spec_set(nspecs: usize, resolution: usize, auto_bounds: bool) -> Vec<BinningSpec> {
    [("x", "y"), ("x", "z"), ("y", "z"), ("y", "m")]
        .iter()
        .take(nspecs)
        .map(|(a, b)| {
            let mut s = BinningSpec::new(
                "bodies",
                (*a, *b),
                resolution,
                vec![
                    VarOp { var: String::new(), op: BinOp::Count },
                    VarOp { var: "m".into(), op: BinOp::Sum },
                    VarOp { var: "x".into(), op: BinOp::Min },
                    VarOp { var: "z".into(), op: BinOp::Max },
                    VarOp { var: "m".into(), op: BinOp::Average },
                ],
            );
            if !auto_bounds {
                s.bounds = Some(([-1.0, 1.0], [-1.0, 1.0]));
            }
            s
        })
        .collect()
}

#[derive(Clone, Copy)]
struct Run {
    ranks: usize,
    device: DeviceSpec,
    execution: ExecutionMethod,
    snapshot: SnapshotMode,
    recovery: RecoveryPolicy,
    steps: u64,
}

/// Drive a bridge-hosted suite and return the published results plus the
/// run's scheduler totals and work/fault counters.
fn run_binning(
    cfg: Run,
    specs: Vec<BinningSpec>,
    fault: Option<FaultConfig>,
) -> (Vec<BinnedResult>, sensei::SchedulerSnapshot, sensei::CounterSnapshot) {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    let out = World::new(cfg.ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        if let Some(f) = &fault {
            node.fault().configure(f.clone());
        }
        let suite = BinningSuite::new(specs.clone())
            .unwrap()
            .with_sink(sink2.clone())
            .with_controls(BackendControls {
                execution: cfg.execution,
                device: cfg.device,
                recovery: cfg.recovery,
                ..Default::default()
            });
        let counters = suite.counters().unwrap();
        let mut bridge = Bridge::new(node.clone());
        bridge.set_snapshot_mode(cfg.snapshot);
        bridge.add_analysis(Box::new(suite), &comm).unwrap();
        let device = match cfg.device {
            DeviceSpec::Host => None,
            DeviceSpec::Explicit(d) => Some(d),
            DeviceSpec::Auto => Some(comm.rank() % 2),
        };
        let mut sim = Particles::new(node.clone(), device, comm.rank());
        for step in 0..cfg.steps {
            sim.step = step;
            bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        }
        let profiler = bridge.finalize(&comm).unwrap();
        node.fault().clear();
        (profiler.scheduler_total(), counters.snapshot())
    });
    let results = sink.lock().clone();
    let (sched, counters) = out.into_iter().next().unwrap();
    (results, sched, counters)
}

fn inline_run(ranks: usize, device: DeviceSpec, steps: u64) -> Run {
    Run {
        ranks,
        device,
        execution: ExecutionMethod::Lockstep,
        snapshot: SnapshotMode::Deep,
        recovery: RecoveryPolicy::Abort,
        steps,
    }
}

fn dag_run(ranks: usize, device: DeviceSpec, snapshot: SnapshotMode, steps: u64) -> Run {
    Run { execution: ExecutionMethod::Dag, snapshot, ..inline_run(ranks, device, steps) }
}

fn assert_results_bit_identical(dag: &[BinnedResult], inline: &[BinnedResult], what: &str) {
    assert_eq!(dag.len(), inline.len(), "{what}: published result count");
    for (i, (d, r)) in dag.iter().zip(inline).enumerate() {
        assert_eq!(d.step, r.step, "{what}: result {i} step");
        assert_eq!(d.axes, r.axes, "{what}: result {i} axes");
        assert_eq!(d.arrays.len(), r.arrays.len(), "{what}: result {i} array count");
        for ((dn, dv), (rn, rv)) in d.arrays.iter().zip(&r.arrays) {
            assert_eq!(dn, rn, "{what}: result {i} array name");
            assert_eq!(
                dv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{what}: result {i} array {dn}"
            );
        }
    }
}

#[test]
fn dag_matches_inline_on_host() {
    let specs = spec_set(3, 4, false);
    let (dag, sched, _) =
        run_binning(dag_run(2, DeviceSpec::Host, SnapshotMode::Deep, 3), specs.clone(), None);
    let (inline, _, _) = run_binning(inline_run(2, DeviceSpec::Host, 3), specs, None);
    assert!(sched.tasks > 0, "dataflow path must actually run");
    assert_results_bit_identical(&dag, &inline, "host placement");
}

#[test]
fn dag_matches_inline_on_device() {
    let specs = spec_set(3, 4, false);
    let (dag, sched, counters) = run_binning(
        dag_run(2, DeviceSpec::Explicit(0), SnapshotMode::Deep, 3),
        specs.clone(),
        None,
    );
    let (inline, _, _) = run_binning(inline_run(2, DeviceSpec::Explicit(0), 3), specs, None);
    assert!(sched.tasks > 0, "dataflow path must actually run");
    assert!(sched.critical_path_ns > 0, "critical path is measured");
    assert_eq!(counters.kernel_launches, 3 * 3, "one fused kernel per spec per step");
    assert_results_bit_identical(&dag, &inline, "device placement");
}

#[test]
fn dag_matches_inline_with_auto_bounds_across_snapshot_modes() {
    for mode in [SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow] {
        let specs = spec_set(3, 4, true);
        let (dag, sched, _) =
            run_binning(dag_run(2, DeviceSpec::Auto, mode, 2), specs.clone(), None);
        let (inline, _, _) = run_binning(inline_run(2, DeviceSpec::Auto, 2), specs, None);
        assert!(sched.tasks > 0, "dataflow path must actually run ({})", mode.name());
        assert_results_bit_identical(&dag, &inline, mode.name());
    }
}

#[test]
fn dag_retry_recovers_injected_launch_faults_bit_identically() {
    let specs = spec_set(3, 4, false);
    let fault = FaultConfig::seeded(11)
        .with_rule(FaultRule::error(site::STREAM_LAUNCH).with_max_injections(2).for_rank(0));
    let mut cfg = dag_run(1, DeviceSpec::Explicit(0), SnapshotMode::Deep, 3);
    cfg.recovery = RecoveryPolicy::Retry { max_retries: 4, backoff_ms: 0 };
    let (dag, _, counters) = run_binning(cfg, specs.clone(), Some(fault));
    let (inline, _, _) = run_binning(inline_run(1, DeviceSpec::Explicit(0), 3), specs, None);
    assert!(counters.faults.injected >= 1, "faults were actually injected");
    assert!(counters.faults.recovered >= 1, "retry recovered the failed task nodes");
    assert_eq!(counters.faults.aborted, 0, "nothing escaped to abort");
    assert_results_bit_identical(&dag, &inline, "fault-injected retry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random spec sets, placements, snapshot modes, rank counts: the
    /// task-graph execution is always bit-identical to the inline engine.
    #[test]
    fn dag_is_bit_identical_to_inline_across_random_configs(
        placement in sample::select(vec![
            DeviceSpec::Host,
            DeviceSpec::Explicit(0),
            DeviceSpec::Explicit(1),
            DeviceSpec::Auto,
        ]),
        mode in sample::select(vec![SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow]),
        nspecs in 1usize..5,
        resolution in 2usize..5,
        steps in 1u64..3,
        ranks in 1usize..3,
        auto_bounds in any::<bool>(),
    ) {
        let specs = spec_set(nspecs, resolution, auto_bounds);
        let (dag, sched, _) = run_binning(dag_run(ranks, placement, mode, steps), specs.clone(), None);
        let (inline, _, _) = run_binning(inline_run(ranks, placement, steps), specs, None);
        prop_assert!(sched.tasks > 0, "dataflow path must actually run");
        assert_results_bit_identical(&dag, &inline, "random config");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fault-injected arm: injected `stream.launch` failures recovered by
    /// the per-task retry policy must not perturb a single bit of the
    /// published grids relative to a clean inline run.
    #[test]
    fn dag_retry_under_random_fault_seeds_stays_bit_identical(
        seed in 1u64..1024,
        injections in 1u64..3,
        nspecs in 1usize..4,
    ) {
        let specs = spec_set(nspecs, 4, false);
        let fault = FaultConfig::seeded(seed).with_rule(
            FaultRule::error(site::STREAM_LAUNCH).with_max_injections(injections).for_rank(0),
        );
        let mut cfg = dag_run(1, DeviceSpec::Explicit(0), SnapshotMode::Deep, 2);
        cfg.recovery = RecoveryPolicy::Retry { max_retries: 4, backoff_ms: 0 };
        let (dag, _, counters) = run_binning(cfg, specs.clone(), Some(fault));
        let (inline, _, _) = run_binning(inline_run(1, DeviceSpec::Explicit(0), 2), specs, None);
        prop_assert!(counters.faults.aborted == 0, "nothing escaped to abort");
        assert_results_bit_identical(&dag, &inline, "fault-injected random seed");
    }
}
