//! # analyses — additional SENSEI analysis back-ends
//!
//! SENSEI's value is coupling one instrumentation to *many* back-ends
//! with run-time switching. Besides the paper's data-binning operator
//! (crate `binning`), this crate provides the other back-ends a SENSEI
//! deployment typically ships, all carrying the heterogeneous
//! execution-model controls (placement, lockstep/asynchronous):
//!
//! * [`Histogram`] — 1-D histogram of one variable (host or device
//!   execution, MPI-reduced) — XML type `histogram`;
//! * [`DescriptiveStats`] — per-variable count/min/max/mean/std per step
//!   — XML type `descriptive_stats`;
//! * [`Autocorrelation`] — time-lag autocorrelation of a variable over a
//!   sliding window — XML type `autocorrelation`;
//! * [`ParticleWriter`] — VTK output every `k` steps for *post hoc*
//!   analysis — XML type `particle_writer`.
//!
//! [`register_all`] adds every back-end (including `data_binning` when
//! combined with `binning::register`) to an [`sensei::AnalysisRegistry`].

mod autocorrelation;
mod common;
mod histogram;
mod stats;
mod writer;

pub use autocorrelation::{Autocorrelation, AutocorrelationResult};
pub use histogram::{Histogram, HistogramResult};
pub use stats::{DescriptiveStats, VariableStats};
pub use writer::ParticleWriter;

use sensei::AnalysisRegistry;

/// Register every back-end of this crate with `registry`.
pub fn register_all(registry: &mut AnalysisRegistry) {
    histogram::register(registry);
    stats::register(registry);
    autocorrelation::register(registry);
    writer::register(registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_types() {
        let mut reg = AnalysisRegistry::new();
        register_all(&mut reg);
        for t in ["histogram", "descriptive_stats", "autocorrelation", "particle_writer"] {
            assert!(reg.contains(t), "missing {t}");
        }
    }
}
