//! Time-lag autocorrelation of a variable over a sliding window —
//! SENSEI's classic `Autocorrelation` analysis, adapted to the tabular
//! data model.
//!
//! The analysis keeps the last `window` snapshots of one variable and,
//! once the window is full, reports the normalized autocorrelation
//! coefficient for each lag `1..window`:
//!
//! `r(k) = Σ_i Σ_t (v_i(t) - m)(v_i(t+k) - m) / ((W-k) Σ_i var_i)`
//!
//! summed over elements `i` and window positions `t`, reduced across
//! ranks. Element identity must be stable across the window (Newton++
//! keeps body order stable while repartitioning is disabled, matching
//! the paper's run configuration).

use std::collections::VecDeque;
use std::sync::Arc;

use devsim::KernelCost;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, AnalysisRegistry, BackendControls, DataAdaptor, DataRequirements, Error,
    ExecContext, Result, ANY_MESH,
};

use crate::common::{array_host, collect_arrays};

/// Autocorrelation coefficients at one step (global across ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct AutocorrelationResult {
    /// Step the window ended at.
    pub step: u64,
    /// Variable name.
    pub variable: String,
    /// `corr[k-1]` is the lag-`k` coefficient.
    pub corr: Vec<f64>,
}

/// Shared sink for results.
pub type AutocorrSink = Arc<Mutex<Vec<AutocorrelationResult>>>;

/// The `autocorrelation` back-end.
///
/// ```xml
/// <analysis type="autocorrelation" variable="vx" window="8"/>
/// ```
pub struct Autocorrelation {
    controls: BackendControls,
    variable: String,
    window: usize,
    history: VecDeque<Vec<f64>>,
    sink: Option<AutocorrSink>,
    last: Option<AutocorrelationResult>,
}

impl Autocorrelation {
    /// Autocorrelation of `variable` over a `window`-step sliding window.
    pub fn new(variable: impl Into<String>, window: usize) -> Self {
        assert!(window >= 2, "autocorrelation needs a window of at least 2");
        Autocorrelation {
            controls: BackendControls::default(),
            variable: variable.into(),
            window,
            history: VecDeque::new(),
            sink: None,
            last: None,
        }
    }

    /// Record results into `sink`.
    pub fn with_sink(mut self, sink: AutocorrSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Set the execution-model controls.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// The most recent result, if the window has filled at least once.
    pub fn last(&self) -> Option<&AutocorrelationResult> {
        self.last.as_ref()
    }

    /// Local numerators per lag plus the variance denominator:
    /// `(Σ_i Σ_t dv_i(t) dv_i(t+k) for k in 1..W, Σ_i Σ_t dv_i(t)^2, n)`.
    fn local_sums(history: &VecDeque<Vec<f64>>) -> (Vec<f64>, f64, u64) {
        let w = history.len();
        let n = history[0].len();
        // Per-element temporal mean.
        let mut mean = vec![0.0; n];
        for snap in history {
            for (m, v) in mean.iter_mut().zip(snap) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= w as f64;
        }
        let mut numers = vec![0.0; w - 1];
        let mut denom = 0.0;
        for t in 0..w {
            let snap_t = &history[t];
            for i in 0..n {
                let dv = snap_t[i] - mean[i];
                denom += dv * dv;
                for k in 1..(w - t) {
                    numers[k - 1] += dv * (history[t + k][i] - mean[i]);
                }
            }
        }
        (numers, denom, n as u64)
    }
}

impl AnalysisAdaptor for Autocorrelation {
    fn name(&self) -> &str {
        "autocorrelation"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn required_arrays(&self) -> DataRequirements {
        DataRequirements::none().with_named(ANY_MESH, [self.variable.clone()])
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        let md = data.mesh_metadata(0)?;
        let mesh = data.mesh(&md.name)?;
        let mut snapshot = Vec::new();
        for array in collect_arrays(&mesh, &self.variable)? {
            snapshot.extend(array_host(&array)?);
        }
        if let Some(prev) = self.history.back() {
            if prev.len() != snapshot.len() {
                // Element identity broke (e.g. repartitioning); restart.
                self.history.clear();
            }
        }
        self.history.push_back(snapshot);
        if self.history.len() > self.window {
            self.history.pop_front();
        }
        if self.history.len() < self.window {
            return Ok(true);
        }

        let n_total: u64 = self.history[0].len() as u64;
        let cost = KernelCost {
            flops: (self.window * self.window) as f64 * n_total as f64,
            bytes: 8.0 * (self.window as f64) * n_total as f64,
        };
        let (numers, denom, _) =
            ctx.node.host().run("autocorrelation", cost, || Self::local_sums(&self.history));

        // Reduce numerators and denominator across ranks.
        let mut payload = numers;
        payload.push(denom);
        let reduced = ctx.comm.allreduce(payload, |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        });
        let denom = *reduced.last().expect("denominator present");
        let w = self.window as f64;
        let corr: Vec<f64> = reduced[..self.window - 1]
            .iter()
            .enumerate()
            .map(|(i, &num)| {
                let k = (i + 1) as f64;
                if denom > 0.0 {
                    num / (denom * (w - k) / w)
                } else {
                    f64::NAN
                }
            })
            .collect();
        let result =
            AutocorrelationResult { step: data.time_step(), variable: self.variable.clone(), corr };
        if let Some(sink) = &self.sink {
            if ctx.comm.rank() == 0 {
                sink.lock().push(result.clone());
            }
        }
        self.last = Some(result);
        Ok(true)
    }
}

/// Register the `autocorrelation` type with a registry.
pub fn register(registry: &mut AnalysisRegistry) {
    registry.register("autocorrelation", |el, _ctx| {
        let variable = el.req_attr("variable").map_err(Error::Xml)?.to_string();
        let window = el.parse_attr_or::<usize>("window", 8).map_err(Error::Xml)?;
        if window < 2 {
            return Err(Error::Config("autocorrelation window must be >= 2".into()));
        }
        Ok(Box::new(Autocorrelation::new(variable, window)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_of(series: &[Vec<f64>]) -> VecDeque<Vec<f64>> {
        series.iter().cloned().collect()
    }

    #[test]
    fn constant_signal_has_zero_variance() {
        let h = window_of(&[vec![5.0], vec![5.0], vec![5.0]]);
        let (numers, denom, n) = Autocorrelation::local_sums(&h);
        assert_eq!(denom, 0.0);
        assert_eq!(n, 1);
        assert!(numers.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn alternating_signal_has_negative_lag1() {
        // +1, -1, +1, -1: lag-1 products are all negative.
        let h = window_of(&[vec![1.0], vec![-1.0], vec![1.0], vec![-1.0]]);
        let (numers, denom, _) = Autocorrelation::local_sums(&h);
        assert!(numers[0] < 0.0, "lag-1 numerator {numers:?}");
        assert!(numers[1] > 0.0, "lag-2 numerator {numers:?}");
        assert!(denom > 0.0);
    }

    #[test]
    fn linear_trend_has_positive_short_lags() {
        let h = window_of(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let (numers, _, _) = Autocorrelation::local_sums(&h);
        assert!(numers[0] > 0.0);
    }

    #[test]
    fn multiple_elements_accumulate() {
        let one = window_of(&[vec![1.0], vec![2.0]]);
        let two = window_of(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let (n1, d1, _) = Autocorrelation::local_sums(&one);
        let (n2, d2, _) = Autocorrelation::local_sums(&two);
        assert!((n2[0] - 2.0 * n1[0]).abs() < 1e-12);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn tiny_window_rejected() {
        Autocorrelation::new("x", 1);
    }
}
