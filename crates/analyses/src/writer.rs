//! A *post hoc* I/O back-end: dump the particle table as VTK legacy
//! polydata every `k` steps (the "I/O for post hoc visualization" that
//! the paper's runs disabled, available as a switchable back-end).

use std::path::PathBuf;

use newtonpp::BodySet;
use sensei::{
    AnalysisAdaptor, AnalysisRegistry, BackendControls, DataAdaptor, Error, ExecContext, Result,
};

use crate::common::{column_host, local_tables};

/// The `particle_writer` back-end.
///
/// ```xml
/// <analysis type="particle_writer" output="out_dir" every="10"/>
/// ```
///
/// Each rank writes its local bodies to
/// `<output>/bodies_<step>_<rank>.vtk` (the standard per-rank pieces a
/// post-processing tool stitches together).
pub struct ParticleWriter {
    controls: BackendControls,
    output: PathBuf,
    every: u64,
    written: Vec<PathBuf>,
}

impl ParticleWriter {
    /// Write into `output` every `every` steps.
    pub fn new(output: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "write interval must be positive");
        ParticleWriter {
            controls: BackendControls::default(),
            output: output.into(),
            every,
            written: Vec::new(),
        }
    }

    /// Set the execution-model controls.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// Paths written so far by this rank.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }
}

impl AnalysisAdaptor for ParticleWriter {
    fn name(&self) -> &str {
        "particle_writer"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        let step = data.time_step();
        if !step.is_multiple_of(self.every) {
            return Ok(true);
        }
        let md = data.mesh_metadata(0)?;
        let mesh = data.mesh(&md.name)?;
        let tables = local_tables(&mesh)?;
        let mut bodies = BodySet::new();
        for t in &tables {
            let (x, y, z) = (column_host(t, "x")?, column_host(t, "y")?, column_host(t, "z")?);
            let (vx, vy, vz) =
                (column_host(t, "vx")?, column_host(t, "vy")?, column_host(t, "vz")?);
            let m = column_host(t, "mass")?;
            for i in 0..x.len() {
                bodies.push([x[i], y[i], z[i]], [vx[i], vy[i], vz[i]], m[i]);
            }
        }
        std::fs::create_dir_all(&self.output)
            .map_err(|e| Error::Analysis(format!("creating output dir: {e}")))?;
        let path = self.output.join(format!("bodies_{:06}_{:04}.vtk", step, ctx.comm.rank()));
        newtonpp::io::write_vtk_file(&path, &format!("step {step}"), &bodies)
            .map_err(|e| Error::Analysis(format!("writing VTK: {e}")))?;
        self.written.push(path);
        Ok(true)
    }
}

/// Register the `particle_writer` type with a registry.
pub fn register(registry: &mut AnalysisRegistry) {
    registry.register("particle_writer", |el, _ctx| {
        let output = el.req_attr("output").map_err(Error::Xml)?.to_string();
        let every = el.parse_attr_or::<u64>("every", 1).map_err(Error::Xml)?;
        if every == 0 {
            return Err(Error::Config("particle_writer interval must be positive".into()));
        }
        Ok(Box::new(ParticleWriter::new(output, every)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        ParticleWriter::new("/tmp/x", 0);
    }
}
