//! The classic SENSEI histogram back-end: a 1-D histogram of one
//! variable, computed on the host or on an assigned device.

use std::sync::Arc;

use devsim::KernelCost;
use hamr::Pm;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, AnalysisRegistry, BackendControls, DataAdaptor, DataRequirements, Error,
    ExecContext, Result, ANY_MESH,
};

use crate::common::{array_host, as_f64, collect_arrays};

/// One histogram (global across ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramResult {
    /// Step the histogram was computed at.
    pub step: u64,
    /// Variable name.
    pub variable: String,
    /// Bin edges' range `[lo, hi]`.
    pub range: (f64, f64),
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl HistogramResult {
    /// Total number of values histogrammed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Shared sink for results.
pub type HistogramSink = Arc<Mutex<Vec<HistogramResult>>>;

/// A 1-D histogram analysis back-end (XML type `histogram`).
///
/// ```xml
/// <analysis type="histogram" variable="mass" bins="64" device="-1"/>
/// ```
pub struct Histogram {
    controls: BackendControls,
    variable: String,
    bins: usize,
    range: Option<(f64, f64)>,
    sink: Option<HistogramSink>,
    last: Option<HistogramResult>,
}

impl Histogram {
    /// A histogram of `variable` with `bins` bins (auto range).
    pub fn new(variable: impl Into<String>, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Histogram {
            controls: BackendControls::default(),
            variable: variable.into(),
            bins,
            range: None,
            sink: None,
            last: None,
        }
    }

    /// Fix the histogram range instead of computing min/max on the fly.
    pub fn with_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "degenerate histogram range");
        self.range = Some((lo, hi));
        self
    }

    /// Record every step's result into `sink`.
    pub fn with_sink(mut self, sink: HistogramSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Set the execution-model controls.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// The most recent result.
    pub fn last(&self) -> Option<&HistogramResult> {
        self.last.as_ref()
    }

    fn bin_host(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
        let mut counts = vec![0u64; bins];
        let span = hi - lo;
        for &v in values {
            if v.is_finite() && v >= lo && v <= hi {
                let i = (((v - lo) / span) * bins as f64) as usize;
                counts[i.min(bins - 1)] += 1;
            }
        }
        counts
    }
}

impl AnalysisAdaptor for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn required_arrays(&self) -> DataRequirements {
        // The back-end histograms whichever mesh is published first, so it
        // cannot name the mesh statically; the wildcard scopes the
        // requirement to the one variable on any mesh.
        DataRequirements::none().with_named(ANY_MESH, [self.variable.clone()])
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        // Histogram the first published mesh (tabular or grid data alike).
        let md = data.mesh_metadata(0)?;
        let mesh = data.mesh(&md.name)?;
        let arrays = collect_arrays(&mesh, &self.variable)?;
        let device = self.controls.resolve_device(ctx.comm.rank(), ctx.node.num_devices());

        // Range: manual or global min/max.
        let (lo, hi) = match self.range {
            Some(r) => r,
            None => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for a in &arrays {
                    // Stride-aware iteration: columns of a layout-grouped
                    // table are walked through their map without
                    // materializing a dense copy.
                    let typed = as_f64(a)?;
                    let view = typed.host_accessible()?;
                    typed.synchronize()?;
                    for v in view.iter()? {
                        if v.is_finite() {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                }
                let (lo, hi) = ctx.comm.allreduce((lo, hi), |a, b| (a.0.min(b.0), a.1.max(b.1)));
                if hi > lo {
                    (lo, hi)
                } else {
                    (lo - 0.5, hi + 0.5)
                }
            }
        };

        // Local histogram, on the host or as a device kernel.
        let mut local = vec![0u64; self.bins];
        for array in &arrays {
            let part: Vec<u64> = match device {
                None => {
                    let vals = array_host(array)?;
                    ctx.node.host().run(
                        "histogram",
                        KernelCost {
                            flops: 5.0 * vals.len() as f64,
                            bytes: 8.0 * vals.len() as f64,
                        },
                        || Self::bin_host(&vals, lo, hi, self.bins),
                    )
                }
                Some(d) => {
                    let typed = as_f64(array)?;
                    let view = typed.device_accessible(d, Pm::Cuda)?;
                    typed.synchronize()?;
                    let stream = ctx.node.device(d)?.default_stream();
                    let out = ctx.node.device(d)?.alloc_cells(self.bins)?;
                    let cells = view.cells().clone();
                    let o = out.clone();
                    let (bins, n) = (self.bins, view.len());
                    stream
                        .launch(
                            "histogram",
                            KernelCost { flops: 5.0 * n as f64, bytes: 16.0 * n as f64 },
                            move |scope| {
                                let v = cells.f64_view_ro(scope)?;
                                let h = o.u64_view(scope)?;
                                let span = hi - lo;
                                for i in 0..v.len() {
                                    let x = v.get(i);
                                    if x.is_finite() && x >= lo && x <= hi {
                                        let b = (((x - lo) / span) * bins as f64) as usize;
                                        h.atomic_add(b.min(bins - 1), 1);
                                    }
                                }
                                Ok(())
                            },
                        )
                        .map_err(Error::Device)?;
                    let host = ctx.node.host_alloc_f64(self.bins);
                    stream.copy(&out, &host).map_err(Error::Device)?;
                    stream.synchronize().map_err(Error::Device)?;
                    host.host_u64_ro().map_err(Error::Device)?.to_vec()
                }
            };
            for (a, b) in local.iter_mut().zip(part) {
                *a += b;
            }
        }

        // Global reduction.
        let counts = ctx.comm.allreduce(local, |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        });
        let result = HistogramResult {
            step: data.time_step(),
            variable: self.variable.clone(),
            range: (lo, hi),
            counts,
        };
        if let Some(sink) = &self.sink {
            if ctx.comm.rank() == 0 {
                sink.lock().push(result.clone());
            }
        }
        self.last = Some(result);
        Ok(true)
    }
}

/// Register the `histogram` type with a registry.
pub fn register(registry: &mut AnalysisRegistry) {
    registry.register("histogram", |el, _ctx| {
        let variable = el.req_attr("variable").map_err(Error::Xml)?.to_string();
        let bins = el.parse_attr_or::<usize>("bins", 64).map_err(Error::Xml)?;
        if bins == 0 {
            return Err(Error::Config("histogram needs at least one bin".into()));
        }
        let mut h = Histogram::new(variable, bins);
        let lo = el.parse_attr::<f64>("min").map_err(Error::Xml)?;
        let hi = el.parse_attr::<f64>("max").map_err(Error::Xml)?;
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if hi <= lo {
                return Err(Error::Config("histogram range is degenerate".into()));
            }
            h = h.with_range(lo, hi);
        }
        Ok(Box::new(h))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_binning_is_correct() {
        let vals = [0.0, 0.49, 0.5, 0.99, 1.0, -0.1, 1.1, f64::NAN];
        let counts = Histogram::bin_host(&vals, 0.0, 1.0, 2);
        // in-range: 0.0, 0.49 -> bin 0; 0.5, 0.99, 1.0 -> bin 1.
        assert_eq!(counts, vec![2, 3]);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let counts = Histogram::bin_host(&[1.0], 0.0, 1.0, 4);
        assert_eq!(counts, vec![0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new("x", 0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_range_rejected() {
        let _ = Histogram::new("x", 4).with_range(1.0, 1.0);
    }
}
