//! Shared helpers for the analysis back-ends.

use sensei::{Error, Result};
use svtk::{ArrayRef, DataObject, FieldAssociation, HamrDataArray, TableData};

/// The tables making up a mesh (bare table or multiblock's local blocks).
pub(crate) fn local_tables(obj: &DataObject) -> Result<Vec<TableData>> {
    match obj {
        DataObject::Table(t) => Ok(vec![t.clone()]),
        DataObject::Multi(mb) => {
            let mut out = Vec::new();
            for (_, block) in mb.local_blocks() {
                match block {
                    DataObject::Table(t) => out.push(t.clone()),
                    other => {
                        return Err(Error::Analysis(format!(
                            "analysis needs tabular blocks, got {}",
                            other.class_name()
                        )))
                    }
                }
            }
            Ok(out)
        }
        other => {
            Err(Error::Analysis(format!("analysis needs tabular data, got {}", other.class_name())))
        }
    }
}

/// Every local array named `name` in `obj`, whatever the dataset kind:
/// table columns, image point/cell data, and multiblock blocks thereof.
/// This is what lets one back-end serve both Newton++'s particle tables
/// and the oscillators miniapp's grids.
pub(crate) fn collect_arrays(obj: &DataObject, name: &str) -> Result<Vec<ArrayRef>> {
    let mut out = Vec::new();
    collect_into(obj, name, &mut out)?;
    if out.is_empty() {
        return Err(Error::NoSuchArray { mesh: obj.class_name().into(), array: name.to_string() });
    }
    Ok(out)
}

fn collect_into(obj: &DataObject, name: &str, out: &mut Vec<ArrayRef>) -> Result<()> {
    match obj {
        DataObject::Table(t) => {
            if let Some(col) = t.column(name) {
                out.push(col.clone());
            }
        }
        DataObject::Image(img) => {
            for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                if let Some(a) = img.data(assoc).array(name) {
                    out.push(a.clone());
                }
            }
        }
        DataObject::Multi(mb) => {
            for (_, block) in mb.local_blocks() {
                collect_into(block, name, out)?;
            }
        }
    }
    Ok(())
}

/// Downcast an erased array to `f64`, or report the mismatch.
pub(crate) fn as_f64(array: &ArrayRef) -> Result<&HamrDataArray<f64>> {
    svtk::downcast::<f64>(array).ok_or_else(|| {
        Error::Analysis(format!(
            "array '{}' is {}, expected double",
            array.name(),
            array.type_name()
        ))
    })
}

/// Read an erased array's values to the host (moving them if needed).
pub(crate) fn array_host(array: &ArrayRef) -> Result<Vec<f64>> {
    let typed = as_f64(array)?;
    let view = typed.host_accessible()?;
    typed.synchronize()?;
    Ok(view.to_vec()?)
}

/// Read one `f64` column of a table to the host (moving it if needed).
pub(crate) fn column_host(table: &TableData, name: &str) -> Result<Vec<f64>> {
    let col = table
        .column(name)
        .ok_or_else(|| Error::NoSuchArray { mesh: "table".into(), array: name.to_string() })?;
    array_host(col)
}
