//! Descriptive statistics: count, min, max, mean, and standard deviation
//! of chosen variables, reduced across ranks each step.

use std::path::PathBuf;
use std::sync::Arc;

use devsim::KernelCost;
use parking_lot::Mutex;
use sensei::{
    AnalysisAdaptor, AnalysisRegistry, BackendControls, DataAdaptor, DataRequirements, Error,
    ExecContext, Result, ANY_MESH,
};

use crate::common::{array_host, collect_arrays};

/// Statistics of one variable at one step (global across ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct VariableStats {
    /// Step.
    pub step: u64,
    /// Variable name.
    pub variable: String,
    /// Number of finite values.
    pub count: u64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Shared sink for results.
pub type StatsSink = Arc<Mutex<Vec<VariableStats>>>;

/// Partial sums reduced across ranks: (count, sum, sumsq, min, max).
type Partial = (u64, f64, f64, f64, f64);

fn partial_of(values: &[f64]) -> Partial {
    let mut p: Partial = (0, 0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            p.0 += 1;
            p.1 += v;
            p.2 += v * v;
            p.3 = p.3.min(v);
            p.4 = p.4.max(v);
        }
    }
    p
}

fn merge(a: Partial, b: Partial) -> Partial {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3.min(b.3), a.4.max(b.4))
}

/// The `descriptive_stats` back-end.
///
/// ```xml
/// <analysis type="descriptive_stats" variables="mass,ke,speed"/>
/// ```
pub struct DescriptiveStats {
    controls: BackendControls,
    variables: Vec<String>,
    sink: Option<StatsSink>,
    output: Option<PathBuf>,
    history: Vec<VariableStats>,
}

impl DescriptiveStats {
    /// Statistics over the named variables.
    pub fn new(variables: Vec<String>) -> Self {
        assert!(!variables.is_empty(), "need at least one variable");
        DescriptiveStats {
            controls: BackendControls::default(),
            variables,
            sink: None,
            output: None,
            history: Vec::new(),
        }
    }

    /// Record every step's results into `sink`.
    pub fn with_sink(mut self, sink: StatsSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Write a CSV of all recorded statistics at finalize (rank 0).
    pub fn with_output(mut self, path: impl Into<PathBuf>) -> Self {
        self.output = Some(path.into());
        self
    }

    /// Set the execution-model controls.
    pub fn with_controls(mut self, controls: BackendControls) -> Self {
        self.controls = controls;
        self
    }

    /// CSV rendition of the recorded history.
    pub fn to_csv(history: &[VariableStats]) -> String {
        let mut out = String::from("step,variable,count,min,max,mean,std\n");
        for s in history {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                s.step, s.variable, s.count, s.min, s.max, s.mean, s.std
            ));
        }
        out
    }
}

impl AnalysisAdaptor for DescriptiveStats {
    fn name(&self) -> &str {
        "descriptive_stats"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn required_arrays(&self) -> DataRequirements {
        DataRequirements::none().with_named(ANY_MESH, self.variables.iter().cloned())
    }

    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        let md = data.mesh_metadata(0)?;
        let mesh = data.mesh(&md.name)?;
        for var in &self.variables {
            let mut local: Partial = (0, 0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY);
            for array in collect_arrays(&mesh, var)? {
                let vals = array_host(&array)?;
                let part = ctx.node.host().run(
                    "descriptive_stats",
                    KernelCost { flops: 4.0 * vals.len() as f64, bytes: 8.0 * vals.len() as f64 },
                    || partial_of(&vals),
                );
                local = merge(local, part);
            }
            let (count, sum, sumsq, min, max) = ctx.comm.allreduce(local, merge);
            let mean = if count > 0 { sum / count as f64 } else { f64::NAN };
            let var_ =
                if count > 0 { (sumsq / count as f64 - mean * mean).max(0.0) } else { f64::NAN };
            let stats = VariableStats {
                step: data.time_step(),
                variable: var.clone(),
                count,
                min,
                max,
                mean,
                std: var_.sqrt(),
            };
            if let Some(sink) = &self.sink {
                if ctx.comm.rank() == 0 {
                    sink.lock().push(stats.clone());
                }
            }
            self.history.push(stats);
        }
        Ok(true)
    }

    fn finalize(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        if let Some(path) = &self.output {
            if ctx.comm.rank() == 0 {
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir).ok();
                }
                std::fs::write(path, Self::to_csv(&self.history))
                    .map_err(|e| Error::Analysis(format!("writing stats: {e}")))?;
            }
        }
        Ok(())
    }
}

/// Register the `descriptive_stats` type with a registry.
pub fn register(registry: &mut AnalysisRegistry) {
    registry.register("descriptive_stats", |el, _ctx| {
        let vars_attr = el.req_attr("variables").map_err(Error::Xml)?;
        let variables: Vec<String> =
            vars_attr.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if variables.is_empty() {
            return Err(Error::Config("descriptive_stats needs variables".into()));
        }
        let mut s = DescriptiveStats::new(variables);
        if let Some(out) = el.attr("output") {
            s = s.with_output(out);
        }
        Ok(Box::new(s))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partials_compute_known_moments() {
        let (count, sum, sumsq, min, max) = partial_of(&[1.0, 2.0, 3.0, f64::NAN]);
        assert_eq!(count, 3);
        assert_eq!(sum, 6.0);
        assert_eq!(sumsq, 14.0);
        assert_eq!((min, max), (1.0, 3.0));
    }

    #[test]
    fn merge_is_associative_on_samples() {
        let a = partial_of(&[1.0, 5.0]);
        let b = partial_of(&[2.0]);
        let c = partial_of(&[-3.0, 4.0]);
        let lhs = merge(merge(a, b), c);
        let rhs = merge(a, merge(b, c));
        assert_eq!(lhs.0, rhs.0);
        assert!((lhs.1 - rhs.1).abs() < 1e-12);
        assert_eq!((lhs.3, lhs.4), (rhs.3, rhs.4));
        // And equals the whole-sample partial.
        let whole = partial_of(&[1.0, 5.0, 2.0, -3.0, 4.0]);
        assert_eq!(lhs.0, whole.0);
        assert!((lhs.2 - whole.2).abs() < 1e-12);
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let history = vec![VariableStats {
            step: 2,
            variable: "mass".into(),
            count: 10,
            min: 0.5,
            max: 1.5,
            mean: 1.0,
            std: 0.25,
        }];
        let csv = DescriptiveStats::to_csv(&history);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("2,mass,10,0.5,1.5,1,0.25"));
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_variable_list_rejected() {
        DescriptiveStats::new(vec![]);
    }
}
