//! The analysis back-ends consuming *grid* data: the oscillators miniapp
//! publishes block-decomposed `ImageData`, and the same histogram /
//! descriptive-stats / autocorrelation back-ends that serve Newton++'s
//! tables must serve it unchanged.

use std::sync::Arc;

use analyses::{Autocorrelation, DescriptiveStats, Histogram};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use oscillators::{Oscillator, OscillatorsAdaptor, OscillatorsConfig, OscillatorsSim};
use parking_lot::Mutex;
use sensei::{BackendControls, Bridge, DeviceSpec, ExecutionMethod};

fn cfg() -> OscillatorsConfig {
    OscillatorsConfig {
        oscillators: vec![
            Oscillator::periodic([0.5, 0.5, 0.5], 0.2, 6.0, 1.0),
            Oscillator::decay([0.2, 0.2, 0.2], 0.3, 0.5, 2.0),
        ],
        cells: [16, 8, 4],
        bounds: ([0.0; 3], [1.0; 3]),
        dt: 0.02,
    }
}

/// Global point count: blocks share boundary points, so the total over
/// ranks is (cells_x + ranks) * (cells_y + 1) * (cells_z + 1).
fn global_points(c: &OscillatorsConfig, ranks: usize) -> usize {
    (c.cells[0] + ranks) * (c.cells[1] + 1) * (c.cells[2] + 1)
}

#[test]
fn stats_over_the_field_match_a_direct_reduction() {
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    let direct = Arc::new(Mutex::new(Vec::new()));
    let direct2 = direct.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut sim = OscillatorsSim::new(node.clone(), &comm, comm.rank(), cfg()).unwrap();
        let s = DescriptiveStats::new(vec!["data".into()]).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(s), &comm).unwrap();
        let t = sim.step(&comm).unwrap();
        bridge.execute(&OscillatorsAdaptor::new(&sim), &comm, t).unwrap();
        bridge.finalize(&comm).unwrap();
        // Direct reduction of the same field for comparison.
        let local: f64 = sim.local_field().unwrap().iter().sum();
        let n = sim.local_points();
        let (gsum, gn) = comm.allreduce((local, n), |a, b| (a.0 + b.0, a.1 + b.1));
        if comm.rank() == 0 {
            direct2.lock().push(gsum / gn as f64);
        }
    });
    let results = sink.lock();
    assert_eq!(results.len(), 1);
    let stats = &results[0];
    assert_eq!(stats.count as usize, global_points(&cfg(), 2));
    let direct_mean = direct.lock()[0];
    assert!((stats.mean - direct_mean).abs() < 1e-12, "{} vs {direct_mean}", stats.mean);
    assert!(stats.min <= stats.mean && stats.mean <= stats.max);
}

#[test]
fn histogram_over_the_field_counts_every_point() {
    for device in [DeviceSpec::Host, DeviceSpec::Auto] {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let sink2 = sink.clone();
        World::new(2).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let mut sim = OscillatorsSim::new(node.clone(), &comm, comm.rank(), cfg()).unwrap();
            let h = Histogram::new("data", 10)
                .with_sink(sink2.clone())
                .with_controls(BackendControls { device, ..Default::default() });
            let mut bridge = Bridge::new(node);
            bridge.add_analysis(Box::new(h), &comm).unwrap();
            let t = sim.step(&comm).unwrap();
            bridge.execute(&OscillatorsAdaptor::new(&sim), &comm, t).unwrap();
            bridge.finalize(&comm).unwrap();
        });
        let results = sink.lock();
        assert_eq!(results[0].total() as usize, global_points(&cfg(), 2), "{device:?}");
    }
}

#[test]
fn autocorrelation_sees_the_periodic_source() {
    // A pure periodic field sampled at dt: the lag structure must be the
    // cosine of the phase difference (every point shares the same phase).
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    let omega = 6.0;
    let dt = 0.2;
    World::new(1).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let c = OscillatorsConfig {
            oscillators: vec![Oscillator::periodic([0.5, 0.5, 0.5], 0.2, omega, 1.0)],
            cells: [8, 8, 2],
            bounds: ([0.0; 3], [1.0; 3]),
            dt,
        };
        let mut sim = OscillatorsSim::new(node.clone(), &comm, 0, c).unwrap();
        let a = Autocorrelation::new("data", 6).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(a), &comm).unwrap();
        for _ in 0..8 {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&OscillatorsAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    assert!(!results.is_empty());
    for r in results.iter() {
        // The field is separable: f(p, t) = g(p) sin(ωt); since sin over
        // an incomplete window is not zero-mean the coefficients are not
        // exactly cos(ωkdt), but the sign structure survives: lag π/ω
        // apart anti-correlates. With ω=6, dt=0.2: lag 3 ≈ 3.6 rad ≈ π.
        assert!(r.corr[0] > r.corr[2], "short lags more correlated: {:?}", r.corr);
    }
}

#[test]
fn asynchronous_execution_works_for_grid_meshes() {
    // Snapshots must deep-copy ImageData blocks correctly.
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut sim = OscillatorsSim::new(node.clone(), &comm, comm.rank(), cfg()).unwrap();
        let s = DescriptiveStats::new(vec!["data".into()]).with_sink(sink2.clone()).with_controls(
            BackendControls { execution: ExecutionMethod::Asynchronous, ..Default::default() },
        );
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(s), &comm).unwrap();
        for _ in 0..3 {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&OscillatorsAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    assert_eq!(results.len(), 3, "all snapshots processed");
    for r in results.iter() {
        assert_eq!(r.count as usize, global_points(&cfg(), 2));
    }
}
