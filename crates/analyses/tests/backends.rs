//! End-to-end tests of the additional back-ends: all four coupled to
//! Newton++ through the bridge, instantiated from one XML configuration.

use std::sync::Arc;

use analyses::{Autocorrelation, DescriptiveStats, Histogram, ParticleWriter};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{
    AnalysisRegistry, BackendControls, Bridge, ConfigurableAnalysis, CreateContext, DeviceSpec,
    ExecutionMethod,
};

const BODIES: usize = 200;

fn newton_cfg() -> NewtonConfig {
    NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: BODIES,
            seed: 12,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.2,
            central_mass: 25.0,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        repartition_every: None,
    }
}

#[test]
fn histogram_counts_every_body_on_host_and_device() {
    for device in [DeviceSpec::Host, DeviceSpec::Auto] {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let sink2 = sink.clone();
        World::new(2).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let mut sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
            let h = Histogram::new("mass", 16)
                .with_sink(sink2.clone())
                .with_controls(BackendControls { device, ..Default::default() });
            let mut bridge = Bridge::new(node);
            bridge.add_analysis(Box::new(h), &comm).unwrap();
            for _ in 0..2 {
                let t = sim.step(&comm).unwrap();
                bridge.execute(&NewtonAdaptor::new(&sim), &comm, t).unwrap();
            }
            bridge.finalize(&comm).unwrap();
        });
        let results = sink.lock();
        assert_eq!(results.len(), 2);
        for r in results.iter() {
            assert_eq!(r.total() as usize, BODIES, "placement {device:?}");
            assert_eq!(r.counts.len(), 16);
            // Mass range from the IC (plus the heavy central body).
            assert!(r.range.0 >= 0.5 - 1e-9 && r.range.1 <= 25.0 + 1e-9);
        }
    }
}

#[test]
fn histogram_host_and_device_agree() {
    let run = |device| {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let sink2 = sink.clone();
        World::new(2).run(move |comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
            let h = Histogram::new("speed", 8)
                .with_range(0.0, 1.0)
                .with_sink(sink2.clone())
                .with_controls(BackendControls { device, ..Default::default() });
            let mut bridge = Bridge::new(node);
            bridge.add_analysis(Box::new(h), &comm).unwrap();
            bridge.execute(&NewtonAdaptor::new(&sim), &comm, std::time::Duration::ZERO).unwrap();
            bridge.finalize(&comm).unwrap();
        });
        let r = sink.lock();
        r[0].counts.clone()
    };
    assert_eq!(run(DeviceSpec::Host), run(DeviceSpec::Auto));
}

#[test]
fn descriptive_stats_match_direct_computation() {
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
        let s = DescriptiveStats::new(vec!["mass".into(), "ke".into()]).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(s), &comm).unwrap();
        bridge.execute(&NewtonAdaptor::new(&sim), &comm, std::time::Duration::ZERO).unwrap();
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    assert_eq!(results.len(), 2, "one entry per variable");
    let mass = results.iter().find(|r| r.variable == "mass").unwrap();
    assert_eq!(mass.count as usize, BODIES);
    // IC: masses uniform in [0.5, 1.5) plus one 25.0 body.
    assert_eq!(mass.max, 25.0);
    assert!(mass.min >= 0.5 && mass.min < 1.5);
    assert!(mass.mean > 0.9 && mass.mean < 1.3, "mean {}", mass.mean);
    assert!(mass.std > 0.0);
}

#[test]
fn autocorrelation_of_a_near_linear_signal_matches_theory() {
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
        // Over a few tiny dt steps each body's velocity is approximately
        // linear in time (constant acceleration), so the demeaned window
        // has an exact analytic autocorrelation signature.
        let a = Autocorrelation::new("vx", 4).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(a), &comm).unwrap();
        for _ in 0..6 {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&NewtonAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    // Window of 4 fills at the 4th execute: results from steps 4..6.
    assert_eq!(results.len(), 3);
    for r in results.iter() {
        assert_eq!(r.corr.len(), 3);
        // A linear trend v(t) = a + b t demeaned over a window of 4 has
        // deviations (-1.5, -0.5, 0.5, 1.5) b; with the (W-k)/W
        // normalization: r(1) = 1/3, r(2) = -3/5, r(3) = -9/5.
        assert!((r.corr[0] - 1.0 / 3.0).abs() < 0.05, "lag 1: {:?}", r.corr);
        assert!((r.corr[1] + 0.6).abs() < 0.05, "lag 2: {:?}", r.corr);
        assert!((r.corr[2] + 1.8).abs() < 0.05, "lag 3: {:?}", r.corr);
    }
}

#[test]
fn particle_writer_emits_vtk_pieces() {
    let dir = std::env::temp_dir().join(format!("analyses_writer_{}", std::process::id()));
    let dir2 = dir.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
        let w = ParticleWriter::new(&dir2, 2);
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(w), &comm).unwrap();
        for _ in 0..4 {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&NewtonAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    // Steps 1..=4, every 2 -> steps 2 and 4, 2 ranks each.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(files.len(), 4, "files: {files:?}");
    assert!(files[0].starts_with("bodies_000002_"));
    assert!(files[3].starts_with("bodies_000004_"));
    let content = std::fs::read_to_string(dir.join(&files[0])).unwrap();
    assert!(content.starts_with("# vtk DataFile"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_backends_compose_from_one_xml_configuration() {
    let dir = std::env::temp_dir().join(format!("analyses_xml_{}", std::process::id()));
    let xml = format!(
        r#"<sensei>
          <analysis type="histogram" variable="mass" bins="8" mode="asynchronous" device="-1"/>
          <analysis type="descriptive_stats" variables="ke,speed"/>
          <analysis type="autocorrelation" variable="vy" window="3"/>
          <analysis type="particle_writer" output="{}" every="2"/>
        </sensei>"#,
        dir.display()
    );
    let xml2 = xml.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut registry = AnalysisRegistry::new();
        analyses::register_all(&mut registry);
        let cfg = ConfigurableAnalysis::from_xml(&xml2).unwrap();
        let ctx = CreateContext { node: node.clone(), rank: comm.rank(), size: comm.size() };
        let backends = cfg.instantiate(&registry, &ctx).unwrap();
        assert_eq!(backends.len(), 4);
        assert_eq!(backends[0].controls().execution, ExecutionMethod::Asynchronous);

        let mut sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
        let mut bridge = Bridge::new(node);
        for b in backends {
            bridge.add_analysis(b, &comm).unwrap();
        }
        for _ in 0..4 {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&NewtonAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_backend_configs_are_rejected() {
    let mut registry = AnalysisRegistry::new();
    analyses::register_all(&mut registry);
    let node = SimNode::new(NodeConfig::fast_test(1));
    let ctx = CreateContext { node, rank: 0, size: 1 };
    for xml in [
        r#"<sensei><analysis type="histogram" bins="8"/></sensei>"#, // no variable
        r#"<sensei><analysis type="histogram" variable="m" bins="0"/></sensei>"#,
        r#"<sensei><analysis type="histogram" variable="m" min="2" max="1"/></sensei>"#,
        r#"<sensei><analysis type="descriptive_stats" variables=""/></sensei>"#,
        r#"<sensei><analysis type="autocorrelation" variable="x" window="1"/></sensei>"#,
        r#"<sensei><analysis type="particle_writer" output="x" every="0"/></sensei>"#,
    ] {
        let cfg = ConfigurableAnalysis::from_xml(xml).unwrap();
        assert!(cfg.instantiate(&registry, &ctx).is_err(), "should reject: {xml}");
    }
}
