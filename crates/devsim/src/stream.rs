//! Streams: in-order, asynchronous command queues.
//!
//! A [`Stream`] mirrors a CUDA/HIP stream: commands (kernels, copies,
//! event records/waits) execute strictly in submission order, but
//! asynchronously with respect to the submitting thread. Each stream owns
//! a worker thread; kernels additionally contend for their device's
//! concurrent-kernel slots, so two streams on one device serialize when
//! the device is saturated while streams on different devices overlap
//! freely — the behaviour the paper's placement study depends on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Sender};

use parking_lot::{Condvar, Mutex};

use crate::device::DeviceCore;
use crate::error::{Error, Result};
use crate::event::Event;
use crate::fault::{self, FaultInjector};
use crate::memory::{CellBuffer, KernelScope, MemSpace};
use crate::stats::NodeStats;
use crate::timemodel::{self, KernelCost, LinkParams};

type Cmd = Box<dyn FnOnce(&WorkerCtx, &mut Duration) + Send>;

/// Modeled remainders below this floor are not slept inline (the OS
/// overshoot would dwarf them); they accumulate in the stream's deficit
/// and are slept in one batch when the queue drains, preserving total
/// modeled time without per-operation overshoot.
const SLEEP_FLOOR: Duration = Duration::from_millis(1);

/// Sleep `remaining` now if it is large enough to be slept accurately,
/// otherwise defer it to the stream's deficit.
fn sleep_or_defer(remaining: Duration, deficit: &mut Duration) {
    if remaining >= SLEEP_FLOOR {
        std::thread::sleep(remaining);
    } else {
        *deficit += remaining;
    }
}

pub(crate) struct WorkerCtx {
    device: Option<Arc<DeviceCore>>,
    stats: Arc<NodeStats>,
    link: LinkParams,
    time_scale: f64,
}

/// Monotone progress counters of one stream, shared with the memory pool.
///
/// `submitted` counts commands ever enqueued; `completed` counts commands
/// whose closure has returned (and therefore dropped its buffer clones).
/// A buffer freed after being used on the stream is safe to hand to
/// *other* streams once `completed` reaches the `submitted` watermark
/// observed at free time — the pool's stand-in for recording an event on
/// the last-use stream and waiting for it, as `cudaMallocAsync` pools do.
pub(crate) struct StreamTimeline {
    submitted: AtomicU64,
    completed: AtomicU64,
}

impl StreamTimeline {
    pub(crate) fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Acquire)
    }

    pub(crate) fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }
}

/// Process-wide stream id allocator (ids are never reused).
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(0);

struct Shared {
    pending: Mutex<u64>,
    idle: Condvar,
    /// First asynchronous failure (sticky until the next synchronize).
    error: Mutex<Option<Error>>,
}

/// An in-order asynchronous command queue bound to one device.
///
/// Streams are created by [`crate::Device::create_stream`]; they are cheap
/// to share behind an `Arc` and safe to submit to from any thread
/// (submissions from one thread retain their order).
pub struct Stream {
    id: u64,
    device_id: usize,
    tx: Sender<Cmd>,
    shared: Arc<Shared>,
    timeline: Arc<StreamTimeline>,
    fault: Arc<FaultInjector>,
}

impl Stream {
    pub(crate) fn spawn(
        device: Arc<DeviceCore>,
        stats: Arc<NodeStats>,
        fault: Arc<FaultInjector>,
        link: LinkParams,
        time_scale: f64,
    ) -> Arc<Stream> {
        let (tx, rx) = channel::<Cmd>();
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            idle: Condvar::new(),
            error: Mutex::new(None),
        });
        let timeline =
            Arc::new(StreamTimeline { submitted: AtomicU64::new(0), completed: AtomicU64::new(0) });
        let id = NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed);
        let device_id = device.id;
        let ctx = WorkerCtx { device: Some(device), stats, link, time_scale };
        let worker_shared = shared.clone();
        let worker_timeline = timeline.clone();
        std::thread::Builder::new()
            .name(format!("devsim-stream-d{device_id}"))
            .spawn(move || {
                let mut deficit = Duration::ZERO;
                while let Ok(cmd) = rx.recv() {
                    cmd(&ctx, &mut deficit);
                    // The command's closure (and its buffer clones) is gone;
                    // advance the completion watermark the pool reclaims on.
                    worker_timeline.completed.fetch_add(1, Ordering::Release);
                    let mut p = worker_shared.pending.lock();
                    // Flush deferred modeled time before reporting idle.
                    // `pending` counts submitted-but-unfinished commands,
                    // so 1 here means this was the last queued command.
                    if *p == 1 && !deficit.is_zero() {
                        drop(p);
                        std::thread::sleep(deficit);
                        deficit = Duration::ZERO;
                        p = worker_shared.pending.lock();
                    }
                    *p -= 1;
                    if *p == 0 {
                        worker_shared.idle.notify_all();
                    }
                }
            })
            .expect("spawn stream worker");
        Arc::new(Stream { id, device_id, tx, shared, timeline, fault })
    }

    /// The device this stream issues to.
    pub fn device(&self) -> usize {
        self.device_id
    }

    /// Process-unique id of this stream (never reused).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of commands ever submitted (diagnostic).
    pub fn submitted(&self) -> u64 {
        self.timeline.submitted()
    }

    /// The (id, timeline) pair the pool uses to track last-use ordering.
    pub(crate) fn use_token(&self) -> (u64, Arc<StreamTimeline>) {
        (self.id, self.timeline.clone())
    }

    fn enqueue(&self, cmd: Cmd) -> Result<()> {
        *self.shared.pending.lock() += 1;
        self.timeline.submitted.fetch_add(1, Ordering::Release);
        self.tx.send(cmd).map_err(|_| {
            // Undo the pending count if the worker is gone.
            *self.shared.pending.lock() -= 1;
            Error::StreamClosed
        })
    }

    /// Launch a kernel: enqueue `body` to run on the device, occupying a
    /// device slot for at least the modeled duration of `cost`.
    ///
    /// `body` receives a [`KernelScope`] with which it creates device-side
    /// views of buffers. Errors returned by `body` (and panics inside it)
    /// are captured and surface from the next [`Stream::synchronize`].
    pub fn launch<F>(&self, name: &str, cost: KernelCost, body: F) -> Result<()>
    where
        F: FnOnce(&KernelScope) -> KernelResult + Send + 'static,
    {
        // Injected launch failures surface at submission, like a failed
        // `cudaLaunchKernel` return code (not an async stream error).
        self.fault.check(fault::site::STREAM_LAUNCH)?;
        let shared = self.shared.clone();
        let name = name.to_string();
        let stream_use = self.use_token();
        self.enqueue(Box::new(move |ctx, deficit| {
            let dev = ctx.device.as_ref().expect("kernel launched on a device stream");
            let duration = timemodel::kernel_duration(cost, &dev.params, ctx.time_scale);
            dev.slots.with(|| {
                let t0 = Instant::now();
                let scope = KernelScope { device: dev.id, stream: Some(stream_use) };
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&scope)));
                let elapsed = t0.elapsed();
                if duration > elapsed {
                    // Long kernels sleep while holding the slot (they are
                    // the contention carriers); short remainders defer.
                    sleep_or_defer(duration - elapsed, deficit);
                }
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        let mut err = shared.error.lock();
                        err.get_or_insert(e);
                    }
                    Err(_) => {
                        // A panicking kernel poisons the stream with a
                        // generic error; the panic message went to stderr.
                        let mut err = shared.error.lock();
                        err.get_or_insert(Error::StreamClosed);
                        eprintln!("devsim: kernel '{name}' panicked on device {}", dev.id);
                    }
                }
            });
            NodeStats::bump(&ctx.stats.kernels_launched);
        }))
    }

    /// Enqueue an ordered copy of all cells from `src` to `dst`.
    ///
    /// Direction (h2d / d2h / d2d / h2h) is derived from the buffers'
    /// memory spaces; the transfer holds the stream for the modeled link
    /// time. Lengths must match (checked at submission).
    pub fn copy(&self, src: &CellBuffer, dst: &CellBuffer) -> Result<()> {
        if src.len() != dst.len() {
            return Err(Error::CopyLengthMismatch { src: src.len(), dst: dst.len() });
        }
        self.fault.check(fault::site::STREAM_COPY)?;
        // Both endpoints are used by this stream: their pooled blocks must
        // not be handed to another stream until this copy has completed.
        let (sid, timeline) = self.use_token();
        src.note_stream_use(sid, &timeline);
        dst.note_stream_use(sid, &timeline);
        let src = src.clone();
        let dst = dst.clone();
        let shared = self.shared.clone();
        self.enqueue(Box::new(move |ctx, deficit| {
            let bytes = src.len() * 8;
            let host_involved = src.space() == MemSpace::Host || dst.space() == MemSpace::Host;
            let duration =
                timemodel::transfer_duration(bytes, host_involved, &ctx.link, ctx.time_scale);
            let t0 = Instant::now();
            let result = dst.copy_cells_from(&src);
            if let Err(e) = result {
                shared.error.lock().get_or_insert(e);
            }
            let elapsed = t0.elapsed();
            if duration > elapsed {
                sleep_or_defer(duration - elapsed, deficit);
            }
            // Unified memory is homed on a device; count it as device-side.
            let is_host = |s: MemSpace| s == MemSpace::Host;
            match (is_host(src.space()), is_host(dst.space())) {
                (true, true) => NodeStats::bump(&ctx.stats.copies_h2h),
                (true, false) => {
                    NodeStats::bump(&ctx.stats.copies_h2d);
                    NodeStats::add(&ctx.stats.bytes_h2d, bytes as u64);
                }
                (false, true) => {
                    NodeStats::bump(&ctx.stats.copies_d2h);
                    NodeStats::add(&ctx.stats.bytes_d2h, bytes as u64);
                }
                (false, false) => {
                    NodeStats::bump(&ctx.stats.copies_d2d);
                    NodeStats::add(&ctx.stats.bytes_d2d, bytes as u64);
                }
            }
        }))
    }

    /// Enqueue an event record: the event signals once every previously
    /// submitted command on this stream has completed.
    pub fn record(&self, event: &Event) -> Result<()> {
        let event = event.clone();
        self.enqueue(Box::new(move |_, deficit| {
            // Events order later work: deferred modeled time must elapse
            // before the event is visible.
            if !deficit.is_zero() {
                std::thread::sleep(*deficit);
                *deficit = Duration::ZERO;
            }
            event.signal()
        }))
    }

    /// Enqueue a wait: commands submitted after this one do not execute
    /// until `event` has been signaled (cross-stream ordering).
    pub fn wait_event(&self, event: &Event) -> Result<()> {
        let event = event.clone();
        self.enqueue(Box::new(move |_, _| event.wait()))
    }

    /// Block the calling thread until every submitted command has
    /// completed; returns (and clears) the first asynchronous error.
    pub fn synchronize(&self) -> Result<()> {
        let mut p = self.shared.pending.lock();
        while *p > 0 {
            self.shared.idle.wait(&mut p);
        }
        drop(p);
        match self.shared.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// True when no submitted command is outstanding.
    pub fn is_idle(&self) -> bool {
        *self.shared.pending.lock() == 0
    }

    /// Non-blocking completion query, mirroring `cudaStreamQuery`:
    /// `Ok(true)` when every submitted command has completed, `Ok(false)`
    /// while work is still outstanding. A sticky asynchronous error is
    /// taken (and cleared) instead, exactly as [`Stream::synchronize`]
    /// would report it — pollers harvest stream failures without blocking.
    pub fn query(&self) -> Result<bool> {
        if let Some(e) = self.shared.error.lock().take() {
            return Err(e);
        }
        Ok(*self.shared.pending.lock() == 0)
    }
}

/// Result type kernels return; `Err` surfaces at the next synchronize.
pub type KernelResult = Result<()>;
