//! A simulated accelerator: memory space, kernel slots, and streams.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::memory::{AllocGuard, CellBuffer, MemSpace};
use crate::sem::Semaphore;
use crate::stats::NodeStats;
use crate::stream::Stream;
use crate::timemodel::{DeviceParams, LinkParams};

/// Shared interior of a device, referenced by its streams.
pub(crate) struct DeviceCore {
    pub id: usize,
    pub params: DeviceParams,
    pub slots: Semaphore,
    used_bytes: Mutex<usize>,
}

/// One simulated accelerator on a [`crate::SimNode`].
///
/// A device owns a bounded memory space (allocate with
/// [`Device::alloc_f64`] / [`Device::alloc_cells`]) and executes kernels
/// submitted through its [`Stream`]s. At most `params.slots` kernels run
/// concurrently; additional kernels queue, which is how a shared in situ
/// device slows down the simulation in the paper's *same device* placement.
pub struct Device {
    core: Arc<DeviceCore>,
    stats: Arc<NodeStats>,
    link: LinkParams,
    time_scale: f64,
    default_stream: Mutex<Option<Arc<Stream>>>,
}

impl Device {
    pub(crate) fn new(
        id: usize,
        params: DeviceParams,
        stats: Arc<NodeStats>,
        link: LinkParams,
        time_scale: f64,
    ) -> Device {
        Device {
            core: Arc::new(DeviceCore {
                id,
                params,
                slots: Semaphore::new(params.slots),
                used_bytes: Mutex::new(0),
            }),
            stats,
            link,
            time_scale,
            default_stream: Mutex::new(None),
        }
    }

    /// This device's id on the node.
    pub fn id(&self) -> usize {
        self.core.id
    }

    /// The modeled device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.core.params
    }

    /// Bytes currently allocated on the device.
    pub fn used_bytes(&self) -> usize {
        *self.core.used_bytes.lock()
    }

    /// Bytes still available on the device.
    pub fn free_bytes(&self) -> usize {
        self.core.params.memory_bytes - self.used_bytes()
    }

    /// Allocate `len` 64-bit cells in this device's memory space.
    pub fn alloc_cells(&self, len: usize) -> Result<CellBuffer> {
        let bytes = len * 8;
        {
            let mut used = self.core.used_bytes.lock();
            let free = self.core.params.memory_bytes - *used;
            if bytes > free {
                return Err(Error::OutOfMemory { device: self.core.id, requested: bytes, free });
            }
            *used += bytes;
        }
        NodeStats::bump(&self.stats.device_allocs);
        NodeStats::add(&self.stats.device_alloc_bytes, bytes as u64);
        let core = self.core.clone();
        let guard = Arc::new(AllocGuard {
            bytes,
            on_drop: Box::new(move |b| {
                *core.used_bytes.lock() -= b;
            }),
        });
        Ok(CellBuffer::new(len, MemSpace::Device(self.core.id), Some(guard)))
    }

    /// Allocate `len` `f64` elements on this device.
    pub fn alloc_f64(&self, len: usize) -> Result<CellBuffer> {
        self.alloc_cells(len)
    }

    /// Allocate `len` cells of universally addressable (managed) memory
    /// homed on this device: directly accessible from host code and from
    /// kernels on any device (`cudaMallocManaged`). Charged against this
    /// device's capacity.
    pub fn alloc_unified(&self, len: usize) -> Result<CellBuffer> {
        let buf = self.alloc_cells(len)?;
        // Re-wrap with the unified space, keeping the capacity guard.
        Ok(buf.with_space(MemSpace::Unified(self.core.id)))
    }

    /// Create a new stream issuing to this device.
    pub fn create_stream(&self) -> Arc<Stream> {
        Stream::spawn(self.core.clone(), self.stats.clone(), self.link, self.time_scale)
    }

    /// The device's lazily created default stream (the "null stream").
    pub fn default_stream(&self) -> Arc<Stream> {
        let mut slot = self.default_stream.lock();
        slot.get_or_insert_with(|| {
            Stream::spawn(self.core.clone(), self.stats.clone(), self.link, self.time_scale)
        })
        .clone()
    }
}
