//! A simulated accelerator: memory space, kernel slots, and streams.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::fault::FaultInjector;
use crate::memory::{CellBuffer, MemSpace};
use crate::pool::{MemoryPool, PoolStats, SpaceHooks};
use crate::sem::Semaphore;
use crate::stats::NodeStats;
use crate::stream::Stream;
use crate::timemodel::{self, DeviceParams, LinkParams};

/// Shared interior of a device, referenced by its streams.
pub(crate) struct DeviceCore {
    pub id: usize,
    pub params: DeviceParams,
    pub slots: Semaphore,
    used_bytes: Mutex<usize>,
}

/// One simulated accelerator on a [`crate::SimNode`].
///
/// A device owns a bounded memory space (allocate with
/// [`Device::alloc_f64`] / [`Device::alloc_cells`]) and executes kernels
/// submitted through its [`Stream`]s. At most `params.slots` kernels run
/// concurrently; additional kernels queue, which is how a shared in situ
/// device slows down the simulation in the paper's *same device* placement.
///
/// Allocations flow through the node's stream-aware caching
/// [`MemoryPool`]; `used_bytes` counts *live* allocations (blocks sitting
/// in the pool's free lists are accounted separately and trimmed under
/// capacity pressure).
pub struct Device {
    core: Arc<DeviceCore>,
    stats: Arc<NodeStats>,
    pool: Arc<MemoryPool>,
    fault: Arc<FaultInjector>,
    link: LinkParams,
    time_scale: f64,
    default_stream: Mutex<Option<Arc<Stream>>>,
}

impl Device {
    pub(crate) fn new(
        id: usize,
        params: DeviceParams,
        stats: Arc<NodeStats>,
        pool: Arc<MemoryPool>,
        fault: Arc<FaultInjector>,
        link: LinkParams,
        time_scale: f64,
    ) -> Device {
        let core = Arc::new(DeviceCore {
            id,
            params,
            slots: Semaphore::new(params.slots),
            used_bytes: Mutex::new(0),
        });
        // Teach the pool this space's capacity accounting. The pool calls
        // these while holding its own lock; lock order is always
        // pool → device, so the getters below (device lock only) are safe.
        let charge = {
            let core = core.clone();
            Box::new(move |bytes: usize| {
                *core.used_bytes.lock() += bytes;
            })
        };
        let try_charge = {
            let core = core.clone();
            Box::new(move |bytes: usize, cached: usize| {
                let mut used = core.used_bytes.lock();
                if *used + cached + bytes > core.params.memory_bytes {
                    Err(core.params.memory_bytes.saturating_sub(*used + cached))
                } else {
                    *used += bytes;
                    Ok(())
                }
            })
        };
        let release = {
            let core = core.clone();
            Box::new(move |bytes: usize| {
                *core.used_bytes.lock() -= bytes;
            })
        };
        let on_raw_alloc = {
            let stats = stats.clone();
            Box::new(move |bytes: usize| {
                NodeStats::bump(&stats.device_allocs);
                NodeStats::add(&stats.device_alloc_bytes, bytes as u64);
            })
        };
        pool.register_space(
            MemSpace::Device(id),
            SpaceHooks { charge, try_charge, release, on_raw_alloc },
        );
        Device { core, stats, pool, fault, link, time_scale, default_stream: Mutex::new(None) }
    }

    /// This device's id on the node.
    pub fn id(&self) -> usize {
        self.core.id
    }

    /// The modeled device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.core.params
    }

    /// Bytes currently held by live allocations on the device.
    pub fn used_bytes(&self) -> usize {
        *self.core.used_bytes.lock()
    }

    /// Bytes still allocatable: capacity minus live allocations minus
    /// pool-cached blocks (the latter are reclaimed under pressure, but
    /// they are not free *now*).
    pub fn free_bytes(&self) -> usize {
        self.core.params.memory_bytes.saturating_sub(
            self.used_bytes() + self.pool.cached_bytes(MemSpace::Device(self.core.id)),
        )
    }

    /// This device's pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats(MemSpace::Device(self.core.id))
    }

    /// Allocate `len` 64-bit cells in this device's memory space.
    pub fn alloc_cells(&self, len: usize) -> Result<CellBuffer> {
        self.alloc_impl(MemSpace::Device(self.core.id), len, None)
    }

    /// Allocate `len` cells for use on `stream` (`cudaMallocAsync`): the
    /// pool may serve a block whose previous use was on that same stream
    /// without waiting for the stream to drain, since in-order execution
    /// already serializes the old use before the new one.
    pub fn alloc_cells_on_stream(&self, len: usize, stream: &Stream) -> Result<CellBuffer> {
        self.alloc_impl(MemSpace::Device(self.core.id), len, Some(stream))
    }

    /// Allocate `len` `f64` elements on this device.
    pub fn alloc_f64(&self, len: usize) -> Result<CellBuffer> {
        self.alloc_cells(len)
    }

    /// Allocate `len` cells of universally addressable (managed) memory
    /// homed on this device: directly accessible from host code and from
    /// kernels on any device (`cudaMallocManaged`). Charged against this
    /// device's capacity and pooled with its space.
    pub fn alloc_unified(&self, len: usize) -> Result<CellBuffer> {
        self.alloc_impl(MemSpace::Unified(self.core.id), len, None)
    }

    fn alloc_impl(
        &self,
        space: MemSpace,
        len: usize,
        stream: Option<&Stream>,
    ) -> Result<CellBuffer> {
        let token = stream.map(|s| s.use_token());
        let (buf, raw) = self.pool.alloc(space, len, token)?;
        if raw {
            // Only raw allocations pay the cudaMalloc-class overhead; pool
            // hits are the fast path the refactor exists to create.
            let d = timemodel::alloc_duration(&self.core.params, self.time_scale);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
        Ok(buf)
    }

    /// Create a new stream issuing to this device.
    pub fn create_stream(&self) -> Arc<Stream> {
        Stream::spawn(
            self.core.clone(),
            self.stats.clone(),
            self.fault.clone(),
            self.link,
            self.time_scale,
        )
    }

    /// The device's lazily created default stream (the "null stream").
    pub fn default_stream(&self) -> Arc<Stream> {
        let mut slot = self.default_stream.lock();
        slot.get_or_insert_with(|| {
            Stream::spawn(
                self.core.clone(),
                self.stats.clone(),
                self.fault.clone(),
                self.link,
                self.time_scale,
            )
        })
        .clone()
    }
}
