//! A counting semaphore modeling a device's concurrent-kernel capacity.

use parking_lot::{Condvar, Mutex};

/// Counting semaphore. A device with `slots = k` admits `k` kernels at a
/// time; further launches queue on the semaphore, which is exactly the
/// serialization a saturated GPU imposes on extra streams.
///
/// The semaphore has two lanes: urgent acquires are served before normal
/// ones whenever permits free up. The host executor uses the urgent lane
/// for the simulation's own host phases, so oversubscribed in situ worker
/// threads fill idle capacity instead of convoying the solver.
pub(crate) struct Semaphore {
    state: Mutex<State>,
    released: Condvar,
}

struct State {
    permits: usize,
    urgent_waiting: usize,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        assert!(permits > 0, "a device needs at least one kernel slot");
        Semaphore {
            state: Mutex::new(State { permits, urgent_waiting: 0 }),
            released: Condvar::new(),
        }
    }

    /// Block until a permit is available, then take it. Yields to any
    /// urgent waiter first.
    pub fn acquire(&self) {
        let mut s = self.state.lock();
        while s.permits == 0 || s.urgent_waiting > 0 {
            self.released.wait(&mut s);
        }
        s.permits -= 1;
    }

    /// Block until a permit is available, then take it, ahead of any
    /// normal waiters.
    pub fn acquire_urgent(&self) {
        let mut s = self.state.lock();
        s.urgent_waiting += 1;
        while s.permits == 0 {
            self.released.wait(&mut s);
        }
        s.urgent_waiting -= 1;
        s.permits -= 1;
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut s = self.state.lock();
        s.permits += 1;
        drop(s);
        // Wake everyone: a freed permit must reach an urgent waiter even
        // if a normal waiter happens to be first in the wait queue.
        self.released.notify_all();
    }

    /// Run `f` while holding a permit.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let guard = ReleaseOnDrop(self);
        let r = f();
        drop(guard);
        r
    }

    /// Run `f` while holding a permit acquired through the urgent lane.
    pub fn with_urgent<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire_urgent();
        let guard = ReleaseOnDrop(self);
        let r = f();
        drop(guard);
        r
    }
}

struct ReleaseOnDrop<'a>(&'a Semaphore);

impl Drop for ReleaseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn acquire_release_roundtrip() {
        let s = Semaphore::new(2);
        s.acquire();
        s.acquire();
        s.release();
        s.acquire();
        s.release();
        s.release();
    }

    #[test]
    fn concurrency_never_exceeds_permits() {
        const PERMITS: usize = 3;
        let sem = Arc::new(Semaphore::new(PERMITS));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let sem = sem.clone();
                let active = active.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    sem.with(|| {
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(5));
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= PERMITS);
        assert_eq!(active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn urgent_acquire_jumps_the_queue() {
        let sem = Arc::new(Semaphore::new(1));
        sem.acquire();

        // A crowd of normal waiters queued on the one permit.
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let normals: Vec<_> = (0..4)
            .map(|i| {
                let sem = sem.clone();
                let order = order.clone();
                std::thread::spawn(move || {
                    sem.with(|| order.lock().push(format!("normal{i}")));
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));

        let urgent = {
            let sem = sem.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                sem.with_urgent(|| order.lock().push("urgent".into()));
            })
        };
        std::thread::sleep(Duration::from_millis(20));

        sem.release();
        urgent.join().unwrap();
        for h in normals {
            h.join().unwrap();
        }
        assert_eq!(order.lock()[0], "urgent", "urgent waiter is served first");
        assert_eq!(order.lock().len(), 5);
    }

    #[test]
    fn with_releases_on_panic() {
        let sem = Arc::new(Semaphore::new(1));
        let s2 = sem.clone();
        let _ = std::thread::spawn(move || {
            s2.with(|| panic!("kernel fault"));
        })
        .join();
        // Permit must have been returned despite the panic.
        sem.acquire();
        sem.release();
    }
}
