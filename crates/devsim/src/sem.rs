//! A counting semaphore modeling a device's concurrent-kernel capacity.

use parking_lot::{Condvar, Mutex};

/// Counting semaphore. A device with `slots = k` admits `k` kernels at a
/// time; further launches queue on the semaphore, which is exactly the
/// serialization a saturated GPU imposes on extra streams.
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    released: Condvar,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        assert!(permits > 0, "a device needs at least one kernel slot");
        Semaphore { permits: Mutex::new(permits), released: Condvar::new() }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.released.wait(&mut p);
        }
        *p -= 1;
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        drop(p);
        self.released.notify_one();
    }

    /// Run `f` while holding a permit.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let guard = ReleaseOnDrop(self);
        let r = f();
        drop(guard);
        r
    }
}

struct ReleaseOnDrop<'a>(&'a Semaphore);

impl Drop for ReleaseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn acquire_release_roundtrip() {
        let s = Semaphore::new(2);
        s.acquire();
        s.acquire();
        s.release();
        s.acquire();
        s.release();
        s.release();
    }

    #[test]
    fn concurrency_never_exceeds_permits() {
        const PERMITS: usize = 3;
        let sem = Arc::new(Semaphore::new(PERMITS));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let sem = sem.clone();
                let active = active.clone();
                let peak = peak.clone();
                std::thread::spawn(move || {
                    sem.with(|| {
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(5));
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= PERMITS);
        assert_eq!(active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn with_releases_on_panic() {
        let sem = Arc::new(Semaphore::new(1));
        let s2 = sem.clone();
        let _ = std::thread::spawn(move || {
            s2.with(|| panic!("kernel fault"));
        })
        .join();
        // Permit must have been returned despite the panic.
        sem.acquire();
        sem.release();
    }
}
