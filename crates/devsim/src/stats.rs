//! Node-wide operation counters.
//!
//! The zero-copy guarantees in the data-model extensions are tested against
//! these counters: "accessing data already in place performs no transfer"
//! is an assertion on `copies_*` staying flat.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters updated by devices, streams, and the host executor.
#[derive(Default)]
pub struct NodeStats {
    pub(crate) kernels_launched: AtomicU64,
    pub(crate) host_tasks: AtomicU64,
    pub(crate) copies_h2d: AtomicU64,
    pub(crate) copies_d2h: AtomicU64,
    pub(crate) copies_d2d: AtomicU64,
    pub(crate) copies_h2h: AtomicU64,
    pub(crate) bytes_h2d: AtomicU64,
    pub(crate) bytes_d2h: AtomicU64,
    pub(crate) bytes_d2d: AtomicU64,
    pub(crate) device_allocs: AtomicU64,
    pub(crate) device_alloc_bytes: AtomicU64,
    pub(crate) stream_syncs: AtomicU64,
}

/// A point-in-time copy of [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub kernels_launched: u64,
    pub host_tasks: u64,
    pub copies_h2d: u64,
    pub copies_d2h: u64,
    pub copies_d2d: u64,
    pub copies_h2h: u64,
    pub bytes_h2d: u64,
    pub bytes_d2h: u64,
    pub bytes_d2d: u64,
    pub device_allocs: u64,
    pub device_alloc_bytes: u64,
    pub stream_syncs: u64,
}

impl NodeStats {
    /// Snapshot all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            kernels_launched: self.kernels_launched.load(Ordering::Relaxed),
            host_tasks: self.host_tasks.load(Ordering::Relaxed),
            copies_h2d: self.copies_h2d.load(Ordering::Relaxed),
            copies_d2h: self.copies_d2h.load(Ordering::Relaxed),
            copies_d2d: self.copies_d2d.load(Ordering::Relaxed),
            copies_h2h: self.copies_h2h.load(Ordering::Relaxed),
            bytes_h2d: self.bytes_h2d.load(Ordering::Relaxed),
            bytes_d2h: self.bytes_d2h.load(Ordering::Relaxed),
            bytes_d2d: self.bytes_d2d.load(Ordering::Relaxed),
            device_allocs: self.device_allocs.load(Ordering::Relaxed),
            device_alloc_bytes: self.device_alloc_bytes.load(Ordering::Relaxed),
            stream_syncs: self.stream_syncs.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total number of copies in any direction.
    pub fn total_copies(&self) -> u64 {
        self.copies_h2d + self.copies_d2h + self.copies_d2d + self.copies_h2h
    }

    /// Total bytes moved over links (h2h copies are not link traffic).
    pub fn total_link_bytes(&self) -> u64 {
        self.bytes_h2d + self.bytes_d2h + self.bytes_d2d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates() {
        let s = NodeStats::default();
        NodeStats::bump(&s.kernels_launched);
        NodeStats::bump(&s.kernels_launched);
        NodeStats::add(&s.bytes_h2d, 100);
        let snap = s.snapshot();
        assert_eq!(snap.kernels_launched, 2);
        assert_eq!(snap.bytes_h2d, 100);
        assert_eq!(snap.total_link_bytes(), 100);
    }

    #[test]
    fn totals_aggregate_directions() {
        let snap = StatsSnapshot {
            copies_h2d: 1,
            copies_d2h: 2,
            copies_d2d: 3,
            copies_h2h: 4,
            ..Default::default()
        };
        assert_eq!(snap.total_copies(), 10);
    }
}
