//! Deterministic, seedable fault injection for the simulated node.
//!
//! A production in situ stack must keep the solver alive when the analysis
//! side fails — a kernel launch that errors, a device that runs out of
//! memory, a straggling rank in a collective. This module makes those
//! failures *reproducible*: a [`FaultInjector`] owned by the
//! [`crate::SimNode`] evaluates a seeded schedule of [`FaultRule`]s at
//! named injection sites ([`site`]) and either raises
//! [`Error::FaultInjected`] or sleeps for a configured delay.
//!
//! Injection is **armed-thread only**: a site never fires unless the
//! calling thread is inside an [`arm`] scope. The SENSEI engines arm the
//! thread around each analysis execution, so faults target the in situ
//! path and never corrupt the solver itself. Sampling is deterministic
//! per `(seed, site, rank, occurrence)` — independent of thread
//! interleaving — so a chaos run with a fixed seed injects the same
//! faults at the same points every time, on every rank.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{Error, Result};

/// Named injection sites wired into the simulated runtime.
pub mod site {
    /// Transient allocation failure inside the caching pool (any space).
    pub const POOL_ALLOC: &str = "pool.alloc";
    /// Forced out-of-memory inside the caching pool: the allocation fails
    /// with [`crate::Error::OutOfMemory`] carrying the real pool ledger.
    pub const POOL_OOM: &str = "pool.oom";
    /// Kernel-launch failure, raised at stream submission.
    pub const STREAM_LAUNCH: &str = "stream.launch";
    /// Copy failure, raised at stream submission.
    pub const STREAM_COPY: &str = "stream.copy";
    /// Slow-rank delay at the top of every `minimpi` collective. Only
    /// [`super::FaultKind::Delay`] rules are meaningful here: erroring out
    /// of a collective would desynchronize the communicator.
    pub const MPI_COLLECTIVE: &str = "mpi.collective";
}

/// What a rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with [`Error::FaultInjected`] (or a forced
    /// [`Error::OutOfMemory`] at [`site::POOL_OOM`]).
    Error,
    /// Stall the calling thread (slow-rank / straggler modeling).
    Delay(Duration),
}

/// One entry of a fault schedule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The injection site this rule applies to (see [`site`]).
    pub site: String,
    /// Error or delay.
    pub kind: FaultKind,
    /// Probability of firing per armed occurrence, in `[0, 1]`.
    pub probability: f64,
    /// Skip the first `after` armed occurrences at the site.
    pub after: u64,
    /// Stop firing after this many injections (`u64::MAX` = unlimited).
    pub max_injections: u64,
    /// Restrict to one rank (`None` = every rank).
    pub rank: Option<usize>,
}

impl FaultRule {
    /// An always-firing error rule at `site`.
    pub fn error(site: &str) -> FaultRule {
        FaultRule {
            site: site.to_string(),
            kind: FaultKind::Error,
            probability: 1.0,
            after: 0,
            max_injections: u64::MAX,
            rank: None,
        }
    }

    /// An always-firing delay rule at `site`.
    pub fn delay(site: &str, delay: Duration) -> FaultRule {
        FaultRule { kind: FaultKind::Delay(delay), ..FaultRule::error(site) }
    }

    /// Fire with probability `p` per armed occurrence.
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Skip the first `n` armed occurrences.
    pub fn with_after(mut self, n: u64) -> FaultRule {
        self.after = n;
        self
    }

    /// Cap total injections from this rule.
    pub fn with_max_injections(mut self, n: u64) -> FaultRule {
        self.max_injections = n;
        self
    }

    /// Restrict the rule to `rank`.
    pub fn for_rank(mut self, rank: usize) -> FaultRule {
        self.rank = Some(rank);
        self
    }
}

/// A complete, seedable fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed mixed into every sampling decision.
    pub seed: u64,
    /// The rules, evaluated in order; the first firing rule wins.
    pub rules: Vec<FaultRule>,
}

impl FaultConfig {
    /// A schedule with `seed` and no rules yet.
    pub fn seeded(seed: u64) -> FaultConfig {
        FaultConfig { seed, rules: Vec::new() }
    }

    /// Append `rule`.
    pub fn with_rule(mut self, rule: FaultRule) -> FaultConfig {
        self.rules.push(rule);
        self
    }
}

/// Injector-side counters (what was *injected*; recovery outcomes are
/// counted by the consuming layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjectorStats {
    /// Armed site evaluations while enabled.
    pub checks: u64,
    /// Error-kind injections performed.
    pub injected_errors: u64,
    /// Delay-kind injections performed.
    pub injected_delays: u64,
}

thread_local! {
    /// The rank this thread is armed for, `None` when unarmed.
    static ARMED_RANK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// RAII guard returned by [`arm`]; disarming restores the previous state,
/// so nested arming is safe.
pub struct ArmGuard {
    prev: Option<usize>,
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        ARMED_RANK.with(|a| a.set(self.prev));
    }
}

/// Arm the calling thread for fault injection as `rank` until the guard
/// drops. The engines arm around each analysis execution; solver code
/// stays unarmed and therefore fault-free.
pub fn arm(rank: usize) -> ArmGuard {
    ARMED_RANK.with(|a| ArmGuard { prev: a.replace(Some(rank)) })
}

/// The rank the calling thread is armed for, if any.
pub fn armed_rank() -> Option<usize> {
    ARMED_RANK.with(|a| a.get())
}

struct RuleState {
    rule: FaultRule,
    injected: u64,
}

#[derive(Default)]
struct Inner {
    seed: u64,
    rules: Vec<RuleState>,
    /// Armed occurrence counters per `(site, rank)`; keying by rank makes
    /// each rank's decision sequence independent of thread interleaving.
    occurrences: HashMap<(String, usize), u64>,
}

/// The seeded fault injector owned by a [`crate::SimNode`].
///
/// Disabled (the default) it is a single relaxed atomic load per site —
/// cheap enough to leave compiled into every hot path.
pub struct FaultInjector {
    enabled: AtomicBool,
    checks: AtomicU64,
    injected_errors: AtomicU64,
    injected_delays: AtomicU64,
    inner: Mutex<Inner>,
}

impl FaultInjector {
    /// A disabled injector.
    pub fn new() -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            enabled: AtomicBool::new(false),
            checks: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Install `config`, resetting occurrence and injection counters.
    /// An empty rule list disables the injector.
    pub fn configure(&self, config: FaultConfig) {
        let mut inner = self.inner.lock();
        inner.seed = config.seed;
        inner.occurrences.clear();
        let enabled = !config.rules.is_empty();
        inner.rules =
            config.rules.into_iter().map(|rule| RuleState { rule, injected: 0 }).collect();
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Remove every rule and disable injection.
    pub fn clear(&self) {
        self.configure(FaultConfig::default());
    }

    /// True when at least one rule is installed.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Injector-side counters.
    pub fn stats(&self) -> FaultInjectorStats {
        FaultInjectorStats {
            checks: self.checks.load(Ordering::Relaxed),
            injected_errors: self.injected_errors.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
        }
    }

    /// Evaluate `site` for the calling thread: `None` when nothing fires
    /// (disabled, unarmed, or the sample missed).
    pub fn sample(&self, site: &str) -> Option<FaultKind> {
        if !self.is_enabled() {
            return None;
        }
        let rank = armed_rank()?;
        self.checks.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let occurrence = {
            let counter = inner.occurrences.entry((site.to_string(), rank)).or_insert(0);
            let o = *counter;
            *counter += 1;
            o
        };
        let seed = inner.seed;
        for state in inner.rules.iter_mut() {
            let r = &state.rule;
            if r.site != site
                || r.rank.is_some_and(|want| want != rank)
                || occurrence < r.after
                || state.injected >= r.max_injections
            {
                continue;
            }
            if unit_sample(seed, site, rank, occurrence) < r.probability {
                state.injected += 1;
                let kind = r.kind;
                drop(inner);
                match kind {
                    FaultKind::Error => {
                        self.injected_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    FaultKind::Delay(_) => {
                        self.injected_delays.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return Some(kind);
            }
        }
        None
    }

    /// Evaluate `site`; an error-kind hit returns
    /// [`Error::FaultInjected`], a delay-kind hit sleeps then succeeds.
    pub fn check(&self, site: &str) -> Result<()> {
        match self.sample(site) {
            Some(FaultKind::Error) => Err(Error::FaultInjected { site: site.to_string() }),
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// True when an error-kind rule fires at `site` (a delay-kind hit
    /// still sleeps). Used by the pool for the forced-OOM site, which
    /// builds its own diagnostic error.
    pub fn fires(&self, site: &str) -> bool {
        match self.sample(site) {
            Some(FaultKind::Error) => true,
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            None => false,
        }
    }
}

/// SplitMix64 finalizer: the bit mixer behind the deterministic sampler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name (stable across runs, unlike `DefaultHasher`).
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform sample in `[0, 1)` fully determined by the tuple.
fn unit_sample(seed: u64, site: &str, rank: usize, occurrence: u64) -> f64 {
    let mixed = splitmix64(
        seed ^ site_hash(site)
            ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ occurrence.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    );
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector_with(rules: Vec<FaultRule>) -> Arc<FaultInjector> {
        let inj = FaultInjector::new();
        inj.configure(FaultConfig { seed: 42, rules });
        inj
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::new();
        let _g = arm(0);
        assert!(!inj.is_enabled());
        for _ in 0..100 {
            assert_eq!(inj.check(site::POOL_ALLOC), Ok(()));
        }
        assert_eq!(inj.stats(), FaultInjectorStats::default());
    }

    #[test]
    fn unarmed_threads_are_exempt() {
        let inj = injector_with(vec![FaultRule::error(site::POOL_ALLOC)]);
        assert_eq!(armed_rank(), None);
        assert_eq!(inj.check(site::POOL_ALLOC), Ok(()), "unarmed thread must not fault");
        let _g = arm(3);
        assert!(inj.check(site::POOL_ALLOC).is_err(), "armed thread faults");
    }

    #[test]
    fn arm_guard_restores_previous_state() {
        assert_eq!(armed_rank(), None);
        {
            let _outer = arm(1);
            assert_eq!(armed_rank(), Some(1));
            {
                let _inner = arm(2);
                assert_eq!(armed_rank(), Some(2));
            }
            assert_eq!(armed_rank(), Some(1));
        }
        assert_eq!(armed_rank(), None);
    }

    #[test]
    fn deterministic_across_reconfigures() {
        let rules = || vec![FaultRule::error(site::STREAM_LAUNCH).with_probability(0.3)];
        let run = |inj: &FaultInjector| -> Vec<bool> {
            let _g = arm(0);
            (0..64).map(|_| inj.check(site::STREAM_LAUNCH).is_err()).collect()
        };
        let inj = injector_with(rules());
        let first = run(&inj);
        inj.configure(FaultConfig { seed: 42, rules: rules() });
        assert_eq!(run(&inj), first, "same seed, same schedule");
        inj.configure(FaultConfig { seed: 43, rules: rules() });
        assert_ne!(run(&inj), first, "different seed, different schedule");
        assert!(first.iter().any(|&b| b), "p=0.3 over 64 draws fires at least once");
        assert!(!first.iter().all(|&b| b), "p=0.3 over 64 draws misses at least once");
    }

    #[test]
    fn rank_filter_and_occurrence_counters_are_per_rank() {
        let inj = injector_with(vec![FaultRule::error(site::POOL_ALLOC).for_rank(1)]);
        {
            let _g = arm(0);
            assert_eq!(inj.check(site::POOL_ALLOC), Ok(()));
        }
        {
            let _g = arm(1);
            assert!(inj.check(site::POOL_ALLOC).is_err());
        }
    }

    #[test]
    fn after_and_max_injections_bound_the_rule() {
        let inj = injector_with(vec![FaultRule::error(site::STREAM_COPY)
            .with_after(2)
            .with_max_injections(3)]);
        let _g = arm(0);
        let hits: Vec<bool> = (0..10).map(|_| inj.check(site::STREAM_COPY).is_err()).collect();
        assert_eq!(hits, vec![false, false, true, true, true, false, false, false, false, false]);
        assert_eq!(inj.stats().injected_errors, 3);
    }

    #[test]
    fn delay_rules_sleep_instead_of_erroring() {
        let inj =
            injector_with(vec![FaultRule::delay(site::MPI_COLLECTIVE, Duration::from_millis(20))]);
        let _g = arm(0);
        let t0 = std::time::Instant::now();
        assert_eq!(inj.check(site::MPI_COLLECTIVE), Ok(()));
        assert!(t0.elapsed() >= Duration::from_millis(15), "delay rule stalls the caller");
        assert_eq!(inj.stats().injected_delays, 1);
        assert_eq!(inj.stats().injected_errors, 0);
    }

    #[test]
    fn clear_disables_and_resets() {
        let inj = injector_with(vec![FaultRule::error(site::POOL_ALLOC)]);
        {
            let _g = arm(0);
            assert!(inj.check(site::POOL_ALLOC).is_err());
        }
        inj.clear();
        assert!(!inj.is_enabled());
        let _g = arm(0);
        assert_eq!(inj.check(site::POOL_ALLOC), Ok(()));
    }
}
