//! The virtual-time cost model.
//!
//! Every kernel and transfer in the simulator both *executes* (its closure
//! runs on real memory) and *occupies* its device for a modeled service
//! time. The service time is `launch overhead + flops/throughput +
//! bytes/bandwidth`, scaled by the node-wide `time_scale`. With
//! `time_scale = 0` the simulator degenerates to "as fast as the host can
//! run the closures", which is what unit tests use; benchmarks use a scale
//! that makes the modeled time dominate, so scheduling behaviour — overlap,
//! contention, placement — matches a real multi-accelerator node.

use std::time::Duration;

/// Work metadata for a kernel launch, used to derive its modeled duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations the kernel performs.
    pub flops: f64,
    /// Bytes of device memory traffic the kernel generates.
    pub bytes: f64,
}

impl KernelCost {
    /// A free kernel: executes with launch overhead only.
    pub const ZERO: KernelCost = KernelCost { flops: 0.0, bytes: 0.0 };

    /// Cost with compute work only.
    pub fn flops(flops: f64) -> Self {
        KernelCost { flops, bytes: 0.0 }
    }

    /// Cost with memory traffic only.
    pub fn bytes(bytes: f64) -> Self {
        KernelCost { flops: 0.0, bytes }
    }
}

impl std::ops::Add for KernelCost {
    type Output = KernelCost;

    /// Composite work: a fused kernel carrying the combined flops and bytes
    /// of its constituent passes (but paying launch overhead only once).
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost { flops: self.flops + rhs.flops, bytes: self.bytes + rhs.bytes }
    }
}

impl std::ops::AddAssign for KernelCost {
    fn add_assign(&mut self, rhs: KernelCost) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for KernelCost {
    fn sum<I: Iterator<Item = KernelCost>>(iter: I) -> KernelCost {
        iter.fold(KernelCost::ZERO, |a, b| a + b)
    }
}

/// Modeled characteristics of one simulated accelerator.
#[derive(Debug, Clone, Copy)]
pub struct DeviceParams {
    /// Concurrent-kernel capacity: how many kernels may be resident at once.
    /// 1 models the common case of large kernels saturating the device.
    pub slots: usize,
    /// Peak compute throughput used to convert flops into time.
    pub flops_per_sec: f64,
    /// Device-memory bandwidth used to convert kernel bytes into time.
    pub bytes_per_sec: f64,
    /// Fixed per-launch overhead.
    pub launch_overhead: Duration,
    /// Memory capacity; allocations beyond it fail with `OutOfMemory`.
    pub memory_bytes: usize,
    /// Fixed cost of a *raw* device allocation (`cudaMalloc`-class: the
    /// driver call plus its implicit synchronization). Paid only when the
    /// caching pool misses; pool hits are free, which is the entire point
    /// of stream-ordered allocator pools.
    pub alloc_overhead: Duration,
}

impl Default for DeviceParams {
    /// Loosely A100-shaped: ~10 TF/s sustained FP64-ish, 1 TB/s HBM,
    /// 10 µs launch overhead, 40 GB memory.
    fn default() -> Self {
        DeviceParams {
            slots: 1,
            flops_per_sec: 10e12,
            bytes_per_sec: 1e12,
            launch_overhead: Duration::from_micros(10),
            memory_bytes: 40 << 30,
            alloc_overhead: Duration::from_micros(200),
        }
    }
}

/// Modeled characteristics of the host CPU complex.
#[derive(Debug, Clone, Copy)]
pub struct HostParams {
    /// Concurrent host-task capacity (≈ cores available for in situ work).
    pub slots: usize,
    /// Host compute throughput (per slot).
    pub flops_per_sec: f64,
    /// Host memory bandwidth (per slot).
    pub bytes_per_sec: f64,
    /// Fixed per-task overhead (dispatch, cache warm-up). Benchmarks set
    /// this large enough that a host task's modeled duration dominates the
    /// real time its closure takes, just as `DeviceParams::launch_overhead`
    /// does for kernels — otherwise host-placed work measures the test
    /// machine instead of the model.
    pub task_overhead: Duration,
}

impl Default for HostParams {
    /// Loosely one Milan socket spread over a few worker slots.
    fn default() -> Self {
        HostParams {
            slots: 4,
            flops_per_sec: 0.5e12,
            bytes_per_sec: 100e9,
            task_overhead: Duration::from_micros(5),
        }
    }
}

/// Modeled characteristics of the host↔device and device↔device links.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Host↔device bandwidth (PCIe/NVLink-C2C class).
    pub h2d_bytes_per_sec: f64,
    /// Device↔device bandwidth (NVLink class).
    pub d2d_bytes_per_sec: f64,
    /// Per-transfer latency.
    pub latency: Duration,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            h2d_bytes_per_sec: 25e9,
            d2d_bytes_per_sec: 100e9,
            latency: Duration::from_micros(5),
        }
    }
}

/// Modeled characteristics of the simulated cluster network, split into
/// the two tiers a node topology distinguishes: *intra-node* traffic
/// (ranks on the same node exchange through shared memory / NVLink-class
/// fabric) and *inter-node* traffic (ranks on different nodes cross the
/// cluster interconnect). minimpi charges every message against one tier
/// or the other, which is what makes hierarchical collectives — that
/// deliberately trade inter-node messages for intra-node ones — win on
/// modeled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Same-node bandwidth (shared-memory/NVLink class).
    pub intra_bytes_per_sec: f64,
    /// Cross-node bandwidth (Slingshot/InfiniBand NIC class).
    pub inter_bytes_per_sec: f64,
    /// Per-message latency between ranks on the same node.
    pub intra_latency: Duration,
    /// Per-message latency between ranks on different nodes.
    pub inter_latency: Duration,
}

impl Default for NetworkParams {
    /// Loosely Perlmutter-shaped: ~200 GB/s NVLink-class on-node fabric at
    /// 1 µs, one ~25 GB/s Slingshot NIC per node at 5 µs.
    fn default() -> Self {
        NetworkParams {
            intra_bytes_per_sec: 200e9,
            inter_bytes_per_sec: 25e9,
            intra_latency: Duration::from_micros(1),
            inter_latency: Duration::from_micros(5),
        }
    }
}

/// Convert a kernel cost to a modeled duration on a device.
pub fn kernel_duration(cost: KernelCost, p: &DeviceParams, time_scale: f64) -> Duration {
    if time_scale == 0.0 {
        return Duration::ZERO;
    }
    let secs = cost.flops / p.flops_per_sec + cost.bytes / p.bytes_per_sec;
    scale(p.launch_overhead, secs, time_scale)
}

/// Convert a host-task cost to a modeled duration on one host slot.
pub fn host_duration(cost: KernelCost, p: &HostParams, time_scale: f64) -> Duration {
    if time_scale == 0.0 {
        return Duration::ZERO;
    }
    let secs = cost.flops / p.flops_per_sec + cost.bytes / p.bytes_per_sec;
    scale(p.task_overhead, secs, time_scale)
}

/// Convert a transfer size to a modeled duration on a link.
pub fn transfer_duration(
    bytes: usize,
    host_involved: bool,
    p: &LinkParams,
    time_scale: f64,
) -> Duration {
    if time_scale == 0.0 {
        return Duration::ZERO;
    }
    let bw = if host_involved { p.h2d_bytes_per_sec } else { p.d2d_bytes_per_sec };
    scale(p.latency, bytes as f64 / bw, time_scale)
}

/// Modeled duration of one point-to-point message on the cluster network,
/// on the intra-node tier (`inter == false`) or the inter-node tier
/// (`inter == true`).
pub fn message_duration(bytes: usize, inter: bool, p: &NetworkParams, time_scale: f64) -> Duration {
    if time_scale == 0.0 {
        return Duration::ZERO;
    }
    let (latency, bw) = if inter {
        (p.inter_latency, p.inter_bytes_per_sec)
    } else {
        (p.intra_latency, p.intra_bytes_per_sec)
    };
    scale(latency, bytes as f64 / bw, time_scale)
}

/// Modeled duration of a raw (pool-miss) device allocation.
pub fn alloc_duration(p: &DeviceParams, time_scale: f64) -> Duration {
    if time_scale == 0.0 {
        return Duration::ZERO;
    }
    scale(p.alloc_overhead, 0.0, time_scale)
}

fn scale(fixed: Duration, secs: f64, time_scale: f64) -> Duration {
    let total = fixed.as_secs_f64() + secs;
    Duration::from_secs_f64((total * time_scale).clamp(0.0, 3600.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_time_scale_disables_modeling() {
        let p = DeviceParams::default();
        assert_eq!(kernel_duration(KernelCost::flops(1e15), &p, 0.0), Duration::ZERO);
        assert_eq!(transfer_duration(1 << 30, true, &LinkParams::default(), 0.0), Duration::ZERO);
        assert_eq!(
            host_duration(KernelCost::flops(1e15), &HostParams::default(), 0.0),
            Duration::ZERO
        );
    }

    #[test]
    fn kernel_duration_scales_linearly_with_flops() {
        let p = DeviceParams { launch_overhead: Duration::ZERO, ..DeviceParams::default() };
        let d1 = kernel_duration(KernelCost::flops(1e10), &p, 1.0);
        let d2 = kernel_duration(KernelCost::flops(2e10), &p, 1.0);
        assert!((d2.as_secs_f64() - 2.0 * d1.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_is_a_floor() {
        let p = DeviceParams::default();
        let d = kernel_duration(KernelCost::ZERO, &p, 1.0);
        assert_eq!(d, p.launch_overhead);
    }

    #[test]
    fn d2d_is_faster_than_h2d() {
        let link = LinkParams::default();
        let h = transfer_duration(1 << 20, true, &link, 1.0);
        let d = transfer_duration(1 << 20, false, &link, 1.0);
        assert!(d < h);
    }

    #[test]
    fn time_scale_compresses_durations() {
        let p = DeviceParams { launch_overhead: Duration::ZERO, ..DeviceParams::default() };
        let full = kernel_duration(KernelCost::flops(1e12), &p, 1.0);
        let tenth = kernel_duration(KernelCost::flops(1e12), &p, 0.1);
        assert!((full.as_secs_f64() / tenth.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn kernel_costs_compose_additively() {
        let fused: KernelCost =
            [KernelCost::flops(3.0), KernelCost::bytes(8.0), KernelCost { flops: 1.0, bytes: 2.0 }]
                .into_iter()
                .sum();
        assert_eq!(fused, KernelCost { flops: 4.0, bytes: 10.0 });
        let mut acc = KernelCost::ZERO;
        acc += fused;
        acc += KernelCost::flops(6.0);
        assert_eq!(acc, KernelCost { flops: 10.0, bytes: 10.0 });
        // Fusing N passes pays launch overhead once instead of N times: the
        // composed cost's duration is less than the sum of the parts'.
        let p = DeviceParams::default();
        let part = KernelCost { flops: 1e9, bytes: 1e9 };
        let fused_d = kernel_duration(part + part, &p, 1.0);
        let serial_d = kernel_duration(part, &p, 1.0) + kernel_duration(part, &p, 1.0);
        assert!(fused_d < serial_d);
    }

    #[test]
    fn inter_node_messages_cost_more_than_intra() {
        let net = NetworkParams::default();
        let intra = message_duration(1 << 20, false, &net, 1.0);
        let inter = message_duration(1 << 20, true, &net, 1.0);
        assert!(inter > intra);
        // Latency is a floor even for empty messages, per tier.
        assert_eq!(message_duration(0, false, &net, 1.0), net.intra_latency);
        assert_eq!(message_duration(0, true, &net, 1.0), net.inter_latency);
        // And a zero time scale disables the model entirely.
        assert_eq!(message_duration(1 << 20, true, &net, 0.0), Duration::ZERO);
    }

    #[test]
    fn durations_are_clamped_to_sane_bounds() {
        let p = DeviceParams { flops_per_sec: 1.0, ..DeviceParams::default() };
        let d = kernel_duration(KernelCost::flops(1e30), &p, 1.0);
        assert!(d <= Duration::from_secs(3600));
    }
}
