//! # devsim — a simulated heterogeneous compute node
//!
//! This crate is the hardware substitute for this reproduction of the
//! SENSEI heterogeneous-architecture extensions (SC-W 2023). The paper runs
//! on Perlmutter nodes with four A100 GPUs; this crate models one such node
//! entirely in process:
//!
//! * a [`SimNode`] owns `N` [`Device`]s plus a [`HostExec`];
//! * every device has its **own memory space** — host code cannot touch
//!   device-resident cells except through explicit [`transfers`](Stream)
//!   (the API simply does not hand out host views of device memory);
//! * work is submitted to **streams** ([`Stream`]): FIFO queues whose
//!   commands execute in order, asynchronously with respect to the
//!   submitting thread, exactly like CUDA/HIP streams;
//! * [`Event`]s provide cross-stream and host-side synchronization;
//! * kernels and transfers *really execute* (their closures run on real
//!   memory, so analysis results are bit-checkable), **and** they occupy a
//!   device slot for a modeled service time derived from
//!   [`KernelCost`] and the device's throughput parameters.
//!
//! The modeled service time is the load-bearing substitution: it makes
//! concurrency behaviour (overlap, serialization on a shared device,
//! placement trade-offs) reproduce the paper's multi-GPU shapes even on a
//! single-core machine, because a device "busy" in modeled time is a
//! sleeping thread, and sleeping threads overlap perfectly.
//!
//! ## Example
//!
//! ```
//! use devsim::{KernelCost, NodeConfig, SimNode};
//!
//! let node = SimNode::new(NodeConfig::fast_test(2));
//! let dev = node.device(0).unwrap();
//! let buf = dev.alloc_f64(16).unwrap();
//! let stream = dev.create_stream();
//!
//! let b = buf.clone();
//! stream.launch("fill", KernelCost::ZERO, move |scope| {
//!     let v = b.f64_view(scope)?;
//!     for i in 0..v.len() {
//!         v.set(i, i as f64);
//!     }
//!     Ok(())
//! }).unwrap();
//! stream.synchronize().unwrap();
//!
//! let host = node.host_alloc_f64(16);
//! stream.copy(&buf, &host).unwrap();
//! stream.synchronize().unwrap();
//! assert_eq!(host.host_f64().unwrap().to_vec()[3], 3.0);
//! ```

mod device;
mod error;
mod event;
pub mod fault;
mod host;
mod memory;
mod node;
mod pool;
mod sem;
mod stats;
mod stream;
pub mod timemodel;

pub use device::Device;
pub use error::{Error, Result};
pub use event::Event;
pub use fault::{FaultConfig, FaultInjector, FaultInjectorStats, FaultKind, FaultRule};
pub use host::HostExec;
pub use memory::{
    CellBuffer, CopyFence, F64View, HostF64View, HostU64View, KernelScope, MemSpace, PinStats,
    U64View,
};
pub use node::{NodeConfig, SimNode};
pub use pool::{MemoryPool, PoolConfig, PoolStats};
pub use stats::{NodeStats, StatsSnapshot};
pub use stream::Stream;
pub use timemodel::{
    message_duration, DeviceParams, HostParams, KernelCost, LinkParams, NetworkParams,
};

/// Pseudo-device id used for the host in placement decisions.
pub const HOST_DEVICE: i32 = -1;
