//! Events: completion markers recorded on streams, awaitable from the host
//! or from other streams (the CUDA event idiom).

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Inner {
    signaled: Mutex<bool>,
    cond: Condvar,
}

/// A one-shot completion marker.
///
/// Record it on a [`crate::Stream`] with `stream.record(&event)`; wait for
/// it from the host with [`Event::wait`], or make another stream wait with
/// `stream.wait_event(&event)`. Events can be re-armed with
/// [`Event::reset`] for reuse across iterations.
#[derive(Clone)]
pub struct Event {
    inner: Arc<Inner>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// A fresh, unsignaled event.
    pub fn new() -> Self {
        Event { inner: Arc::new(Inner { signaled: Mutex::new(false), cond: Condvar::new() }) }
    }

    /// Mark the event complete and wake all waiters.
    pub fn signal(&self) {
        let mut s = self.inner.signaled.lock();
        *s = true;
        drop(s);
        self.inner.cond.notify_all();
    }

    /// Block until the event has been signaled.
    pub fn wait(&self) {
        let mut s = self.inner.signaled.lock();
        while !*s {
            self.inner.cond.wait(&mut s);
        }
    }

    /// Non-blocking completion check.
    pub fn is_signaled(&self) -> bool {
        *self.inner.signaled.lock()
    }

    /// Re-arm the event for reuse.
    pub fn reset(&self) {
        *self.inner.signaled.lock() = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn starts_unsignaled_and_signals() {
        let e = Event::new();
        assert!(!e.is_signaled());
        e.signal();
        assert!(e.is_signaled());
        e.wait(); // must not block once signaled
    }

    #[test]
    fn wait_blocks_until_signal_from_other_thread() {
        let e = Event::new();
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            e2.signal();
        });
        e.wait();
        assert!(e.is_signaled());
        h.join().unwrap();
    }

    #[test]
    fn reset_rearms() {
        let e = Event::new();
        e.signal();
        e.reset();
        assert!(!e.is_signaled());
    }

    #[test]
    fn clones_share_state() {
        let e = Event::new();
        let f = e.clone();
        f.signal();
        assert!(e.is_signaled());
    }
}
