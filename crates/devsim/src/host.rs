//! The host executor: bounded CPU capacity for in situ work on the host.
//!
//! The paper's *host* placement moves in situ processing onto the CPU
//! cores left idle by a GPU-resident simulation. [`HostExec`] models that
//! capacity as `slots` concurrent host tasks, each charged a modeled
//! duration for its [`KernelCost`]. When asynchronous in situ work and the
//! solver's host-side phases contend for these slots, the solver slows
//! down — the effect Figure 3 of the paper shows.

use std::sync::Arc;
use std::time::Instant;

use crate::sem::Semaphore;
use crate::stats::NodeStats;
use crate::timemodel::{self, HostParams, KernelCost};

/// Bounded-capacity executor for host-placed work.
pub struct HostExec {
    params: HostParams,
    slots: Semaphore,
    stats: Arc<NodeStats>,
    time_scale: f64,
}

impl HostExec {
    pub(crate) fn new(params: HostParams, stats: Arc<NodeStats>, time_scale: f64) -> Self {
        HostExec { params, slots: Semaphore::new(params.slots), stats, time_scale }
    }

    /// The modeled host parameters.
    pub fn params(&self) -> &HostParams {
        &self.params
    }

    /// Run `f` on the calling thread while holding a host slot; the slot is
    /// held for at least the modeled duration of `cost`.
    pub fn run<R>(&self, _name: &str, cost: KernelCost, f: impl FnOnce() -> R) -> R {
        self.run_inner(cost, f, false)
    }

    /// Like [`HostExec::run`], but acquires the slot through the urgent
    /// lane, ahead of any queued normal tasks. The simulation's own
    /// host-side phases (staging, MPI exchange) use this: its ranks own
    /// their cores, and host-placed in situ work runs in the idle cycles
    /// around them rather than convoying the solver behind a queue of
    /// analysis kernels.
    pub fn run_urgent<R>(&self, _name: &str, cost: KernelCost, f: impl FnOnce() -> R) -> R {
        self.run_inner(cost, f, true)
    }

    fn run_inner<R>(&self, cost: KernelCost, f: impl FnOnce() -> R, urgent: bool) -> R {
        let duration = timemodel::host_duration(cost, &self.params, self.time_scale);
        let timed = || {
            let t0 = Instant::now();
            let r = f();
            let elapsed = t0.elapsed();
            if duration > elapsed {
                std::thread::sleep(duration - elapsed);
            }
            r
        };
        let result = if urgent { self.slots.with_urgent(timed) } else { self.slots.with(timed) };
        NodeStats::bump(&self.stats.host_tasks);
        result
    }
}
