//! Error type for simulated-device operations.

use std::fmt;

use crate::memory::MemSpace;

/// Result alias for devsim operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the simulated node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Requested device id does not exist on the node.
    NoSuchDevice { device: usize, available: usize },
    /// Device memory capacity would be exceeded. Carries the failing
    /// space's pool counters so failure-injection diagnostics show what
    /// was live, what the pool was holding, and how it got there — not
    /// just the failed request size.
    OutOfMemory {
        device: usize,
        requested: usize,
        free: usize,
        /// Bytes held by live allocations at failure time.
        live_bytes: usize,
        /// Bytes sitting in the pool's free lists (nothing trimmable was
        /// left, or trimming still did not make the request fit).
        cached_bytes: usize,
        /// The space's live+cached high-water mark.
        high_water_bytes: usize,
        /// Pool hits up to the failure.
        pool_hits: u64,
        /// Pool misses up to the failure (this request included).
        pool_misses: u64,
    },
    /// A kernel or view tried to touch memory from the wrong space, e.g.
    /// host code reading device-resident cells without a transfer.
    WrongSpace { expected: MemSpace, actual: MemSpace },
    /// A kernel was launched on a stream of one device with a buffer
    /// resident on another.
    CrossDeviceAccess { stream_device: usize, buffer_space: MemSpace },
    /// Source and destination of a copy have different lengths.
    CopyLengthMismatch { src: usize, dst: usize },
    /// The stream's worker thread is gone (node shut down).
    StreamClosed,
    /// A configured fault fired at the named injection site (see
    /// [`crate::fault`]).
    FaultInjected { site: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchDevice { device, available } => {
                write!(f, "device {device} does not exist (node has {available})")
            }
            Error::OutOfMemory {
                device,
                requested,
                free,
                live_bytes,
                cached_bytes,
                high_water_bytes,
                pool_hits,
                pool_misses,
            } => {
                write!(
                    f,
                    "device {device} out of memory: requested {requested} bytes, {free} free \
                     (live {live_bytes} B, pool-cached {cached_bytes} B, \
                     high water {high_water_bytes} B, pool {pool_hits} hits / {pool_misses} misses)"
                )
            }
            Error::WrongSpace { expected, actual } => {
                write!(
                    f,
                    "memory space mismatch: expected {expected:?}, buffer lives in {actual:?}"
                )
            }
            Error::CrossDeviceAccess { stream_device, buffer_space } => {
                write!(
                    f,
                    "kernel on device {stream_device} cannot access buffer in {buffer_space:?} directly"
                )
            }
            Error::CopyLengthMismatch { src, dst } => {
                write!(f, "copy length mismatch: src has {src} cells, dst has {dst}")
            }
            Error::StreamClosed => write!(f, "stream worker has shut down"),
            Error::FaultInjected { site } => {
                write!(f, "injected fault at site '{site}'")
            }
        }
    }
}

impl std::error::Error for Error {}
