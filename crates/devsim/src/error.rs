//! Error type for simulated-device operations.

use std::fmt;

use crate::memory::MemSpace;

/// Result alias for devsim operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the simulated node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Requested device id does not exist on the node.
    NoSuchDevice { device: usize, available: usize },
    /// Device memory capacity would be exceeded.
    OutOfMemory { device: usize, requested: usize, free: usize },
    /// A kernel or view tried to touch memory from the wrong space, e.g.
    /// host code reading device-resident cells without a transfer.
    WrongSpace { expected: MemSpace, actual: MemSpace },
    /// A kernel was launched on a stream of one device with a buffer
    /// resident on another.
    CrossDeviceAccess { stream_device: usize, buffer_space: MemSpace },
    /// Source and destination of a copy have different lengths.
    CopyLengthMismatch { src: usize, dst: usize },
    /// The stream's worker thread is gone (node shut down).
    StreamClosed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchDevice { device, available } => {
                write!(f, "device {device} does not exist (node has {available})")
            }
            Error::OutOfMemory { device, requested, free } => {
                write!(f, "device {device} out of memory: requested {requested} bytes, {free} free")
            }
            Error::WrongSpace { expected, actual } => {
                write!(
                    f,
                    "memory space mismatch: expected {expected:?}, buffer lives in {actual:?}"
                )
            }
            Error::CrossDeviceAccess { stream_device, buffer_space } => {
                write!(
                    f,
                    "kernel on device {stream_device} cannot access buffer in {buffer_space:?} directly"
                )
            }
            Error::CopyLengthMismatch { src, dst } => {
                write!(f, "copy length mismatch: src has {src} cells, dst has {dst}")
            }
            Error::StreamClosed => write!(f, "stream worker has shut down"),
        }
    }
}

impl std::error::Error for Error {}
