//! Stream-aware caching memory pool.
//!
//! Every allocation on a [`crate::SimNode`] — device, unified, and host —
//! flows through a per-memory-space [`MemoryPool`]. The design follows the
//! stream-ordered caching allocators production GPU stacks use
//! (`cudaMallocAsync` pools, PyTorch's CUDACachingAllocator):
//!
//! * requests round up to a **size class** (a multiple of
//!   [`PoolConfig::granularity`] cells) and are served from a per-class
//!   free list when possible, skipping the raw allocator entirely;
//! * a freed block re-enters the free list **stream-ordered**: if its last
//!   use was on stream *S*, it becomes reusable by other streams only once
//!   *S* has drained past that use (tracked by the stream's
//!   submitted/completed watermarks — the moral equivalent of recording an
//!   event at free time and waiting on it). Reuse *on S itself* is
//!   immediate, because stream order already serializes the old use before
//!   the new one — exactly `cudaMallocAsync` semantics;
//! * device capacity accounting is preserved: `used_bytes` counts live
//!   allocations only, cached blocks are tracked separately, and a request
//!   that does not fit trims ready cached blocks before failing with the
//!   same `OutOfMemory` error the failure-injection tests rely on (now
//!   carrying pool diagnostics);
//! * blocks served from the cache are zeroed, so pooled and raw
//!   allocations are bit-identical to consumers.
//!
//! [`PoolStats`] exposes hit/miss counts, bytes served from cache, the
//! high-water mark, and reclaim latency; the bench harness and the SENSEI
//! profiler surface them per case.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::fault::{self, FaultInjector};
use crate::memory::{BufferGuard, CellBuffer, MemSpace};
use crate::stream::StreamTimeline;

/// Tunables of the caching pool (a [`crate::NodeConfig`] field, also
/// settable at runtime through [`MemoryPool::configure`] and from XML via
/// the `<memory_pool>` element in `sensei`'s configurable analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Master switch. Disabled, every request is a raw allocation and
    /// released blocks are freed immediately (the pre-pool behaviour).
    pub enabled: bool,
    /// Size-class granularity in 64-bit cells; requests round up to the
    /// next multiple, so buffers within one class share blocks.
    pub granularity: usize,
    /// Per-space ceiling on cached (free-listed) bytes. Blocks released
    /// beyond it are freed instead of cached.
    pub trim_threshold: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { enabled: true, granularity: 64, trim_threshold: usize::MAX }
    }
}

impl PoolConfig {
    /// The pre-pool behaviour: every allocation raw, nothing cached.
    pub fn disabled() -> Self {
        PoolConfig { enabled: false, ..PoolConfig::default() }
    }

    /// The size class (in cells) a request of `len` cells is served from.
    pub fn class_cells(&self, len: usize) -> usize {
        if !self.enabled || self.granularity <= 1 {
            len
        } else {
            len.div_ceil(self.granularity) * self.granularity
        }
    }
}

/// Counters of one memory space's pool (or a sum over spaces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the cache (no raw allocation).
    pub hits: u64,
    /// Requests that fell through to a raw allocation.
    pub misses: u64,
    /// Bytes served from cached blocks.
    pub bytes_served_from_cache: u64,
    /// Raw allocations performed (equals `misses` while enabled).
    pub raw_allocs: u64,
    /// Bytes raw-allocated.
    pub raw_alloc_bytes: u64,
    /// Bytes currently held by live buffers.
    pub live_bytes: usize,
    /// Bytes currently sitting in free lists (ready or pending reclaim).
    pub cached_bytes: usize,
    /// Highest `live_bytes + cached_bytes` ever observed.
    pub high_water_bytes: usize,
    /// Blocks that transitioned pending → reusable (their last-use stream
    /// drained past the use).
    pub reclaims: u64,
    /// Total wall time blocks spent pending before reclaim.
    pub reclaim_latency: Duration,
    /// Blocks freed instead of cached (trim threshold or capacity pressure).
    pub trims: u64,
    /// Bytes freed by trimming.
    pub trimmed_bytes: u64,
}

impl PoolStats {
    /// Fraction of requests served from cache (0.0 when nothing happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean pending time of reclaimed blocks.
    pub fn mean_reclaim_latency(&self) -> Duration {
        if self.reclaims == 0 {
            Duration::ZERO
        } else {
            self.reclaim_latency / self.reclaims as u32
        }
    }

    /// Add another space's counters into this one (high-water marks add,
    /// so a total is an upper bound, not a node-wide simultaneous peak).
    pub fn accumulate(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_served_from_cache += other.bytes_served_from_cache;
        self.raw_allocs += other.raw_allocs;
        self.raw_alloc_bytes += other.raw_alloc_bytes;
        self.live_bytes += other.live_bytes;
        self.cached_bytes += other.cached_bytes;
        self.high_water_bytes += other.high_water_bytes;
        self.reclaims += other.reclaims;
        self.reclaim_latency += other.reclaim_latency;
        self.trims += other.trims;
        self.trimmed_bytes += other.trimmed_bytes;
    }
}

/// Capacity callbacks a bounded space (a device) registers with the pool.
/// Spaces without hooks (the host) are uncapped.
pub(crate) struct SpaceHooks {
    /// Charge bytes unconditionally (cache hit: the bytes merely move from
    /// the cached ledger back to the live one).
    pub charge: Box<dyn Fn(usize) + Send + Sync>,
    /// Charge bytes if `live + cached + bytes` fits the capacity; on
    /// failure returns the bytes still free.
    pub try_charge: Box<dyn Fn(usize, usize) -> std::result::Result<(), usize> + Send + Sync>,
    /// Release previously charged bytes.
    pub release: Box<dyn Fn(usize) + Send + Sync>,
    /// A raw allocation happened (node stats accounting).
    pub on_raw_alloc: Box<dyn Fn(usize) + Send + Sync>,
}

struct Block {
    cells: Arc<[AtomicU64]>,
    bytes: usize,
}

struct PendingBlock {
    block: Block,
    stream_id: u64,
    /// The last-use stream's `submitted` watermark at release time; the
    /// block is reusable by other streams once `completed` reaches it.
    ready_at: u64,
    timeline: Arc<StreamTimeline>,
    released: Instant,
}

#[derive(Default)]
struct ClassList {
    ready: Vec<Block>,
    pending: Vec<PendingBlock>,
}

#[derive(Default)]
struct SpaceState {
    classes: HashMap<usize, ClassList>,
    stats: PoolStats,
    hooks: Option<SpaceHooks>,
}

/// The node-wide pool: one free-list set per memory space.
pub struct MemoryPool {
    config: Mutex<PoolConfig>,
    spaces: Mutex<HashMap<MemSpace, SpaceState>>,
    fault: Arc<FaultInjector>,
}

/// Unified memory is homed on (and charged to) a device; pool it with
/// that device's space.
fn normalize(space: MemSpace) -> MemSpace {
    match space {
        MemSpace::Unified(d) => MemSpace::Device(d),
        other => other,
    }
}

impl MemoryPool {
    pub(crate) fn new(config: PoolConfig, fault: Arc<FaultInjector>) -> Arc<MemoryPool> {
        Arc::new(MemoryPool {
            config: Mutex::new(config),
            spaces: Mutex::new(HashMap::new()),
            fault,
        })
    }

    pub(crate) fn register_space(&self, space: MemSpace, hooks: SpaceHooks) {
        self.spaces.lock().entry(normalize(space)).or_default().hooks = Some(hooks);
    }

    /// Serve an allocation of `len` cells in `space`, preferring a cached
    /// block. `stream` is the requesting stream, if any: pending blocks
    /// whose last use was on that same stream are reusable immediately.
    ///
    /// Returns the buffer and whether a raw allocation was performed (the
    /// caller charges the modeled `alloc_overhead` only then).
    pub(crate) fn alloc(
        self: &Arc<Self>,
        space: MemSpace,
        len: usize,
        stream: Option<(u64, Arc<StreamTimeline>)>,
    ) -> Result<(CellBuffer, bool)> {
        let key = normalize(space);
        let cfg = *self.config.lock();
        let class = cfg.class_cells(len);
        let bytes = class * 8;

        // Transient allocation failure: fails before any ledger movement,
        // so a retried request sees the pool exactly as it was.
        self.fault.check(fault::site::POOL_ALLOC)?;

        let mut spaces = self.spaces.lock();
        let state = spaces.entry(key).or_default();
        let SpaceState { classes, stats, hooks } = state;

        // Forced OOM: reports the space's *real* ledger so diagnostics
        // stay truthful even for injected failures.
        if self.fault.fires(fault::site::POOL_OOM) {
            return Err(Error::OutOfMemory {
                device: key.device().unwrap_or(usize::MAX),
                requested: bytes,
                free: 0,
                live_bytes: stats.live_bytes,
                cached_bytes: stats.cached_bytes,
                high_water_bytes: stats.high_water_bytes,
                pool_hits: stats.hits,
                pool_misses: stats.misses,
            });
        }

        let mut served: Option<Block> = None;
        if cfg.enabled {
            let list = classes.entry(class).or_default();
            harvest(list, stats);
            if let Some(block) = list.ready.pop() {
                served = Some(block);
            } else if let Some((stream_id, _)) = &stream {
                // Same-stream reuse: in-order execution serializes the
                // block's old use before anything the requester submits.
                if let Some(i) = list.pending.iter().position(|p| p.stream_id == *stream_id) {
                    let p = list.pending.swap_remove(i);
                    stats.reclaims += 1;
                    stats.reclaim_latency += p.released.elapsed();
                    served = Some(p.block);
                }
            }
        }

        if let Some(block) = served {
            stats.hits += 1;
            stats.bytes_served_from_cache += bytes as u64;
            stats.cached_bytes -= block.bytes;
            if let Some(h) = hooks {
                (h.charge)(block.bytes);
            }
            stats.live_bytes += block.bytes;
            // Zero the block: pooled and raw allocations are bit-identical.
            for c in block.cells.iter() {
                c.store(0, std::sync::atomic::Ordering::Relaxed);
            }
            let guard = self.make_guard(key, class, block.bytes, block.cells.clone());
            return Ok((CellBuffer::from_parts(block.cells, len, space, Some(guard)), false));
        }

        stats.misses += 1;
        if let Some(h) = hooks {
            loop {
                match (h.try_charge)(bytes, stats.cached_bytes) {
                    Ok(()) => break,
                    Err(free) => {
                        if !trim_one(classes, stats) {
                            return Err(Error::OutOfMemory {
                                device: key.device().unwrap_or(usize::MAX),
                                requested: bytes,
                                free,
                                live_bytes: stats.live_bytes,
                                cached_bytes: stats.cached_bytes,
                                high_water_bytes: stats.high_water_bytes,
                                pool_hits: stats.hits,
                                pool_misses: stats.misses,
                            });
                        }
                    }
                }
            }
            (h.on_raw_alloc)(bytes);
        }
        stats.raw_allocs += 1;
        stats.raw_alloc_bytes += bytes as u64;
        stats.live_bytes += bytes;
        stats.high_water_bytes = stats.high_water_bytes.max(stats.live_bytes + stats.cached_bytes);

        let cells: Arc<[AtomicU64]> = (0..class).map(|_| AtomicU64::new(0)).collect();
        let guard = self.make_guard(key, class, bytes, cells.clone());
        Ok((CellBuffer::from_parts(cells, len, space, Some(guard)), true))
    }

    fn make_guard(
        self: &Arc<Self>,
        key: MemSpace,
        class: usize,
        bytes: usize,
        cells: Arc<[AtomicU64]>,
    ) -> Arc<dyn BufferGuard> {
        Arc::new(PoolGuard {
            pool: self.clone(),
            key,
            class,
            bytes,
            cells,
            last_use: Mutex::new(None),
        })
    }

    /// Return a block to the pool (last buffer clone / view dropped).
    fn release(
        &self,
        key: MemSpace,
        class: usize,
        bytes: usize,
        cells: Arc<[AtomicU64]>,
        last_use: Option<(u64, Arc<StreamTimeline>)>,
    ) {
        let cfg = *self.config.lock();
        let mut spaces = self.spaces.lock();
        let state = spaces.entry(key).or_default();
        state.stats.live_bytes = state.stats.live_bytes.saturating_sub(bytes);
        if cfg.enabled && state.stats.cached_bytes + bytes <= cfg.trim_threshold {
            state.stats.cached_bytes += bytes;
            let block = Block { cells, bytes };
            let list = state.classes.entry(class).or_default();
            match last_use {
                Some((stream_id, timeline)) => {
                    let ready_at = timeline.submitted();
                    if timeline.completed() >= ready_at {
                        list.ready.push(block);
                    } else {
                        list.pending.push(PendingBlock {
                            block,
                            stream_id,
                            ready_at,
                            timeline,
                            released: Instant::now(),
                        });
                    }
                }
                None => list.ready.push(block),
            }
        } else if cfg.enabled {
            state.stats.trims += 1;
            state.stats.trimmed_bytes += bytes as u64;
        }
        // Release the capacity charge *after* the cached ledger is updated:
        // a concurrent observer may transiently overcount, never under.
        if let Some(h) = &state.hooks {
            (h.release)(bytes);
        }
    }

    /// Counters of one space (unified spaces report with their device).
    pub fn stats(&self, space: MemSpace) -> PoolStats {
        self.spaces.lock().get(&normalize(space)).map(|s| s.stats).unwrap_or_default()
    }

    /// Sum of all spaces' counters.
    pub fn stats_total(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for state in self.spaces.lock().values() {
            total.accumulate(&state.stats);
        }
        total
    }

    /// The active configuration.
    pub fn config(&self) -> PoolConfig {
        *self.config.lock()
    }

    /// Replace the configuration at runtime. Disabling flushes every free
    /// list; a lowered trim threshold is enforced immediately.
    pub fn configure(&self, config: PoolConfig) {
        *self.config.lock() = config;
        let mut spaces = self.spaces.lock();
        for state in spaces.values_mut() {
            let SpaceState { classes, stats, .. } = state;
            if !config.enabled {
                flush(classes, stats);
            } else {
                while stats.cached_bytes > config.trim_threshold && trim_one(classes, stats) {}
            }
        }
    }

    /// Free every reclaimable cached block of `space` (explicit trim; the
    /// analogue of `cudaMemPoolTrimTo(0)`).
    pub fn trim(&self, space: MemSpace) {
        let mut spaces = self.spaces.lock();
        if let Some(state) = spaces.get_mut(&normalize(space)) {
            let SpaceState { classes, stats, .. } = state;
            while trim_one(classes, stats) {}
        }
    }

    /// Bytes currently cached for `space`.
    pub fn cached_bytes(&self, space: MemSpace) -> usize {
        self.stats(space).cached_bytes
    }
}

/// Promote pending blocks whose last-use stream has drained past the use.
fn harvest(list: &mut ClassList, stats: &mut PoolStats) {
    let mut i = 0;
    while i < list.pending.len() {
        if list.pending[i].timeline.completed() >= list.pending[i].ready_at {
            let p = list.pending.swap_remove(i);
            stats.reclaims += 1;
            stats.reclaim_latency += p.released.elapsed();
            list.ready.push(p.block);
        } else {
            i += 1;
        }
    }
}

/// Free one cached block (largest class first), harvesting pendings so
/// completed-but-unpromoted blocks count as trimmable. Returns false when
/// nothing reclaimable is cached.
fn trim_one(classes: &mut HashMap<usize, ClassList>, stats: &mut PoolStats) -> bool {
    for list in classes.values_mut() {
        harvest(list, stats);
    }
    let victim = classes
        .iter_mut()
        .filter(|(_, list)| !list.ready.is_empty())
        .max_by_key(|(class, _)| **class);
    // Checked pop: the filter above guarantees a non-empty ready list,
    // but an OOM-path reclaim must degrade to "nothing trimmable" rather
    // than panic if that invariant is ever violated.
    match victim.and_then(|(_, list)| list.ready.pop()) {
        Some(block) => {
            stats.cached_bytes -= block.bytes;
            stats.trims += 1;
            stats.trimmed_bytes += block.bytes as u64;
            true
        }
        None => false,
    }
}

/// Drop every cached block, pending or ready (pool disabled at runtime).
/// Pending blocks are unreferenced — pendingness only gates *reuse* — so
/// freeing them outright is safe.
fn flush(classes: &mut HashMap<usize, ClassList>, stats: &mut PoolStats) {
    for list in classes.values_mut() {
        for block in list.ready.drain(..).chain(list.pending.drain(..).map(|p| p.block)) {
            stats.cached_bytes -= block.bytes;
            stats.trims += 1;
            stats.trimmed_bytes += block.bytes as u64;
        }
    }
}

/// Guard attached to every pooled buffer: remembers the last stream that
/// touched the allocation and, on final drop, hands the block back to the
/// pool (which re-lists it stream-ordered) and releases the capacity
/// charge.
struct PoolGuard {
    pool: Arc<MemoryPool>,
    key: MemSpace,
    class: usize,
    bytes: usize,
    cells: Arc<[AtomicU64]>,
    last_use: Mutex<Option<(u64, Arc<StreamTimeline>)>>,
}

impl BufferGuard for PoolGuard {
    fn note_stream_use(&self, stream_id: u64, timeline: &Arc<StreamTimeline>) {
        *self.last_use.lock() = Some((stream_id, timeline.clone()));
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let last_use = self.last_use.lock().take();
        self.pool.release(self.key, self.class, self.bytes, self.cells.clone(), last_use);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::node::{NodeConfig, SimNode};
    use crate::timemodel::{DeviceParams, KernelCost};

    fn pooled_node(n: usize) -> Arc<SimNode> {
        SimNode::new(NodeConfig::fast_test(n))
    }

    #[test]
    fn requests_round_up_to_size_classes() {
        let cfg = PoolConfig::default();
        assert_eq!(cfg.class_cells(0), 0);
        assert_eq!(cfg.class_cells(1), 64);
        assert_eq!(cfg.class_cells(64), 64);
        assert_eq!(cfg.class_cells(65), 128);
        let raw = PoolConfig::disabled();
        assert_eq!(raw.class_cells(65), 65);
    }

    #[test]
    fn reuse_within_a_class_is_a_hit() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(10).unwrap(); // class 64
        drop(a);
        let b = dev.alloc_f64(40).unwrap(); // same class -> cache hit
        let s = dev.pool_stats();
        assert_eq!(s.raw_allocs, 1, "second request must be served from cache");
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.bytes_served_from_cache, 64 * 8);
        assert_eq!(s.live_bytes, 64 * 8);
        assert_eq!(s.cached_bytes, 0);
        assert_eq!(s.high_water_bytes, 64 * 8);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        drop(b);
    }

    #[test]
    fn pooled_blocks_are_zeroed_on_reuse() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let s = dev.create_stream();
        let a = dev.alloc_f64(8).unwrap();
        let av = a.clone();
        s.launch("dirty", KernelCost::ZERO, move |scope| {
            av.f64_view(scope)?.fill(3.25);
            Ok(())
        })
        .unwrap();
        s.synchronize().unwrap();
        drop(a);
        let b = dev.alloc_f64(8).unwrap();
        assert_eq!(dev.pool_stats().hits, 1, "same class must be served from cache");
        let host = node.host_alloc_f64(8);
        s.copy(&b, &host).unwrap();
        s.synchronize().unwrap();
        assert_eq!(host.host_f64().unwrap().to_vec(), vec![0.0; 8], "reused block must be zeroed");
    }

    #[test]
    fn cross_stream_reuse_waits_for_the_last_use_stream() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let s = dev.create_stream();
        let gate = Event::new();
        let done = Event::new();

        let buf = dev.alloc_f64(32).unwrap();
        let bv = buf.clone();
        s.launch("use", KernelCost::ZERO, move |scope| {
            bv.f64_view(scope)?.set(0, 1.0);
            Ok(())
        })
        .unwrap();
        s.record(&done).unwrap();
        s.wait_event(&gate).unwrap(); // parks the worker: stream not drained
        done.wait(); // the kernel itself has completed
        drop(buf); // freed with the stream still blocked -> pending

        // A requester with no stream affinity must NOT get the pending
        // block: its last-use stream has not drained past the use.
        let other = dev.alloc_f64(32).unwrap();
        let stats = dev.pool_stats();
        assert_eq!(stats.hits, 0, "pending block must not be handed out cross-stream");
        assert_eq!(stats.raw_allocs, 2);

        // The same stream may reuse it immediately (in-order execution
        // serializes the old use before anything submitted after).
        let same = dev.alloc_cells_on_stream(32, &s).unwrap();
        assert_eq!(dev.pool_stats().hits, 1, "same-stream reuse is immediate");

        // Unblock and drain the stream: the next release->acquire cycle
        // reclaims normally.
        gate.signal();
        s.synchronize().unwrap();
        drop(same);
        drop(other);
        let final_alloc = dev.alloc_f64(32).unwrap();
        let stats = dev.pool_stats();
        assert_eq!(stats.hits, 2, "drained stream's block is reusable by anyone");
        assert!(stats.reclaims >= 1, "pending->ready transitions are counted");
        drop(final_alloc);
    }

    #[test]
    fn capacity_pressure_trims_cached_blocks_before_failing() {
        let cfg = NodeConfig {
            num_devices: 1,
            device: DeviceParams { memory_bytes: 1024, ..DeviceParams::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(64).unwrap(); // 512 B live
        drop(a); // -> 512 B cached
        assert_eq!(dev.used_bytes(), 0);
        assert_eq!(dev.pool_stats().cached_bytes, 512);
        // 128 cells (1024 B) only fits if the cached block is trimmed.
        let big = dev.alloc_f64(128).unwrap();
        assert_eq!(dev.used_bytes(), 1024);
        let s = dev.pool_stats();
        assert_eq!(s.cached_bytes, 0, "cached block trimmed under pressure");
        assert!(s.trims >= 1);
        assert_eq!(s.trimmed_bytes, 512);
        drop(big);
    }

    #[test]
    fn oom_reports_pool_diagnostics() {
        let cfg = NodeConfig {
            num_devices: 1,
            device: DeviceParams { memory_bytes: 1024, ..DeviceParams::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let dev = node.device(0).unwrap();
        let _a = dev.alloc_f64(128).unwrap(); // fills the device
        match dev.alloc_f64(64).unwrap_err() {
            Error::OutOfMemory {
                device,
                requested,
                free,
                live_bytes,
                cached_bytes,
                high_water_bytes,
                pool_hits,
                pool_misses,
            } => {
                assert_eq!(device, 0);
                assert_eq!(requested, 512);
                assert_eq!(free, 0);
                assert_eq!(live_bytes, 1024);
                assert_eq!(cached_bytes, 0);
                assert_eq!(high_water_bytes, 1024);
                assert_eq!(pool_hits, 0);
                assert_eq!(pool_misses, 2);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn disabling_at_runtime_flushes_and_goes_raw() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(64).unwrap();
        drop(a);
        assert_eq!(dev.pool_stats().cached_bytes, 512);
        node.pool().configure(PoolConfig::disabled());
        assert_eq!(dev.pool_stats().cached_bytes, 0, "disable flushes the free lists");
        let b = dev.alloc_f64(64).unwrap();
        drop(b);
        let s = dev.pool_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.cached_bytes, 0, "released blocks are freed, not cached");
        assert_eq!(s.raw_allocs, 2);
    }

    #[test]
    fn trim_threshold_caps_cached_bytes() {
        let node = SimNode::new(NodeConfig {
            pool: PoolConfig { trim_threshold: 512, ..PoolConfig::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        });
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(64).unwrap();
        let b = dev.alloc_f64(64).unwrap();
        drop(a);
        drop(b); // second release exceeds the 512 B ceiling -> freed
        let s = dev.pool_stats();
        assert_eq!(s.cached_bytes, 512);
        assert_eq!(s.trims, 1);
    }

    #[test]
    fn explicit_trim_releases_everything_reclaimable() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let bufs: Vec<_> = (0..3).map(|_| dev.alloc_f64(64).unwrap()).collect();
        drop(bufs);
        assert_eq!(dev.pool_stats().cached_bytes, 3 * 512);
        node.pool().trim(MemSpace::Device(0));
        assert_eq!(dev.pool_stats().cached_bytes, 0);
    }

    #[test]
    fn host_allocations_are_pooled_too() {
        let node = pooled_node(1);
        let a = node.host_alloc_f64(100); // class 128
        drop(a);
        let b = node.host_alloc_f64(128);
        let s = node.pool_stats(MemSpace::Host);
        assert_eq!(s.hits, 1);
        assert_eq!(s.raw_allocs, 1);
        drop(b);
    }

    #[test]
    fn unified_memory_pools_with_its_home_device() {
        let node = pooled_node(1);
        let dev = node.device(0).unwrap();
        let u = dev.alloc_unified(64).unwrap();
        assert_eq!(u.space(), MemSpace::Unified(0));
        assert_eq!(dev.used_bytes(), 512);
        drop(u);
        assert_eq!(dev.used_bytes(), 0);
        let d = dev.alloc_f64(64).unwrap(); // same class, same space key
        assert_eq!(dev.pool_stats().hits, 1, "unified block reused for a device request");
        drop(d);
    }

    #[test]
    fn stats_total_sums_spaces() {
        let node = pooled_node(2);
        let _a = node.device(0).unwrap().alloc_f64(64).unwrap();
        let _b = node.device(1).unwrap().alloc_f64(64).unwrap();
        let _h = node.host_alloc_f64(64);
        let total = node.pool_stats_total();
        assert_eq!(total.raw_allocs, 3);
        assert_eq!(total.live_bytes, 3 * 512);
    }
}
