//! Memory spaces, buffers, and access views.
//!
//! All simulated memory is an array of 64-bit cells (`AtomicU64`). Using
//! atomic cells makes concurrent kernels on multi-slot devices race-safe
//! and gives kernels a faithful `atomicAdd` — the operation the paper
//! singles out as the reason data binning "is not an ideal algorithm for
//! GPUs". Typed access is by bit reinterpretation (`f64`/`u64`).
//!
//! The space discipline is enforced at the API level:
//!
//! * host code can obtain [`HostF64View`]/[`HostU64View`] only for buffers
//!   whose [`MemSpace`] is `Host`;
//! * kernels obtain [`F64View`]/[`U64View`] through a [`KernelScope`],
//!   which proves the code is running on a particular device and checks
//!   the buffer is resident there.
//!
//! Moving data between spaces requires a [`crate::Stream`] copy, exactly
//! like a real accelerator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::stream::StreamTimeline;

/// Where a buffer's cells live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Ordinary host memory: directly accessible by host code.
    Host,
    /// Memory of device `id`: accessible only from kernels on that device.
    Device(usize),
    /// Universally addressable (managed) memory homed on device `id`:
    /// accessible from host code and from kernels on *any* device, with
    /// migration handled by the runtime (`cudaMallocManaged`-style).
    Unified(usize),
}

impl MemSpace {
    /// The device id the memory is homed on, or `None` for host memory.
    pub fn device(&self) -> Option<usize> {
        match self {
            MemSpace::Host => None,
            MemSpace::Device(d) | MemSpace::Unified(d) => Some(*d),
        }
    }

    /// True when host code may access the cells directly.
    pub fn host_accessible(&self) -> bool {
        matches!(self, MemSpace::Host | MemSpace::Unified(_))
    }

    /// True when a kernel on `device` may access the cells directly.
    pub fn device_accessible(&self, device: usize) -> bool {
        match self {
            MemSpace::Host => false,
            MemSpace::Device(d) => *d == device,
            MemSpace::Unified(_) => true,
        }
    }
}

/// Lifecycle hook attached to an allocation. The last drop of the guard
/// (buffer clones *and* views share it) releases the allocation — back to
/// the caching pool, or straight to the device's capacity accounting.
///
/// `note_stream_use` records the stream a buffer was last touched by, so
/// the pool can defer reuse until that stream has drained past the use
/// (stream-ordered reclamation). Guards without stream semantics keep the
/// default no-op.
pub(crate) trait BufferGuard: Send + Sync {
    fn note_stream_use(&self, _stream_id: u64, _timeline: &Arc<StreamTimeline>) {}
}

/// A buffer of 64-bit cells in some memory space.
///
/// Cloning is shallow (the clones share the cells), which is how zero-copy
/// handoff between the simulation and the in situ layer is expressed.
///
/// The backing allocation may be larger than the buffer (the caching pool
/// rounds requests up to a size class); `len` is the logical length every
/// public operation is bounded by.
#[derive(Clone)]
pub struct CellBuffer {
    cells: Arc<[AtomicU64]>,
    len: usize,
    space: MemSpace,
    guard: Option<Arc<dyn BufferGuard>>,
}

impl CellBuffer {
    /// Direct (pool-bypassing) constructor, used only by unit tests; real
    /// allocations go through `CellBuffer::from_parts` via the pool.
    #[cfg(test)]
    pub(crate) fn new(len: usize, space: MemSpace, guard: Option<Arc<dyn BufferGuard>>) -> Self {
        let cells: Arc<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(0)).collect();
        CellBuffer { cells, len, space, guard }
    }

    /// Wrap an existing (possibly size-class-rounded) backing allocation.
    pub(crate) fn from_parts(
        cells: Arc<[AtomicU64]>,
        len: usize,
        space: MemSpace,
        guard: Option<Arc<dyn BufferGuard>>,
    ) -> Self {
        debug_assert!(len <= cells.len(), "logical length exceeds backing allocation");
        CellBuffer { cells, len, space, guard }
    }

    /// Number of 64-bit cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record that `stream_id` touched this buffer (kernel view or copy);
    /// pooled blocks use it to order their reclamation.
    pub(crate) fn note_stream_use(&self, stream_id: u64, timeline: &Arc<StreamTimeline>) {
        if let Some(guard) = &self.guard {
            guard.note_stream_use(stream_id, timeline);
        }
    }

    /// The memory space the cells live in.
    pub fn space(&self) -> MemSpace {
        self.space
    }

    /// True when both buffers share the same cells (zero-copy aliases).
    pub fn same_allocation(&self, other: &CellBuffer) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Host-side `f64` view. Fails unless the buffer is host-resident.
    pub fn host_f64(&self) -> Result<HostF64View> {
        self.require_host()?;
        Ok(HostF64View { cells: self.cells.clone(), len: self.len, _guard: self.guard.clone() })
    }

    /// Host-side `u64` view. Fails unless the buffer is host-resident.
    pub fn host_u64(&self) -> Result<HostU64View> {
        self.require_host()?;
        Ok(HostU64View { cells: self.cells.clone(), len: self.len, _guard: self.guard.clone() })
    }

    /// Kernel-side `f64` view; `scope` proves execution on the right device.
    pub fn f64_view(&self, scope: &KernelScope) -> Result<F64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        Ok(F64View { cells: self.cells.clone(), len: self.len, _guard: self.guard.clone() })
    }

    /// Kernel-side `u64` view; `scope` proves execution on the right device.
    pub fn u64_view(&self, scope: &KernelScope) -> Result<U64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        Ok(U64View { cells: self.cells.clone(), len: self.len, _guard: self.guard.clone() })
    }

    fn note_scope_use(&self, scope: &KernelScope) {
        if let Some((stream_id, timeline)) = &scope.stream {
            self.note_stream_use(*stream_id, timeline);
        }
    }

    fn require_host(&self) -> Result<()> {
        if self.space.host_accessible() {
            Ok(())
        } else {
            Err(Error::WrongSpace { expected: MemSpace::Host, actual: self.space })
        }
    }

    fn require_device(&self, scope: &KernelScope) -> Result<()> {
        if self.space.device_accessible(scope.device) {
            Ok(())
        } else {
            Err(Error::CrossDeviceAccess { stream_device: scope.device, buffer_space: self.space })
        }
    }

    /// Raw cell copy used by the transfer engine. Not public: user code
    /// must go through stream copies.
    pub(crate) fn copy_cells_from(&self, src: &CellBuffer) -> Result<()> {
        if self.len != src.len {
            return Err(Error::CopyLengthMismatch { src: src.len, dst: self.len });
        }
        for (d, s) in self.cells.iter().take(self.len).zip(src.cells.iter()) {
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        Ok(())
    }
}

impl std::fmt::Debug for CellBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellBuffer").field("len", &self.len()).field("space", &self.space).finish()
    }
}

/// Proof that the current closure is executing as a kernel on `device`.
/// Constructed only by the stream worker.
pub struct KernelScope {
    pub(crate) device: usize,
    /// The launching stream's (id, timeline), used to tag buffers the
    /// kernel views for stream-ordered pool reclamation. `None` only in
    /// unit tests that fabricate a scope.
    pub(crate) stream: Option<(u64, Arc<StreamTimeline>)>,
}

impl KernelScope {
    /// The device this kernel is running on.
    pub fn device(&self) -> usize {
        self.device
    }
}

macro_rules! view_bounds {
    () => {
        /// Number of elements.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the view is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// The cell backing element `i`, bounds-checked against the
        /// *logical* length (the backing may be size-class padded).
        #[inline]
        fn cell(&self, i: usize) -> &AtomicU64 {
            assert!(i < self.len, "index {i} out of bounds for view of {} elements", self.len);
            &self.cells[i]
        }
    };
}

macro_rules! f64_ops {
    ($name:ident) => {
        impl $name {
            view_bounds!();

            /// Read element `i`.
            #[inline]
            pub fn get(&self, i: usize) -> f64 {
                f64::from_bits(self.cell(i).load(Ordering::Relaxed))
            }

            /// Write element `i`.
            #[inline]
            pub fn set(&self, i: usize, v: f64) {
                self.cell(i).store(v.to_bits(), Ordering::Relaxed);
            }

            /// Atomic `+=` on element `i` (CAS loop) — the `atomicAdd` the
            /// paper's binning kernel depends on.
            #[inline]
            pub fn atomic_add(&self, i: usize, v: f64) {
                let cell = self.cell(i);
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match cell.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(seen) => cur = seen,
                    }
                }
            }

            /// Atomic minimum on element `i`.
            #[inline]
            pub fn atomic_min(&self, i: usize, v: f64) {
                self.atomic_rmw(i, |cur| cur.min(v));
            }

            /// Atomic maximum on element `i`.
            #[inline]
            pub fn atomic_max(&self, i: usize, v: f64) {
                self.atomic_rmw(i, |cur| cur.max(v));
            }

            #[inline]
            fn atomic_rmw(&self, i: usize, f: impl Fn(f64) -> f64) {
                let cell = self.cell(i);
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let next = f(f64::from_bits(cur)).to_bits();
                    if next == cur {
                        return;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(seen) => cur = seen,
                    }
                }
            }

            /// Copy all elements out into a `Vec`.
            pub fn to_vec(&self) -> Vec<f64> {
                (0..self.len()).map(|i| self.get(i)).collect()
            }

            /// Fill every element with `v`.
            pub fn fill(&self, v: f64) {
                for c in self.cells.iter().take(self.len) {
                    c.store(v.to_bits(), Ordering::Relaxed);
                }
            }

            /// Copy from a slice; panics if lengths differ.
            pub fn copy_from_slice(&self, src: &[f64]) {
                assert_eq!(src.len(), self.len(), "copy_from_slice length mismatch");
                for (c, v) in self.cells.iter().zip(src) {
                    c.store(v.to_bits(), Ordering::Relaxed);
                }
            }
        }
    };
}

macro_rules! u64_ops {
    ($name:ident) => {
        impl $name {
            view_bounds!();

            /// Read element `i`.
            #[inline]
            pub fn get(&self, i: usize) -> u64 {
                self.cell(i).load(Ordering::Relaxed)
            }

            /// Write element `i`.
            #[inline]
            pub fn set(&self, i: usize, v: u64) {
                self.cell(i).store(v, Ordering::Relaxed);
            }

            /// Atomic increment, returning the previous value.
            #[inline]
            pub fn atomic_add(&self, i: usize, v: u64) -> u64 {
                self.cell(i).fetch_add(v, Ordering::Relaxed)
            }

            /// Copy all elements out into a `Vec`.
            pub fn to_vec(&self) -> Vec<u64> {
                (0..self.len()).map(|i| self.get(i)).collect()
            }
        }
    };
}

/// `f64` view of a device-resident buffer, usable only inside a kernel.
pub struct F64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    /// Keeps the allocation out of the pool while the view is alive.
    _guard: Option<Arc<dyn BufferGuard>>,
}

impl std::fmt::Debug for F64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F64View(len={})", self.len)
    }
}
f64_ops!(F64View);

/// `u64` view of a device-resident buffer, usable only inside a kernel.
pub struct U64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
}

impl std::fmt::Debug for U64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U64View(len={})", self.len)
    }
}
u64_ops!(U64View);

/// `f64` view of a host-resident buffer, usable from host code.
pub struct HostF64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
}

impl std::fmt::Debug for HostF64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostF64View(len={})", self.len)
    }
}
f64_ops!(HostF64View);

/// `u64` view of a host-resident buffer, usable from host code.
pub struct HostU64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
}

impl std::fmt::Debug for HostU64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostU64View(len={})", self.len)
    }
}
u64_ops!(HostU64View);

#[cfg(test)]
mod tests {
    use super::*;

    fn host_buf(n: usize) -> CellBuffer {
        CellBuffer::new(n, MemSpace::Host, None)
    }

    #[test]
    fn host_view_reads_and_writes() {
        let b = host_buf(4);
        let v = b.host_f64().unwrap();
        v.set(0, 1.5);
        v.set(3, -2.25);
        assert_eq!(v.get(0), 1.5);
        assert_eq!(v.get(3), -2.25);
        assert_eq!(v.to_vec(), vec![1.5, 0.0, 0.0, -2.25]);
    }

    #[test]
    fn device_buffer_refuses_host_view() {
        let b = CellBuffer::new(4, MemSpace::Device(1), None);
        let err = b.host_f64().unwrap_err();
        assert_eq!(
            err,
            Error::WrongSpace { expected: MemSpace::Host, actual: MemSpace::Device(1) }
        );
    }

    #[test]
    fn kernel_scope_gates_device_views() {
        let b = CellBuffer::new(4, MemSpace::Device(2), None);
        let right = KernelScope { device: 2, stream: None };
        let wrong = KernelScope { device: 0, stream: None };
        assert!(b.f64_view(&right).is_ok());
        assert!(matches!(b.f64_view(&wrong), Err(Error::CrossDeviceAccess { .. })));
        // Host buffers are also not implicitly visible to kernels.
        let hb = host_buf(2);
        assert!(hb.f64_view(&right).is_err());
    }

    #[test]
    fn clones_alias_the_same_cells() {
        let a = host_buf(2);
        let b = a.clone();
        a.host_f64().unwrap().set(1, 7.0);
        assert_eq!(b.host_f64().unwrap().get(1), 7.0);
        assert!(a.same_allocation(&b));
        assert!(!a.same_allocation(&host_buf(2)));
    }

    #[test]
    fn atomic_add_sums_under_contention() {
        let b = host_buf(1);
        let v = std::sync::Arc::new(b.host_f64().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = v.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        v.atomic_add(0, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.get(0), 4000.0);
    }

    #[test]
    fn atomic_min_max_converge() {
        let b = host_buf(2);
        let v = b.host_f64().unwrap();
        v.set(0, f64::INFINITY);
        v.set(1, f64::NEG_INFINITY);
        for x in [3.0, -1.0, 7.0, 0.5] {
            v.atomic_min(0, x);
            v.atomic_max(1, x);
        }
        assert_eq!(v.get(0), -1.0);
        assert_eq!(v.get(1), 7.0);
    }

    #[test]
    fn u64_counter_view() {
        let b = host_buf(3);
        let v = b.host_u64().unwrap();
        assert_eq!(v.atomic_add(1, 5), 0);
        assert_eq!(v.atomic_add(1, 2), 5);
        assert_eq!(v.to_vec(), vec![0, 7, 0]);
    }

    #[test]
    fn copy_cells_requires_equal_lengths() {
        let a = host_buf(3);
        let b = host_buf(4);
        assert!(matches!(a.copy_cells_from(&b), Err(Error::CopyLengthMismatch { .. })));
    }

    #[test]
    fn buffer_guard_runs_on_last_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct TestGuard {
            bytes: usize,
            released: Arc<AtomicUsize>,
        }
        impl BufferGuard for TestGuard {}
        impl Drop for TestGuard {
            fn drop(&mut self) {
                self.released.fetch_add(self.bytes, Ordering::SeqCst);
            }
        }

        let released = Arc::new(AtomicUsize::new(0));
        let guard: Arc<dyn BufferGuard> =
            Arc::new(TestGuard { bytes: 128, released: released.clone() });
        let a = CellBuffer::new(1, MemSpace::Host, Some(guard));
        let b = a.clone();
        let view = b.host_f64().unwrap();
        drop(a);
        drop(b);
        // A live view pins the allocation even after every buffer clone is
        // gone — a pooled block must not be recycled under a view.
        assert_eq!(released.load(Ordering::SeqCst), 0, "view still pins the allocation");
        drop(view);
        assert_eq!(released.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn fill_and_copy_from_slice() {
        let b = host_buf(3);
        let v = b.host_f64().unwrap();
        v.fill(9.0);
        assert_eq!(v.to_vec(), vec![9.0; 3]);
        v.copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec(), vec![1.0, 2.0, 3.0]);
    }
}
