//! Memory spaces, buffers, and access views.
//!
//! All simulated memory is an array of 64-bit cells (`AtomicU64`). Using
//! atomic cells makes concurrent kernels on multi-slot devices race-safe
//! and gives kernels a faithful `atomicAdd` — the operation the paper
//! singles out as the reason data binning "is not an ideal algorithm for
//! GPUs". Typed access is by bit reinterpretation (`f64`/`u64`).
//!
//! The space discipline is enforced at the API level:
//!
//! * host code can obtain [`HostF64View`]/[`HostU64View`] only for buffers
//!   whose [`MemSpace`] is `Host`;
//! * kernels obtain [`F64View`]/[`U64View`] through a [`KernelScope`],
//!   which proves the code is running on a particular device and checks
//!   the buffer is resident there.
//!
//! Moving data between spaces requires a [`crate::Stream`] copy, exactly
//! like a real accelerator.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::event::Event;
use crate::stream::StreamTimeline;

/// Where a buffer's cells live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Ordinary host memory: directly accessible by host code.
    Host,
    /// Memory of device `id`: accessible only from kernels on that device.
    Device(usize),
    /// Universally addressable (managed) memory homed on device `id`:
    /// accessible from host code and from kernels on *any* device, with
    /// migration handled by the runtime (`cudaMallocManaged`-style).
    Unified(usize),
}

impl MemSpace {
    /// The device id the memory is homed on, or `None` for host memory.
    pub fn device(&self) -> Option<usize> {
        match self {
            MemSpace::Host => None,
            MemSpace::Device(d) | MemSpace::Unified(d) => Some(*d),
        }
    }

    /// True when host code may access the cells directly.
    pub fn host_accessible(&self) -> bool {
        matches!(self, MemSpace::Host | MemSpace::Unified(_))
    }

    /// True when a kernel on `device` may access the cells directly.
    pub fn device_accessible(&self, device: usize) -> bool {
        match self {
            MemSpace::Host => false,
            MemSpace::Device(d) => *d == device,
            MemSpace::Unified(_) => true,
        }
    }
}

/// Lifecycle hook attached to an allocation. The last drop of the guard
/// (buffer clones *and* views share it) releases the allocation — back to
/// the caching pool, or straight to the device's capacity accounting.
///
/// `note_stream_use` records the stream a buffer was last touched by, so
/// the pool can defer reuse until that stream has drained past the use
/// (stream-ordered reclamation). Guards without stream semantics keep the
/// default no-op.
pub(crate) trait BufferGuard: Send + Sync {
    fn note_stream_use(&self, _stream_id: u64, _timeline: &Arc<StreamTimeline>) {}
}

/// Process-wide allocation identity allocator (ids are never reused), so
/// the snapshot layer can tell "same name, different allocation" apart
/// from "same allocation, unchanged contents".
static NEXT_ALLOC_ID: AtomicU64 = AtomicU64::new(0);

/// Counters a copy-on-write fault reports into: how many lazy fault
/// copies the write path performed on behalf of read-pinned snapshots,
/// and how many bytes they materialized. Shared by reference so the
/// memory layer stays decoupled from whoever aggregates the numbers.
#[derive(Debug, Default)]
pub struct PinStats {
    faults: AtomicU64,
    bytes: AtomicU64,
}

impl PinStats {
    /// Fresh, zeroed counters behind an `Arc` (the shape `cow_pinned` takes).
    pub fn new_shared() -> Arc<PinStats> {
        Arc::new(PinStats::default())
    }

    /// Number of copy-on-write faults (lazy pre-write copies) performed.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Bytes materialized by those fault copies.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// What a registered pin protects.
enum PinKind {
    /// A copy-on-write read-pin: readers of the pinned clone see the
    /// allocation's contents as of pin time. The first post-pin write
    /// materializes those contents into `resolved` (the CoW fault).
    Share { resolved: Mutex<Option<Arc<[AtomicU64]>>>, stats: Arc<PinStats> },
    /// An in-flight asynchronous copy reading this allocation: a writer
    /// must wait for `event` (recorded after the copy on its stream)
    /// before mutating the cells the copy is still reading.
    Fence { event: Event },
}

/// One pin registered on an allocation. Clones of the pinned buffer hold
/// this `Arc`; the allocation's registry holds only a `Weak`, so a pin
/// dies (and costs writers nothing) once every holder has dropped.
struct PinSlot {
    /// Cleared by `release_pin` when the holder promises it will not read
    /// through the pin again (e.g. an analysis that has ingested its own
    /// copy of the data); a deactivated pin never triggers a fault copy.
    active: AtomicBool,
    kind: PinKind,
}

/// Per-allocation tracking state shared by every clone of a buffer (it
/// travels with [`CellBuffer::clone`], surviving re-adoption into new
/// wrapper objects): a monotonically increasing write generation, the
/// count of live read-only views, and the registered read-pins.
struct Track {
    id: u64,
    generation: AtomicU64,
    readers: AtomicU64,
    pins: Mutex<Vec<Weak<PinSlot>>>,
    /// Serializes [`CellBuffer::begin_write`] per allocation: pin
    /// resolution (fault copies, fence waits, reader drains) must look
    /// atomic to other writers, or a second writer could observe the
    /// drained registry and mutate cells a fence still protects.
    write_serial: Mutex<()>,
}

impl Track {
    fn fresh() -> Arc<Track> {
        Arc::new(Track {
            id: NEXT_ALLOC_ID.fetch_add(1, Ordering::Relaxed),
            generation: AtomicU64::new(0),
            readers: AtomicU64::new(0),
            pins: Mutex::new(Vec::new()),
            write_serial: Mutex::new(()),
        })
    }
}

/// RAII registration of a live read-only view: a writer faulting on a
/// still-pinned allocation drains registered readers before mutating, so
/// a reader mid-iteration never observes post-pin writes.
pub(crate) struct ReadGuard {
    track: Arc<Track>,
}

impl ReadGuard {
    fn register(track: &Arc<Track>) -> ReadGuard {
        track.readers.fetch_add(1, Ordering::AcqRel);
        ReadGuard { track: track.clone() }
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.track.readers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Keeps a [`CellBuffer::copy_fence`] registration alive: while held, a
/// writer of the fenced allocation waits for the fence's event before
/// mutating. Dropping the fence (e.g. with the snapshot that owns the
/// copy's destination) retires the protection.
pub struct CopyFence {
    _slot: Arc<PinSlot>,
}

/// A buffer of 64-bit cells in some memory space.
///
/// Cloning is shallow (the clones share the cells), which is how zero-copy
/// handoff between the simulation and the in situ layer is expressed.
///
/// The backing allocation may be larger than the buffer (the caching pool
/// rounds requests up to a size class); `len` is the logical length every
/// public operation is bounded by.
#[derive(Clone)]
pub struct CellBuffer {
    cells: Arc<[AtomicU64]>,
    len: usize,
    space: MemSpace,
    guard: Option<Arc<dyn BufferGuard>>,
    /// Write-generation / read-pin state, shared by all clones.
    track: Arc<Track>,
    /// `Some` on clones produced by [`CellBuffer::cow_pinned`]: reads
    /// through this clone route to the pin's resolved copy once the live
    /// cells have been written.
    pin: Option<Arc<PinSlot>>,
}

impl CellBuffer {
    /// Direct (pool-bypassing) constructor, used only by unit tests; real
    /// allocations go through `CellBuffer::from_parts` via the pool.
    #[cfg(test)]
    pub(crate) fn new(len: usize, space: MemSpace, guard: Option<Arc<dyn BufferGuard>>) -> Self {
        let cells: Arc<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(0)).collect();
        CellBuffer { cells, len, space, guard, track: Track::fresh(), pin: None }
    }

    /// Wrap an existing (possibly size-class-rounded) backing allocation.
    pub(crate) fn from_parts(
        cells: Arc<[AtomicU64]>,
        len: usize,
        space: MemSpace,
        guard: Option<Arc<dyn BufferGuard>>,
    ) -> Self {
        debug_assert!(len <= cells.len(), "logical length exceeds backing allocation");
        CellBuffer { cells, len, space, guard, track: Track::fresh(), pin: None }
    }

    /// Number of 64-bit cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record that `stream_id` touched this buffer (kernel view or copy);
    /// pooled blocks use it to order their reclamation.
    pub(crate) fn note_stream_use(&self, stream_id: u64, timeline: &Arc<StreamTimeline>) {
        if let Some(guard) = &self.guard {
            guard.note_stream_use(stream_id, timeline);
        }
    }

    /// The memory space the cells live in.
    pub fn space(&self) -> MemSpace {
        self.space
    }

    /// True when both buffers share the same cells (zero-copy aliases).
    pub fn same_allocation(&self, other: &CellBuffer) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Process-unique identity of the backing allocation (never reused;
    /// pooled blocks get a fresh id each time they are handed out).
    pub fn alloc_id(&self) -> u64 {
        self.track.id
    }

    /// The allocation's write generation: bumped by every write-intent
    /// view acquisition and by every stream copy landing in it. Clones
    /// share the counter; it survives re-adoption into new wrappers.
    pub fn generation(&self) -> u64 {
        self.track.generation.load(Ordering::Acquire)
    }

    /// A zero-copy clone pinned to the allocation's *current* contents.
    ///
    /// Reads through the returned clone (and its clones — access views,
    /// kernel captures) see the data as of pin time: if a writer touches
    /// the live cells while the pin is held, the write path first
    /// materializes a pre-write copy (the CoW fault, reported into
    /// `stats`) and the pinned clone's reads route to it from then on.
    /// The pin dies with the last clone holding it, or earlier via
    /// [`CellBuffer::release_pin`].
    pub fn cow_pinned(&self, stats: &Arc<PinStats>) -> CellBuffer {
        let slot = Arc::new(PinSlot {
            active: AtomicBool::new(true),
            kind: PinKind::Share { resolved: Mutex::new(None), stats: stats.clone() },
        });
        self.track.pins.lock().push(Arc::downgrade(&slot));
        CellBuffer { pin: Some(slot), ..self.clone() }
    }

    /// Deactivate this clone's read-pin: the holder promises not to read
    /// through it again, so later writes skip the fault copy. No-op on
    /// unpinned buffers.
    pub fn release_pin(&self) {
        if let Some(pin) = &self.pin {
            pin.active.store(false, Ordering::Release);
        }
    }

    /// True when this clone carries a live (unresolved, active) read-pin —
    /// i.e. its reads still alias the live cells. Diagnostic.
    pub fn is_cow_pinned(&self) -> bool {
        match &self.pin {
            Some(pin) => {
                pin.active.load(Ordering::Acquire)
                    && matches!(&pin.kind,
                        PinKind::Share { resolved, .. } if resolved.lock().is_none())
            }
            None => false,
        }
    }

    /// Register an in-flight-copy fence: while the returned handle is
    /// held and `event` unsignaled, a writer of this allocation waits for
    /// the event before mutating — protecting an asynchronous copy that
    /// is still reading these cells on another stream.
    pub fn copy_fence(&self, event: &Event) -> CopyFence {
        let slot = Arc::new(PinSlot {
            active: AtomicBool::new(true),
            kind: PinKind::Fence { event: event.clone() },
        });
        self.track.pins.lock().push(Arc::downgrade(&slot));
        CopyFence { _slot: slot }
    }

    /// The cells a *read* of this clone must target, plus a reader
    /// registration when the read aliases live, still-pinned cells.
    fn read_cells(&self) -> (Arc<[AtomicU64]>, Option<ReadGuard>) {
        if let Some(pin) = &self.pin {
            if let PinKind::Share { resolved, .. } = &pin.kind {
                // Register *before* checking resolution: a faulting
                // writer publishes the holder under this same mutex
                // before draining readers, so it either sees this
                // registration (and waits) or this check sees the
                // holder — never a live read of post-pin writes.
                let guard = ReadGuard::register(&self.track);
                let snapshot = resolved.lock().clone();
                if let Some(cells) = snapshot {
                    // Faulted: the pre-write copy is the pinned contents.
                    return (cells, None);
                }
                return (self.cells.clone(), Some(guard));
            }
        }
        (self.cells.clone(), None)
    }

    /// Write-intent entry point: bump the generation and resolve every
    /// live pin — share-pins get a lazy pre-write copy (the CoW fault),
    /// fences are waited for — then drain registered readers so nobody
    /// mid-read observes the caller's upcoming writes.
    ///
    /// Callers must not hold a read-only view of this same allocation
    /// while acquiring a write view (the drain would wait on the caller).
    pub(crate) fn begin_write(&self) {
        self.track.generation.fetch_add(1, Ordering::Release);
        // One writer resolves pins at a time, and the registry drain is
        // only decisive while this lock is held: a concurrent writer
        // must not see the emptied registry and mutate while the first
        // is still waiting on a fence event or materializing the fault
        // copy (it would tear the async copy / fault holder).
        let _serial = self.track.write_serial.lock();
        let pins: Vec<Weak<PinSlot>> = {
            let mut registry = self.track.pins.lock();
            if registry.is_empty() {
                return;
            }
            std::mem::take(&mut *registry)
        };
        let mut holder: Option<Arc<[AtomicU64]>> = None;
        let mut resolved_any = false;
        for weak in pins {
            let Some(pin) = weak.upgrade() else { continue };
            if !pin.active.load(Ordering::Acquire) {
                continue;
            }
            match &pin.kind {
                PinKind::Fence { event } => {
                    if !event.is_signaled() {
                        event.wait();
                    }
                }
                PinKind::Share { resolved, stats } => {
                    let cells = holder.get_or_insert_with(|| {
                        // The fault: materialize the pre-write contents
                        // once; every outstanding pin shares the copy
                        // (they all pinned the same post-last-write
                        // state). Allocated raw — never pooled — because
                        // faults fire on stream workers where a pool
                        // round-trip could self-deadlock.
                        stats.faults.fetch_add(1, Ordering::Relaxed);
                        stats.bytes.fetch_add(self.len as u64 * 8, Ordering::Relaxed);
                        self.cells
                            .iter()
                            .take(self.len)
                            .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                            .collect()
                    });
                    *resolved.lock() = Some(cells.clone());
                    resolved_any = true;
                }
            }
        }
        if resolved_any {
            // Stragglers that acquired a live-cell read view before the
            // resolution above finish reading pre-write data first.
            while self.track.readers.load(Ordering::Acquire) > 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Host-side `f64` view with write intent (bumps the generation and
    /// resolves read-pins). Fails unless the buffer is host-resident.
    pub fn host_f64(&self) -> Result<HostF64View> {
        self.require_host()?;
        self.begin_write();
        Ok(HostF64View {
            cells: self.cells.clone(),
            len: self.len,
            _guard: self.guard.clone(),
            _read: None,
        })
    }

    /// Host-side `u64` view with write intent. Fails unless host-resident.
    pub fn host_u64(&self) -> Result<HostU64View> {
        self.require_host()?;
        self.begin_write();
        Ok(HostU64View {
            cells: self.cells.clone(),
            len: self.len,
            _guard: self.guard.clone(),
            _read: None,
        })
    }

    /// Read-only host-side `f64` view: does not advance the generation,
    /// and on a pinned clone routes to the pinned (pre-write) contents.
    pub fn host_f64_ro(&self) -> Result<HostF64View> {
        self.require_host()?;
        let (cells, read) = self.read_cells();
        Ok(HostF64View { cells, len: self.len, _guard: self.guard.clone(), _read: read })
    }

    /// Read-only host-side `u64` view (see [`CellBuffer::host_f64_ro`]).
    pub fn host_u64_ro(&self) -> Result<HostU64View> {
        self.require_host()?;
        let (cells, read) = self.read_cells();
        Ok(HostU64View { cells, len: self.len, _guard: self.guard.clone(), _read: read })
    }

    /// Kernel-side `f64` view with write intent; `scope` proves execution
    /// on the right device.
    pub fn f64_view(&self, scope: &KernelScope) -> Result<F64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        self.begin_write();
        Ok(F64View {
            cells: self.cells.clone(),
            len: self.len,
            _guard: self.guard.clone(),
            _read: None,
        })
    }

    /// Kernel-side `u64` view with write intent; `scope` proves execution
    /// on the right device.
    pub fn u64_view(&self, scope: &KernelScope) -> Result<U64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        self.begin_write();
        Ok(U64View {
            cells: self.cells.clone(),
            len: self.len,
            _guard: self.guard.clone(),
            _read: None,
        })
    }

    /// Read-only kernel-side `f64` view: no generation bump; on a pinned
    /// clone the view targets the pinned (pre-write) contents.
    pub fn f64_view_ro(&self, scope: &KernelScope) -> Result<F64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        let (cells, read) = self.read_cells();
        Ok(F64View { cells, len: self.len, _guard: self.guard.clone(), _read: read })
    }

    /// Read-only kernel-side `u64` view (see [`CellBuffer::f64_view_ro`]).
    pub fn u64_view_ro(&self, scope: &KernelScope) -> Result<U64View> {
        self.require_device(scope)?;
        self.note_scope_use(scope);
        let (cells, read) = self.read_cells();
        Ok(U64View { cells, len: self.len, _guard: self.guard.clone(), _read: read })
    }

    fn note_scope_use(&self, scope: &KernelScope) {
        if let Some((stream_id, timeline)) = &scope.stream {
            self.note_stream_use(*stream_id, timeline);
        }
    }

    fn require_host(&self) -> Result<()> {
        if self.space.host_accessible() {
            Ok(())
        } else {
            Err(Error::WrongSpace { expected: MemSpace::Host, actual: self.space })
        }
    }

    fn require_device(&self, scope: &KernelScope) -> Result<()> {
        if self.space.device_accessible(scope.device) {
            Ok(())
        } else {
            Err(Error::CrossDeviceAccess { stream_device: scope.device, buffer_space: self.space })
        }
    }

    /// Raw cell copy used by the transfer engine. Not public: user code
    /// must go through stream copies.
    ///
    /// Write-routed on the destination (generation bump, pin resolution)
    /// and read-routed on the source (a pinned source clone copies its
    /// pinned contents), so stream copies participate in CoW tracking.
    pub(crate) fn copy_cells_from(&self, src: &CellBuffer) -> Result<()> {
        if self.len != src.len {
            return Err(Error::CopyLengthMismatch { src: src.len, dst: self.len });
        }
        // Destination first: if src aliases dst (same allocation), the
        // pin resolves here and the read below routes to the holder.
        self.begin_write();
        let (src_cells, _read) = src.read_cells();
        for (d, s) in self.cells.iter().take(self.len).zip(src_cells.iter()) {
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        Ok(())
    }
}

impl std::fmt::Debug for CellBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellBuffer").field("len", &self.len()).field("space", &self.space).finish()
    }
}

/// Proof that the current closure is executing as a kernel on `device`.
/// Constructed only by the stream worker.
pub struct KernelScope {
    pub(crate) device: usize,
    /// The launching stream's (id, timeline), used to tag buffers the
    /// kernel views for stream-ordered pool reclamation. `None` only in
    /// unit tests that fabricate a scope.
    pub(crate) stream: Option<(u64, Arc<StreamTimeline>)>,
}

impl KernelScope {
    /// The device this kernel is running on.
    pub fn device(&self) -> usize {
        self.device
    }
}

macro_rules! view_bounds {
    () => {
        /// Number of elements.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the view is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// The cell backing element `i`, bounds-checked against the
        /// *logical* length (the backing may be size-class padded).
        #[inline]
        fn cell(&self, i: usize) -> &AtomicU64 {
            assert!(i < self.len, "index {i} out of bounds for view of {} elements", self.len);
            &self.cells[i]
        }
    };
}

macro_rules! f64_ops {
    ($name:ident) => {
        impl $name {
            view_bounds!();

            /// Read element `i`.
            #[inline]
            pub fn get(&self, i: usize) -> f64 {
                f64::from_bits(self.cell(i).load(Ordering::Relaxed))
            }

            /// Write element `i`.
            #[inline]
            pub fn set(&self, i: usize, v: f64) {
                self.cell(i).store(v.to_bits(), Ordering::Relaxed);
            }

            /// Atomic `+=` on element `i` (CAS loop) — the `atomicAdd` the
            /// paper's binning kernel depends on.
            #[inline]
            pub fn atomic_add(&self, i: usize, v: f64) {
                let cell = self.cell(i);
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match cell.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(seen) => cur = seen,
                    }
                }
            }

            /// Atomic minimum on element `i`.
            #[inline]
            pub fn atomic_min(&self, i: usize, v: f64) {
                self.atomic_rmw(i, |cur| cur.min(v));
            }

            /// Atomic maximum on element `i`.
            #[inline]
            pub fn atomic_max(&self, i: usize, v: f64) {
                self.atomic_rmw(i, |cur| cur.max(v));
            }

            #[inline]
            fn atomic_rmw(&self, i: usize, f: impl Fn(f64) -> f64) {
                let cell = self.cell(i);
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let next = f(f64::from_bits(cur)).to_bits();
                    if next == cur {
                        return;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(seen) => cur = seen,
                    }
                }
            }

            /// Copy all elements out into a `Vec`.
            pub fn to_vec(&self) -> Vec<f64> {
                (0..self.len()).map(|i| self.get(i)).collect()
            }

            /// Fill every element with `v`.
            pub fn fill(&self, v: f64) {
                for c in self.cells.iter().take(self.len) {
                    c.store(v.to_bits(), Ordering::Relaxed);
                }
            }

            /// Copy from a slice; panics if lengths differ.
            pub fn copy_from_slice(&self, src: &[f64]) {
                assert_eq!(src.len(), self.len(), "copy_from_slice length mismatch");
                for (c, v) in self.cells.iter().zip(src) {
                    c.store(v.to_bits(), Ordering::Relaxed);
                }
            }
        }
    };
}

macro_rules! u64_ops {
    ($name:ident) => {
        impl $name {
            view_bounds!();

            /// Read element `i`.
            #[inline]
            pub fn get(&self, i: usize) -> u64 {
                self.cell(i).load(Ordering::Relaxed)
            }

            /// Write element `i`.
            #[inline]
            pub fn set(&self, i: usize, v: u64) {
                self.cell(i).store(v, Ordering::Relaxed);
            }

            /// Atomic increment, returning the previous value.
            #[inline]
            pub fn atomic_add(&self, i: usize, v: u64) -> u64 {
                self.cell(i).fetch_add(v, Ordering::Relaxed)
            }

            /// Copy all elements out into a `Vec`.
            pub fn to_vec(&self) -> Vec<u64> {
                (0..self.len()).map(|i| self.get(i)).collect()
            }
        }
    };
}

/// `f64` view of a device-resident buffer, usable only inside a kernel.
pub struct F64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    /// Keeps the allocation out of the pool while the view is alive.
    _guard: Option<Arc<dyn BufferGuard>>,
    /// `Some` on read-only views of a live-pinned clone: a faulting
    /// writer drains this registration before mutating.
    _read: Option<ReadGuard>,
}

impl std::fmt::Debug for F64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F64View(len={})", self.len)
    }
}
f64_ops!(F64View);

/// `u64` view of a device-resident buffer, usable only inside a kernel.
pub struct U64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
    _read: Option<ReadGuard>,
}

impl std::fmt::Debug for U64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U64View(len={})", self.len)
    }
}
u64_ops!(U64View);

/// `f64` view of a host-resident buffer, usable from host code.
pub struct HostF64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
    _read: Option<ReadGuard>,
}

impl std::fmt::Debug for HostF64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostF64View(len={})", self.len)
    }
}
f64_ops!(HostF64View);

/// `u64` view of a host-resident buffer, usable from host code.
pub struct HostU64View {
    cells: Arc<[AtomicU64]>,
    len: usize,
    _guard: Option<Arc<dyn BufferGuard>>,
    _read: Option<ReadGuard>,
}

impl std::fmt::Debug for HostU64View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostU64View(len={})", self.len)
    }
}
u64_ops!(HostU64View);

#[cfg(test)]
mod tests {
    use super::*;

    fn host_buf(n: usize) -> CellBuffer {
        CellBuffer::new(n, MemSpace::Host, None)
    }

    #[test]
    fn host_view_reads_and_writes() {
        let b = host_buf(4);
        let v = b.host_f64().unwrap();
        v.set(0, 1.5);
        v.set(3, -2.25);
        assert_eq!(v.get(0), 1.5);
        assert_eq!(v.get(3), -2.25);
        assert_eq!(v.to_vec(), vec![1.5, 0.0, 0.0, -2.25]);
    }

    #[test]
    fn device_buffer_refuses_host_view() {
        let b = CellBuffer::new(4, MemSpace::Device(1), None);
        let err = b.host_f64().unwrap_err();
        assert_eq!(
            err,
            Error::WrongSpace { expected: MemSpace::Host, actual: MemSpace::Device(1) }
        );
    }

    #[test]
    fn kernel_scope_gates_device_views() {
        let b = CellBuffer::new(4, MemSpace::Device(2), None);
        let right = KernelScope { device: 2, stream: None };
        let wrong = KernelScope { device: 0, stream: None };
        assert!(b.f64_view(&right).is_ok());
        assert!(matches!(b.f64_view(&wrong), Err(Error::CrossDeviceAccess { .. })));
        // Host buffers are also not implicitly visible to kernels.
        let hb = host_buf(2);
        assert!(hb.f64_view(&right).is_err());
    }

    #[test]
    fn clones_alias_the_same_cells() {
        let a = host_buf(2);
        let b = a.clone();
        a.host_f64().unwrap().set(1, 7.0);
        assert_eq!(b.host_f64().unwrap().get(1), 7.0);
        assert!(a.same_allocation(&b));
        assert!(!a.same_allocation(&host_buf(2)));
    }

    #[test]
    fn atomic_add_sums_under_contention() {
        let b = host_buf(1);
        let v = std::sync::Arc::new(b.host_f64().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = v.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        v.atomic_add(0, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.get(0), 4000.0);
    }

    #[test]
    fn atomic_min_max_converge() {
        let b = host_buf(2);
        let v = b.host_f64().unwrap();
        v.set(0, f64::INFINITY);
        v.set(1, f64::NEG_INFINITY);
        for x in [3.0, -1.0, 7.0, 0.5] {
            v.atomic_min(0, x);
            v.atomic_max(1, x);
        }
        assert_eq!(v.get(0), -1.0);
        assert_eq!(v.get(1), 7.0);
    }

    #[test]
    fn u64_counter_view() {
        let b = host_buf(3);
        let v = b.host_u64().unwrap();
        assert_eq!(v.atomic_add(1, 5), 0);
        assert_eq!(v.atomic_add(1, 2), 5);
        assert_eq!(v.to_vec(), vec![0, 7, 0]);
    }

    #[test]
    fn copy_cells_requires_equal_lengths() {
        let a = host_buf(3);
        let b = host_buf(4);
        assert!(matches!(a.copy_cells_from(&b), Err(Error::CopyLengthMismatch { .. })));
    }

    #[test]
    fn buffer_guard_runs_on_last_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct TestGuard {
            bytes: usize,
            released: Arc<AtomicUsize>,
        }
        impl BufferGuard for TestGuard {}
        impl Drop for TestGuard {
            fn drop(&mut self) {
                self.released.fetch_add(self.bytes, Ordering::SeqCst);
            }
        }

        let released = Arc::new(AtomicUsize::new(0));
        let guard: Arc<dyn BufferGuard> =
            Arc::new(TestGuard { bytes: 128, released: released.clone() });
        let a = CellBuffer::new(1, MemSpace::Host, Some(guard));
        let b = a.clone();
        let view = b.host_f64().unwrap();
        drop(a);
        drop(b);
        // A live view pins the allocation even after every buffer clone is
        // gone — a pooled block must not be recycled under a view.
        assert_eq!(released.load(Ordering::SeqCst), 0, "view still pins the allocation");
        drop(view);
        assert_eq!(released.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn fill_and_copy_from_slice() {
        let b = host_buf(3);
        let v = b.host_f64().unwrap();
        v.fill(9.0);
        assert_eq!(v.to_vec(), vec![9.0; 3]);
        v.copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn generation_bumps_on_write_intent_only() {
        let b = host_buf(2);
        let g0 = b.generation();
        let _ = b.host_f64_ro().unwrap();
        let _ = b.host_u64_ro().unwrap();
        assert_eq!(b.generation(), g0, "read-only views must not advance the generation");
        let _ = b.host_f64().unwrap();
        assert_eq!(b.generation(), g0 + 1);
        let _ = b.host_u64().unwrap();
        assert_eq!(b.generation(), g0 + 2);
        // Clones share the counter.
        let c = b.clone();
        let _ = c.host_f64().unwrap();
        assert_eq!(b.generation(), g0 + 3);
    }

    #[test]
    fn generation_tracks_stream_copy_destination() {
        let a = host_buf(2);
        let b = host_buf(2);
        a.host_f64().unwrap().copy_from_slice(&[1.0, 2.0]);
        let (ga, gb) = (a.generation(), b.generation());
        b.copy_cells_from(&a).unwrap();
        assert_eq!(a.generation(), ga, "copy source is a read");
        assert_eq!(b.generation(), gb + 1, "copy destination is a write");
        assert_eq!(b.host_f64_ro().unwrap().to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn alloc_ids_are_unique_and_shared_by_clones() {
        let a = host_buf(1);
        let b = host_buf(1);
        assert_ne!(a.alloc_id(), b.alloc_id());
        assert_eq!(a.alloc_id(), a.clone().alloc_id());
    }

    #[test]
    fn cow_pin_preserves_pre_write_contents() {
        let b = host_buf(3);
        b.host_f64().unwrap().copy_from_slice(&[1.0, 2.0, 3.0]);
        let stats = PinStats::new_shared();
        let pinned = b.cow_pinned(&stats);
        assert!(pinned.is_cow_pinned());
        assert!(b.same_allocation(&pinned), "pin is zero-copy until a write lands");

        // Solver writes through the live buffer → fault copies first.
        b.host_f64().unwrap().copy_from_slice(&[9.0, 9.0, 9.0]);
        assert_eq!(stats.faults(), 1);
        assert_eq!(stats.bytes(), 3 * 8);
        assert_eq!(pinned.host_f64_ro().unwrap().to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(b.host_f64_ro().unwrap().to_vec(), vec![9.0, 9.0, 9.0]);

        // A second write does not fault again (pin already resolved).
        b.host_f64().unwrap().set(0, 5.0);
        assert_eq!(stats.faults(), 1);
        assert_eq!(pinned.host_f64_ro().unwrap().get(0), 1.0);
    }

    #[test]
    fn multiple_pins_share_one_fault_copy() {
        let b = host_buf(4);
        b.host_f64().unwrap().fill(2.0);
        let stats = PinStats::new_shared();
        let p1 = b.cow_pinned(&stats);
        let p2 = b.cow_pinned(&stats);
        b.host_f64().unwrap().fill(8.0);
        assert_eq!(stats.faults(), 1, "both pins hold the same pre-write state");
        assert_eq!(stats.bytes(), 4 * 8);
        assert_eq!(p1.host_f64_ro().unwrap().to_vec(), vec![2.0; 4]);
        assert!(p1
            .host_f64_ro()
            .unwrap()
            .cells
            .iter()
            .zip(p2.host_f64_ro().unwrap().cells.iter())
            .all(|(a, b)| std::ptr::eq(a, b)));
    }

    #[test]
    fn released_and_dropped_pins_cost_nothing() {
        let b = host_buf(2);
        b.host_f64().unwrap().fill(1.0);
        let stats = PinStats::new_shared();
        let released = b.cow_pinned(&stats);
        released.release_pin();
        assert!(!released.is_cow_pinned());
        let dropped = b.cow_pinned(&stats);
        drop(dropped);
        b.host_f64().unwrap().fill(7.0);
        assert_eq!(stats.faults(), 0, "no live active pin → no fault copy");
        // A released pin's reads follow the live cells.
        assert_eq!(released.host_f64_ro().unwrap().to_vec(), vec![7.0; 2]);
    }

    #[test]
    fn pinned_source_copy_reads_pinned_contents() {
        let src = host_buf(2);
        src.host_f64().unwrap().copy_from_slice(&[1.0, 2.0]);
        let stats = PinStats::new_shared();
        let pinned = src.cow_pinned(&stats);
        src.host_f64().unwrap().copy_from_slice(&[8.0, 8.0]);
        let dst = host_buf(2);
        dst.copy_cells_from(&pinned).unwrap();
        assert_eq!(dst.host_f64_ro().unwrap().to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn concurrent_writers_both_wait_on_one_fence() {
        // The first writer drains the pin registry and blocks on the
        // fence event; a second writer arriving meanwhile must not slip
        // past the (now empty) registry and mutate while the fence is
        // still unsignaled.
        let b = Arc::new(host_buf(1));
        let event = Event::new();
        let fence = b.copy_fence(&event);
        let wrote = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let (b, wrote) = (b.clone(), wrote.clone());
                std::thread::spawn(move || {
                    b.host_f64().unwrap().set(0, 1.0);
                    wrote.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(wrote.load(Ordering::SeqCst), 0, "no writer may pass the unsignaled fence");
        event.signal();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(wrote.load(Ordering::SeqCst), 2);
        drop(fence);
    }

    #[test]
    fn copy_fence_blocks_writer_until_signaled() {
        let b = Arc::new(host_buf(1));
        let event = Event::new();
        let fence = b.copy_fence(&event);
        let wrote = Arc::new(AtomicBool::new(false));
        let writer = {
            let (b, wrote) = (b.clone(), wrote.clone());
            std::thread::spawn(move || {
                b.host_f64().unwrap().set(0, 1.0);
                wrote.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!wrote.load(Ordering::SeqCst), "writer must wait for the fence event");
        event.signal();
        writer.join().unwrap();
        assert!(wrote.load(Ordering::SeqCst));
        drop(fence);
        // A signaled/retired fence no longer delays writers.
        b.host_f64().unwrap().set(0, 2.0);
    }

    #[test]
    fn dropped_fence_does_not_block() {
        let b = host_buf(1);
        let event = Event::new(); // never signaled
        drop(b.copy_fence(&event));
        b.host_f64().unwrap().set(0, 3.0); // must not hang
        assert_eq!(b.host_f64_ro().unwrap().get(0), 3.0);
    }

    #[test]
    fn fault_waits_for_registered_reader() {
        let b = host_buf(1);
        b.host_f64().unwrap().set(0, 1.0);
        let stats = PinStats::new_shared();
        let pinned = Arc::new(b.cow_pinned(&stats));
        // Reader holds a live-cell view through the unresolved pin.
        let view = pinned.host_f64_ro().unwrap();
        let started = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let (b, started, done) = (b.clone(), started.clone(), done.clone());
            std::thread::spawn(move || {
                started.store(true, Ordering::SeqCst);
                b.host_f64().unwrap().set(0, 9.0);
                done.store(true, Ordering::SeqCst);
            })
        };
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!done.load(Ordering::SeqCst), "writer must drain the registered reader");
        assert_eq!(view.get(0), 1.0, "reader still sees pre-write data");
        drop(view);
        writer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        // Post-fault reads through the pin route to the holder copy.
        assert_eq!(pinned.host_f64_ro().unwrap().get(0), 1.0);
        assert_eq!(b.host_f64_ro().unwrap().get(0), 9.0);
    }
}
