//! The simulated node: devices + host + shared counters.

use std::sync::Arc;

use crate::device::Device;
use crate::error::{Error, Result};
use crate::fault::FaultInjector;
use crate::host::HostExec;
use crate::memory::{CellBuffer, MemSpace};
use crate::pool::{MemoryPool, PoolConfig, PoolStats};
use crate::stats::{NodeStats, StatsSnapshot};
use crate::timemodel::{DeviceParams, HostParams, LinkParams};

/// Configuration of a simulated heterogeneous node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Number of accelerators (Perlmutter GPU nodes have 4).
    pub num_devices: usize,
    /// Modeled parameters shared by all devices.
    pub device: DeviceParams,
    /// Modeled host CPU parameters.
    pub host: HostParams,
    /// Modeled interconnect parameters.
    pub link: LinkParams,
    /// Global multiplier on all modeled durations. `0.0` disables the time
    /// model entirely (tests); benchmarks use a value that makes modeled
    /// time dominate real closure time.
    pub time_scale: f64,
    /// Caching memory-pool configuration (enabled by default).
    pub pool: PoolConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            num_devices: 4,
            device: DeviceParams::default(),
            host: HostParams::default(),
            link: LinkParams::default(),
            time_scale: 1.0,
            pool: PoolConfig::default(),
        }
    }
}

impl NodeConfig {
    /// A configuration for fast unit tests: `n` devices, no modeled time.
    pub fn fast_test(n: usize) -> Self {
        NodeConfig { num_devices: n, time_scale: 0.0, ..NodeConfig::default() }
    }
}

/// A simulated heterogeneous compute node.
///
/// Shared by every rank that "runs on" the node — in this reproduction,
/// MPI ranks are threads and a node is an `Arc<SimNode>` they all hold.
pub struct SimNode {
    devices: Vec<Device>,
    host: HostExec,
    stats: Arc<NodeStats>,
    pool: Arc<MemoryPool>,
    fault: Arc<FaultInjector>,
    config: NodeConfig,
}

impl SimNode {
    /// Build a node from `config`.
    ///
    /// # Panics
    /// Panics if `config.num_devices == 0`; the paper's placements always
    /// assume at least one accelerator.
    pub fn new(config: NodeConfig) -> Arc<SimNode> {
        assert!(config.num_devices > 0, "a heterogeneous node needs at least one device");
        let stats = Arc::new(NodeStats::default());
        let fault = FaultInjector::new();
        let pool = MemoryPool::new(config.pool, fault.clone());
        let devices = (0..config.num_devices)
            .map(|id| {
                Device::new(
                    id,
                    config.device,
                    stats.clone(),
                    pool.clone(),
                    fault.clone(),
                    config.link,
                    config.time_scale,
                )
            })
            .collect();
        let host = HostExec::new(config.host, stats.clone(), config.time_scale);
        Arc::new(SimNode { devices, host, stats, pool, fault, config })
    }

    /// Number of devices on the node (the paper's `n_a`).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Access device `id`.
    pub fn device(&self, id: usize) -> Result<&Device> {
        self.devices
            .get(id)
            .ok_or(Error::NoSuchDevice { device: id, available: self.devices.len() })
    }

    /// The host executor.
    pub fn host(&self) -> &HostExec {
        &self.host
    }

    /// Allocate `len` `f64` elements in host memory (pooled, uncapped).
    ///
    /// # Panics
    /// Host memory is uncapped, so this only fails — and then panics —
    /// when fault injection fires on an armed thread. Paths that run
    /// under injection (the in situ engines) use
    /// [`SimNode::try_host_alloc_f64`] and propagate the error.
    pub fn host_alloc_f64(&self, len: usize) -> CellBuffer {
        self.try_host_alloc_f64(len).expect("host allocation failed (injected fault?)")
    }

    /// Fallible host allocation: host memory is uncapped, but the
    /// [`fault::POOL_ALLOC`](crate::fault::site::POOL_ALLOC) injection
    /// site can fail it on armed threads.
    pub fn try_host_alloc_f64(&self, len: usize) -> Result<CellBuffer> {
        let (buf, _raw) = self.pool.alloc(MemSpace::Host, len, None)?;
        Ok(buf)
    }

    /// The node's fault injector (disabled unless configured).
    pub fn fault(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// The node-wide caching memory pool (stats, trim, reconfigure).
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// Pool counters summed over every memory space on the node.
    pub fn pool_stats_total(&self) -> PoolStats {
        self.pool.stats_total()
    }

    /// Pool counters of one memory space.
    pub fn pool_stats(&self, space: MemSpace) -> PoolStats {
        self.pool.stats(space)
    }

    /// Snapshot the node-wide operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The configuration the node was built with.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::timemodel::KernelCost;
    use std::time::{Duration, Instant};

    fn test_node(n: usize) -> Arc<SimNode> {
        SimNode::new(NodeConfig::fast_test(n))
    }

    #[test]
    fn node_exposes_devices() {
        let node = test_node(3);
        assert_eq!(node.num_devices(), 3);
        assert_eq!(node.device(2).unwrap().id(), 2);
        assert!(matches!(node.device(3), Err(Error::NoSuchDevice { device: 3, available: 3 })));
    }

    #[test]
    fn kernel_reads_and_writes_device_memory() {
        let node = test_node(1);
        let dev = node.device(0).unwrap();
        let buf = dev.alloc_f64(8).unwrap();
        let stream = dev.create_stream();
        let b = buf.clone();
        stream
            .launch("square", KernelCost::ZERO, move |scope| {
                let v = b.f64_view(scope)?;
                for i in 0..v.len() {
                    v.set(i, (i * i) as f64);
                }
                Ok(())
            })
            .unwrap();
        stream.synchronize().unwrap();
        let host = node.host_alloc_f64(8);
        stream.copy(&buf, &host).unwrap();
        stream.synchronize().unwrap();
        assert_eq!(host.host_f64().unwrap().to_vec(), vec![0., 1., 4., 9., 16., 25., 36., 49.]);
    }

    #[test]
    fn stream_commands_execute_in_order() {
        let node = test_node(1);
        let dev = node.device(0).unwrap();
        let buf = dev.alloc_f64(1).unwrap();
        let stream = dev.create_stream();
        for i in 1..=50u32 {
            let b = buf.clone();
            stream
                .launch("chain", KernelCost::ZERO, move |scope| {
                    let v = b.f64_view(scope)?;
                    // Each kernel depends on its predecessor's value: any
                    // reordering breaks the arithmetic chain.
                    v.set(0, v.get(0) * 2.0 + i as f64);
                    Ok(())
                })
                .unwrap();
        }
        stream.synchronize().unwrap();
        let mut expect = 0.0f64;
        for i in 1..=50u32 {
            expect = expect * 2.0 + i as f64;
        }
        let host = node.host_alloc_f64(1);
        stream.copy(&buf, &host).unwrap();
        stream.synchronize().unwrap();
        assert_eq!(host.host_f64().unwrap().get(0), expect);
    }

    #[test]
    fn kernel_error_surfaces_at_synchronize() {
        let node = test_node(2);
        let d0 = node.device(0).unwrap();
        let buf_on_1 = node.device(1).unwrap().alloc_f64(4).unwrap();
        let stream = d0.create_stream();
        let b = buf_on_1.clone();
        stream
            .launch("bad", KernelCost::ZERO, move |scope| {
                b.f64_view(scope)?; // wrong device -> error
                Ok(())
            })
            .unwrap();
        let err = stream.synchronize().unwrap_err();
        assert!(matches!(err, Error::CrossDeviceAccess { stream_device: 0, .. }));
        // Error is cleared after being observed.
        stream.synchronize().unwrap();
    }

    #[test]
    fn device_oom_and_release() {
        let cfg = NodeConfig {
            num_devices: 1,
            device: DeviceParams { memory_bytes: 1024, ..DeviceParams::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(64).unwrap(); // 512 bytes
        let b = dev.alloc_f64(64).unwrap(); // 512 bytes -> full
        assert!(matches!(dev.alloc_f64(1), Err(Error::OutOfMemory { .. })));
        assert_eq!(dev.used_bytes(), 1024);
        drop(a);
        assert_eq!(dev.used_bytes(), 512);
        let _c = dev.alloc_f64(64).unwrap(); // fits again
        drop(b);
    }

    #[test]
    fn events_order_across_streams() {
        let node = test_node(2);
        let d0 = node.device(0).unwrap();
        let d1 = node.device(1).unwrap();
        let src = d0.alloc_f64(1).unwrap();
        let dst = d1.alloc_f64(1).unwrap();
        let s0 = d0.create_stream();
        let s1 = d1.create_stream();
        let produced = Event::new();

        let b = src.clone();
        s0.launch("produce", KernelCost::ZERO, move |scope| {
            std::thread::sleep(Duration::from_millis(20));
            b.f64_view(scope)?.set(0, 42.0);
            Ok(())
        })
        .unwrap();
        s0.record(&produced).unwrap();

        // Consumer on another device waits on the event before copying.
        s1.wait_event(&produced).unwrap();
        s1.copy(&src, &dst).unwrap();
        let host = node.host_alloc_f64(1);
        s1.copy(&dst, &host).unwrap();
        s1.synchronize().unwrap();
        assert_eq!(host.host_f64().unwrap().get(0), 42.0);
    }

    #[test]
    fn stats_count_operations() {
        let node = test_node(2);
        let dev = node.device(0).unwrap();
        let buf = dev.alloc_f64(16).unwrap();
        let host = node.host_alloc_f64(16);
        let d1 = node.device(1).unwrap().alloc_f64(16).unwrap();
        let stream = dev.create_stream();
        stream.launch("noop", KernelCost::ZERO, |_| Ok(())).unwrap();
        stream.copy(&host, &buf).unwrap(); // h2d
        stream.copy(&buf, &d1).unwrap(); // d2d
        stream.copy(&d1, &host).unwrap(); // d2h
        stream.synchronize().unwrap();
        let s = node.stats();
        assert_eq!(s.kernels_launched, 1);
        assert_eq!(s.copies_h2d, 1);
        assert_eq!(s.copies_d2d, 1);
        assert_eq!(s.copies_d2h, 1);
        assert_eq!(s.bytes_h2d, 128);
        assert_eq!(s.device_allocs, 2);
    }

    #[test]
    fn modeled_time_serializes_one_slot_device() {
        // Two 30ms kernels on one slots=1 device must take >= 60ms even on
        // different streams; the same kernels on two devices overlap.
        let cfg = NodeConfig {
            num_devices: 2,
            device: DeviceParams {
                slots: 1,
                flops_per_sec: 1e9,
                launch_overhead: Duration::ZERO,
                ..DeviceParams::default()
            },
            time_scale: 1.0,
            ..NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let cost = KernelCost::flops(30e6); // 30 ms at 1 GF/s

        // Same device, two streams.
        let d0 = node.device(0).unwrap();
        let s_a = d0.create_stream();
        let s_b = d0.create_stream();
        let t0 = Instant::now();
        s_a.launch("k", cost, |_| Ok(())).unwrap();
        s_b.launch("k", cost, |_| Ok(())).unwrap();
        s_a.synchronize().unwrap();
        s_b.synchronize().unwrap();
        let serial = t0.elapsed();
        assert!(serial >= Duration::from_millis(55), "got {serial:?}");

        // Different devices overlap.
        let d1 = node.device(1).unwrap();
        let s_c = d0.create_stream();
        let s_d = d1.create_stream();
        let t0 = Instant::now();
        s_c.launch("k", cost, |_| Ok(())).unwrap();
        s_d.launch("k", cost, |_| Ok(())).unwrap();
        s_c.synchronize().unwrap();
        s_d.synchronize().unwrap();
        let overlap = t0.elapsed();
        assert!(overlap < Duration::from_millis(55), "got {overlap:?}");
    }

    #[test]
    fn host_exec_bounds_concurrency_and_models_time() {
        let cfg = NodeConfig {
            num_devices: 1,
            host: HostParams {
                slots: 1,
                flops_per_sec: 1e9,
                bytes_per_sec: 1e12,
                ..HostParams::default()
            },
            time_scale: 1.0,
            ..NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    node.host().run("t", KernelCost::flops(20e6), || {});
                });
            }
        });
        // Two 20ms tasks on one host slot serialize.
        assert!(t0.elapsed() >= Duration::from_millis(35));
        assert_eq!(node.stats().host_tasks, 2);
    }

    #[test]
    fn default_stream_is_cached() {
        let node = test_node(1);
        let dev = node.device(0).unwrap();
        let a = dev.default_stream();
        let b = dev.default_stream();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn copy_length_mismatch_rejected_at_submission() {
        let node = test_node(1);
        let dev = node.device(0).unwrap();
        let a = dev.alloc_f64(4).unwrap();
        let h = node.host_alloc_f64(8);
        let s = dev.create_stream();
        assert!(matches!(s.copy(&a, &h), Err(Error::CopyLengthMismatch { src: 4, dst: 8 })));
    }

    #[test]
    fn is_idle_tracks_outstanding_work() {
        let node = test_node(1);
        let s = node.device(0).unwrap().create_stream();
        assert!(s.is_idle());
        s.launch("sleepy", KernelCost::ZERO, |_| {
            std::thread::sleep(Duration::from_millis(30));
            Ok(())
        })
        .unwrap();
        assert!(!s.is_idle());
        s.synchronize().unwrap();
        assert!(s.is_idle());
    }
}
