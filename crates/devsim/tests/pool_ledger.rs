//! Ledger-invariant property test for the caching memory pool.
//!
//! Drives a capacity-bounded device through randomized (but seeded and
//! reproducible) alloc / free / trim / stream-use sequences and asserts
//! the pool's byte ledger after every operation. In particular it pins
//! the trim-before-OOM path: a block trimmed to satisfy a tight request
//! must leave both the cached ledger and the device's capacity charge
//! exactly once — double-counting trimmed bytes would break the
//! conservation law checked here.

use devsim::{
    CellBuffer, DeviceParams, Error, KernelCost, MemSpace, NodeConfig, PoolConfig, SimNode,
};

/// xorshift64*: enough randomness for schedule generation, fully seeded.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const CAPACITY: usize = 8 * 1024; // bytes; small enough to hit OOM paths

/// `live_expected` is `Some` only at stream-quiescent points: a kernel
/// closure in flight holds buffer clones, keeping blocks live past the
/// test's own drop.
fn check_ledger(node: &SimNode, live_expected: Option<usize>) {
    let dev = node.device(0).unwrap();
    let s = dev.pool_stats();
    // Conservation: every raw-allocated byte is live, cached, or trimmed.
    assert_eq!(
        s.live_bytes as u64 + s.cached_bytes as u64 + s.trimmed_bytes,
        s.raw_alloc_bytes,
        "ledger conservation violated: live {} + cached {} + trimmed {} != raw {}",
        s.live_bytes,
        s.cached_bytes,
        s.trimmed_bytes,
        s.raw_alloc_bytes
    );
    // The device's capacity charge is exactly the live ledger.
    assert_eq!(dev.used_bytes(), s.live_bytes, "capacity charge out of sync with live ledger");
    if let Some(expected) = live_expected {
        assert_eq!(s.live_bytes, expected, "live ledger out of sync with held buffers");
    }
    // Live + cached never exceeds capacity (cached blocks are charged
    // against the space until trimmed).
    assert!(
        s.live_bytes + s.cached_bytes <= CAPACITY,
        "live {} + cached {} exceeds capacity {}",
        s.live_bytes,
        s.cached_bytes,
        CAPACITY
    );
    assert!(s.high_water_bytes >= s.live_bytes + s.cached_bytes);
    assert_eq!(dev.free_bytes(), CAPACITY - s.live_bytes - s.cached_bytes);
}

fn run_schedule(seed: u64, trim_threshold: usize) {
    let node = SimNode::new(NodeConfig {
        num_devices: 1,
        device: DeviceParams { memory_bytes: CAPACITY, ..DeviceParams::default() },
        time_scale: 0.0,
        pool: PoolConfig { trim_threshold, ..PoolConfig::default() },
        ..NodeConfig::default()
    });
    let dev = node.device(0).unwrap();
    let stream = dev.create_stream();
    let mut rng = Rng(seed | 1);
    let mut held: Vec<(CellBuffer, usize)> = Vec::new();
    let mut live = 0usize;

    for step in 0..400 {
        match rng.below(10) {
            // Allocate (possibly on the stream, possibly too big to fit).
            0..=4 => {
                let len = (rng.below(192) + 1) as usize;
                let class_bytes = PoolConfig::default().class_cells(len) * 8;
                let result = if rng.below(2) == 0 {
                    dev.alloc_cells_on_stream(len, &stream)
                } else {
                    dev.alloc_f64(len)
                };
                match result {
                    Ok(buf) => {
                        live += class_bytes;
                        held.push((buf, class_bytes));
                    }
                    Err(Error::OutOfMemory { requested, live_bytes, cached_bytes, .. }) => {
                        assert_eq!(requested, class_bytes);
                        // The OOM-path reclaim ran: nothing reclaimable
                        // may remain if the request still failed.
                        assert!(
                            live_bytes + cached_bytes + requested > CAPACITY || cached_bytes > 0,
                            "OOM with {requested} B requested, {live_bytes} live, \
                             {cached_bytes} cached at step {step}"
                        );
                    }
                    Err(other) => panic!("unexpected alloc failure: {other:?}"),
                }
            }
            // Touch a held buffer on the stream (creates pending blocks
            // on release while the stream has unfinished work).
            5 => {
                if let Some((buf, _)) = held.last() {
                    let b = buf.clone();
                    stream
                        .launch("touch", KernelCost::ZERO, move |scope| {
                            b.f64_view(scope)?.set(0, 1.0);
                            Ok(())
                        })
                        .unwrap();
                }
            }
            // Free a random held buffer.
            6..=8 => {
                if !held.is_empty() {
                    let i = (rng.below(held.len() as u64)) as usize;
                    let (_, bytes) = held.swap_remove(i);
                    live -= bytes;
                }
            }
            // Explicit trim.
            _ => {
                stream.synchronize().unwrap();
                node.pool().trim(MemSpace::Device(0));
            }
        }
        let quiescent = step % 7 == 0;
        if quiescent {
            stream.synchronize().unwrap();
        }
        check_ledger(&node, quiescent.then_some(live));
    }

    drop(held);
    stream.synchronize().unwrap();
    check_ledger(&node, Some(0));
    node.pool().trim(MemSpace::Device(0));
    let s = dev.pool_stats();
    assert_eq!(s.cached_bytes, 0, "explicit trim after drain empties the cache");
    assert_eq!(s.live_bytes + s.cached_bytes, 0);
    assert_eq!(s.trimmed_bytes, s.raw_alloc_bytes, "all raw bytes end up trimmed");
}

#[test]
fn ledger_invariants_hold_under_randomized_schedules() {
    for seed in [1u64, 0xDEAD_BEEF, 42, 7_777_777, 0x5EED] {
        run_schedule(seed, usize::MAX);
    }
}

#[test]
fn ledger_invariants_hold_with_tight_trim_threshold() {
    // A low threshold forces the release-path trim branch constantly;
    // trim-before-OOM and release-trim must not double-count.
    for seed in [3u64, 99, 0xABCDEF] {
        run_schedule(seed, 1024);
    }
}

#[test]
fn trim_before_oom_accounts_trimmed_bytes_once() {
    let node = SimNode::new(NodeConfig {
        num_devices: 1,
        device: DeviceParams { memory_bytes: 1024, ..DeviceParams::default() },
        time_scale: 0.0,
        ..NodeConfig::default()
    });
    let dev = node.device(0).unwrap();
    let a = dev.alloc_f64(64).unwrap(); // 512 B live
    drop(a); // -> 512 B cached
    let before = dev.pool_stats();
    assert_eq!(before.cached_bytes, 512);
    // Needs the whole device: the cached block must be trimmed exactly once.
    let big = dev.alloc_f64(128).unwrap();
    let s = dev.pool_stats();
    assert_eq!(s.trimmed_bytes, 512, "trimmed exactly the one cached block");
    assert_eq!(s.cached_bytes, 0);
    assert_eq!(s.live_bytes, 1024);
    assert_eq!(s.live_bytes as u64 + s.cached_bytes as u64 + s.trimmed_bytes, s.raw_alloc_bytes);
    assert_eq!(dev.used_bytes(), 1024);
    drop(big);
    let s = dev.pool_stats();
    assert_eq!(dev.used_bytes(), 0);
    assert_eq!(s.live_bytes, 0);
}
