//! Property tests on the simulated runtime: stream ordering, transfer
//! fidelity, and capacity accounting hold under arbitrary programs.

use devsim::{KernelCost, NodeConfig, SimNode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transfers preserve arbitrary bit patterns through any chain of
    /// h2d / d2d / d2h hops.
    #[test]
    fn transfer_chains_are_lossless(
        data in proptest::collection::vec(any::<u64>(), 1..64),
        hops in proptest::collection::vec(0usize..3, 1..5),
    ) {
        let node = SimNode::new(NodeConfig::fast_test(3));
        let n = data.len();
        let start = node.host_alloc_f64(n);
        let hv = start.host_u64().unwrap();
        for (i, &v) in data.iter().enumerate() {
            hv.set(i, v);
        }
        // Walk the data across devices.
        let mut current = start;
        let stream = node.device(0).unwrap().create_stream();
        for d in hops {
            let next = node.device(d).unwrap().alloc_f64(n).unwrap();
            stream.copy(&current, &next).unwrap();
            current = next;
        }
        let end = node.host_alloc_f64(n);
        stream.copy(&current, &end).unwrap();
        stream.synchronize().unwrap();
        prop_assert_eq!(end.host_u64().unwrap().to_vec(), data);
    }

    /// Commands on one stream execute strictly in submission order: a
    /// random arithmetic chain evaluates exactly as sequential code.
    #[test]
    fn stream_order_is_program_order(ops in proptest::collection::vec((0u8..3, -5i64..6), 1..24)) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let dev = node.device(0).unwrap();
        let buf = dev.alloc_f64(1).unwrap();
        let stream = dev.create_stream();
        let mut expect = 0.0f64;
        for &(op, arg) in &ops {
            let b = buf.clone();
            let a = arg as f64;
            stream.launch("op", KernelCost::ZERO, move |scope| {
                let v = b.f64_view(scope)?;
                let cur = v.get(0);
                v.set(0, match op {
                    0 => cur + a,
                    1 => cur * 2.0 + a,
                    _ => -cur + a,
                });
                Ok(())
            }).unwrap();
            expect = match op {
                0 => expect + a,
                1 => expect * 2.0 + a,
                _ => -expect + a,
            };
        }
        let host = node.host_alloc_f64(1);
        stream.copy(&buf, &host).unwrap();
        stream.synchronize().unwrap();
        prop_assert_eq!(host.host_f64().unwrap().get(0), expect);
    }

    /// Capacity accounting: used bytes always equals the sum of live
    /// allocations (size-class rounded, since the caching pool reserves
    /// whole classes), and everything is released on drop.
    #[test]
    fn capacity_accounting_is_exact(sizes in proptest::collection::vec(1usize..200, 1..12)) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let dev = node.device(0).unwrap();
        let class_bytes = |len: usize| node.pool().config().class_cells(len) * 8;
        let mut live = Vec::new();
        let mut expect = 0usize;
        for (i, &len) in sizes.iter().enumerate() {
            live.push(dev.alloc_f64(len).unwrap());
            expect += class_bytes(len);
            prop_assert_eq!(dev.used_bytes(), expect);
            if i % 3 == 2 {
                let freed = live.remove(0);
                expect -= class_bytes(freed.len());
                drop(freed);
                prop_assert_eq!(dev.used_bytes(), expect);
            }
        }
        drop(live);
        prop_assert_eq!(dev.used_bytes(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stream-ordered reclamation: while the last-use stream has not
    /// drained past a freed block's use, the pool never hands the block
    /// to another requester — but the same stream reuses it immediately,
    /// and once the stream drains anyone may have it.
    #[test]
    fn reclaim_waits_for_last_use_stream(
        len in 1usize..256,
        extra_cmds in 0usize..4,
    ) {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let dev = node.device(0).unwrap();
        let stream = dev.create_stream();
        let gate = devsim::Event::new();
        let done = devsim::Event::new();

        let buf = dev.alloc_f64(len).unwrap();
        let b = buf.clone();
        stream.launch("touch", KernelCost::ZERO, move |scope| {
            b.f64_view(scope)?.set(0, 1.0);
            Ok(())
        }).unwrap();
        stream.record(&done).unwrap();
        stream.wait_event(&gate).unwrap();
        for _ in 0..extra_cmds {
            stream.launch("later", KernelCost::ZERO, |_| Ok(())).unwrap();
        }
        done.wait();
        drop(buf); // stream still parked on the gate -> block is pending

        // Stream-less requester: must miss (raw allocation), never the
        // pending block.
        let cross = dev.alloc_f64(len).unwrap();
        prop_assert_eq!(dev.pool_stats().hits, 0);
        prop_assert_eq!(dev.pool_stats().raw_allocs, 2);

        // Same-stream requester: immediate reuse.
        let same = dev.alloc_cells_on_stream(len, &stream).unwrap();
        prop_assert_eq!(dev.pool_stats().hits, 1);

        gate.signal();
        stream.synchronize().unwrap();
        drop(same);
        drop(cross);

        // Drained: the blocks are ready for anyone.
        let after = dev.alloc_f64(len).unwrap();
        prop_assert_eq!(dev.pool_stats().hits, 2);
        prop_assert_eq!(dev.pool_stats().raw_allocs, 2, "no new raw allocation after drain");
        drop(after);
    }
}
