//! Cross-stream event pipelines and unified-memory semantics.

use devsim::{Event, KernelCost, MemSpace, NodeConfig, SimNode};

#[test]
fn event_pipeline_chains_three_devices() {
    // d0 produces -> d1 doubles -> d2 negates, ordered purely by events.
    let node = SimNode::new(NodeConfig::fast_test(3));
    let bufs: Vec<_> = (0..3).map(|d| node.device(d).unwrap().alloc_f64(4).unwrap()).collect();
    let streams: Vec<_> = (0..3).map(|d| node.device(d).unwrap().create_stream()).collect();
    let (e0, e1) = (Event::new(), Event::new());

    let b0 = bufs[0].clone();
    streams[0]
        .launch("produce", KernelCost::ZERO, move |scope| {
            let v = b0.f64_view(scope)?;
            for i in 0..v.len() {
                v.set(i, (i + 1) as f64);
            }
            Ok(())
        })
        .unwrap();
    streams[0].record(&e0).unwrap();

    streams[1].wait_event(&e0).unwrap();
    streams[1].copy(&bufs[0], &bufs[1]).unwrap();
    let b1 = bufs[1].clone();
    streams[1]
        .launch("double", KernelCost::ZERO, move |scope| {
            let v = b1.f64_view(scope)?;
            for i in 0..v.len() {
                v.set(i, v.get(i) * 2.0);
            }
            Ok(())
        })
        .unwrap();
    streams[1].record(&e1).unwrap();

    streams[2].wait_event(&e1).unwrap();
    streams[2].copy(&bufs[1], &bufs[2]).unwrap();
    let b2 = bufs[2].clone();
    streams[2]
        .launch("negate", KernelCost::ZERO, move |scope| {
            let v = b2.f64_view(scope)?;
            for i in 0..v.len() {
                v.set(i, -v.get(i));
            }
            Ok(())
        })
        .unwrap();

    let host = node.host_alloc_f64(4);
    streams[2].copy(&bufs[2], &host).unwrap();
    streams[2].synchronize().unwrap();
    assert_eq!(host.host_f64().unwrap().to_vec(), vec![-2.0, -4.0, -6.0, -8.0]);
}

#[test]
fn event_reset_supports_iteration_reuse() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let dev = node.device(0).unwrap();
    let buf = dev.alloc_f64(1).unwrap();
    let stream = dev.create_stream();
    let ready = Event::new();
    for i in 0..5u32 {
        ready.reset();
        let b = buf.clone();
        stream
            .launch("tick", KernelCost::ZERO, move |scope| {
                b.f64_view(scope)?.set(0, i as f64);
                Ok(())
            })
            .unwrap();
        stream.record(&ready).unwrap();
        ready.wait();
        assert!(ready.is_signaled());
    }
    let host = node.host_alloc_f64(1);
    stream.copy(&buf, &host).unwrap();
    stream.synchronize().unwrap();
    assert_eq!(host.host_f64().unwrap().get(0), 4.0);
}

#[test]
fn stream_query_polls_without_blocking() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let stream = node.device(0).unwrap().create_stream();
    let gate = Event::new();
    stream.wait_event(&gate).unwrap();
    // The stream is parked on the un-signaled event: query must report
    // outstanding work without blocking the caller.
    assert!(!stream.query().unwrap());
    gate.signal();
    stream.synchronize().unwrap();
    assert!(stream.query().unwrap());
}

#[test]
fn stream_query_takes_sticky_errors() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let stream = node.device(0).unwrap().create_stream();
    stream.launch("fail", KernelCost::ZERO, |_| Err(devsim::Error::StreamClosed)).unwrap();
    while !stream.is_idle() {
        std::thread::yield_now();
    }
    assert!(stream.query().is_err(), "query surfaces the async kernel error");
    assert!(stream.query().unwrap(), "the sticky error is cleared once taken");
}

#[test]
fn unified_memory_is_visible_everywhere() {
    let node = SimNode::new(NodeConfig::fast_test(2));
    let d0 = node.device(0).unwrap();
    let uva = d0.alloc_unified(4).unwrap();
    assert_eq!(uva.space(), MemSpace::Unified(0));
    assert_eq!(uva.space().device(), Some(0));
    assert!(uva.space().host_accessible());
    assert!(uva.space().device_accessible(0));
    assert!(uva.space().device_accessible(1));

    // Host writes...
    uva.host_f64().unwrap().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
    // ...a kernel on the *other* device reads and modifies in place...
    let s1 = node.device(1).unwrap().create_stream();
    let u = uva.clone();
    s1.launch("inc", KernelCost::ZERO, move |scope| {
        let v = u.f64_view(scope)?;
        for i in 0..v.len() {
            v.set(i, v.get(i) + 10.0);
        }
        Ok(())
    })
    .unwrap();
    s1.synchronize().unwrap();
    // ...and the host sees the result directly.
    assert_eq!(uva.host_f64().unwrap().to_vec(), vec![11.0, 12.0, 13.0, 14.0]);
}

#[test]
fn unified_memory_charges_and_releases_home_device_capacity() {
    let node = SimNode::new(NodeConfig::fast_test(2));
    let d0 = node.device(0).unwrap();
    let before = d0.used_bytes();
    let uva = d0.alloc_unified(100).unwrap();
    // The caching pool serves from 64-cell size classes: 100 cells round
    // up to the 128-cell class, so 1024 bytes are charged, not 800.
    assert_eq!(d0.used_bytes(), before + 1024);
    assert_eq!(node.device(1).unwrap().used_bytes(), 0, "homed on device 0 only");
    drop(uva);
    assert_eq!(d0.used_bytes(), before);
}

#[test]
fn plain_device_memory_stays_fenced() {
    // Sanity check that UVA did not weaken the ordinary space discipline.
    let node = SimNode::new(NodeConfig::fast_test(2));
    let plain = node.device(0).unwrap().alloc_f64(2).unwrap();
    assert!(plain.host_f64().is_err(), "host view of device memory must fail");
    assert!(!plain.space().device_accessible(1));
}
